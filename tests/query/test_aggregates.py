"""Aggregate algebra: products, sums of products, shorthand coercions."""

import pytest

from repro.query.aggregates import Aggregate, Product
from repro.query.functions import Constant, Delta, Identity, Power


class TestProduct:
    def test_shorthand_coercion(self):
        product = Product(["x", 2.0, Identity("y")])
        assert product.coefficient == 2.0
        assert [type(f).__name__ for f in product.factors] == [
            "Identity",
            "Identity",
        ]

    def test_attrs_deduplicated_in_order(self):
        product = Product([Identity("x"), Power("x", 2), Identity("y")])
        assert product.attrs == ("x", "y")

    def test_empty_product_is_count(self):
        product = Product()
        assert product.coefficient == 1.0 and product.factors == ()

    def test_mul_combines(self):
        left = Product(["x"], coefficient=2.0)
        right = Product(["y"], coefficient=3.0)
        combined = left * right
        assert combined.coefficient == 6.0
        assert len(combined.factors) == 2

    def test_signature_ignores_factor_order(self):
        a = Product([Identity("x"), Identity("y")])
        b = Product([Identity("y"), Identity("x")])
        assert a.signature() == b.signature()

    def test_dynamic_functions_listed(self):
        dynamic = Delta("x", "<=", 1.0, dynamic=True)
        product = Product([dynamic, Identity("y")])
        assert product.dynamic_functions() == (dynamic,)

    def test_bad_factor_type_rejected(self):
        with pytest.raises(TypeError):
            Product([object()])


class TestAggregate:
    def test_count(self):
        agg = Aggregate.count()
        assert len(agg.terms) == 1
        assert agg.terms[0].factors == ()

    def test_of(self):
        agg = Aggregate.of("x", "y", name="xy")
        assert agg.name == "xy"
        assert agg.attrs == ("x", "y")

    def test_requires_terms(self):
        with pytest.raises(ValueError):
            Aggregate([])

    def test_linear_combination(self):
        agg = Aggregate.linear_combination(
            [0.5, -1.0], [["x"], ["y"]], name="lc"
        )
        assert len(agg.terms) == 2
        assert agg.terms[0].coefficient == 0.5
        assert agg.terms[1].coefficient == -1.0

    def test_linear_combination_length_mismatch(self):
        with pytest.raises(ValueError):
            Aggregate.linear_combination([1.0], [["x"], ["y"]])

    def test_scaled(self):
        agg = Aggregate.of("x").scaled(3.0)
        assert agg.terms[0].coefficient == 3.0

    def test_signature_distinguishes_terms(self):
        assert Aggregate.of("x").signature() != Aggregate.of("y").signature()
        assert (
            Aggregate.of("x").signature()
            == Aggregate.of(Identity("x")).signature()
        )
