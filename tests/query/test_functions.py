"""Function algebra: evaluation, inline expressions, signatures."""

import numpy as np
import pytest

from repro.query.functions import (
    Constant,
    Delta,
    Exp,
    Identity,
    Log,
    Power,
    Udf,
    fold_constants,
)


def run_expr(function, columns):
    """Evaluate the inline source form the Compilation layer emits."""
    col_vars = {a: f"c_{a}" for a in function.attrs}
    namespace = {"np": np}
    namespace.update({f"c_{a}": v for a, v in columns.items()})
    return eval(function.expr(col_vars), namespace)


@pytest.fixture
def cols():
    return {
        "x": np.array([1.0, 2.0, 3.0]),
        "y": np.array([-1.0, 0.5, 2.0]),
        "c": np.array([0, 1, 2]),
    }


class TestIdentityPower:
    def test_identity(self, cols):
        assert Identity("x").evaluate(cols).tolist() == [1.0, 2.0, 3.0]

    def test_identity_expr_matches(self, cols):
        f = Identity("x")
        assert np.allclose(run_expr(f, cols), f.evaluate(cols))

    def test_power(self, cols):
        assert Power("x", 2).evaluate(cols).tolist() == [1.0, 4.0, 9.0]

    def test_power_expr_matches(self, cols):
        f = Power("x", 3)
        assert np.allclose(run_expr(f, cols), f.evaluate(cols))

    def test_identity_casts_ints(self, cols):
        out = Identity("c").evaluate(cols)
        assert out.dtype == np.float64


class TestDelta:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<=", [1.0, 1.0, 0.0]),
            ("<", [1.0, 0.0, 0.0]),
            (">=", [0.0, 1.0, 1.0]),
            (">", [0.0, 0.0, 1.0]),
            ("==", [0.0, 1.0, 0.0]),
            ("!=", [1.0, 0.0, 1.0]),
        ],
    )
    def test_operators(self, cols, op, expected):
        assert Delta("x", op, 2.0).evaluate(cols).tolist() == expected

    def test_in_operator(self, cols):
        f = Delta("c", "in", [0, 2])
        assert f.evaluate(cols).tolist() == [1.0, 0.0, 1.0]

    def test_expr_matches(self, cols):
        for op in ("<=", "<", ">=", ">", "==", "!="):
            f = Delta("x", op, 2.0)
            assert np.allclose(run_expr(f, cols), f.evaluate(cols))

    def test_in_expr_matches(self, cols):
        f = Delta("c", "in", [0, 2])
        assert np.allclose(run_expr(f, cols), f.evaluate(cols))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Delta("x", "~~", 1.0)

    def test_dynamic_structural_signature_hides_value(self):
        a = Delta("x", "<=", 1.0, dynamic=True)
        b = Delta("x", "<=", 99.0, dynamic=True)
        assert a.signature() != b.signature()
        assert a.structural_signature(0) == b.structural_signature(0)
        assert a.structural_signature(0) != b.structural_signature(1)


class TestOtherFunctions:
    def test_log(self, cols):
        f = Log("x")
        assert np.allclose(f.evaluate(cols), np.log(cols["x"]))
        assert np.allclose(run_expr(f, cols), f.evaluate(cols))

    def test_exp(self, cols):
        f = Exp(["x", "y"], [0.5, -1.0])
        expected = np.exp(0.5 * cols["x"] - cols["y"])
        assert np.allclose(f.evaluate(cols), expected)
        assert np.allclose(run_expr(f, cols), expected)

    def test_exp_length_mismatch(self):
        with pytest.raises(ValueError):
            Exp(["x"], [1.0, 2.0])

    def test_udf_evaluate(self, cols):
        f = Udf(["x", "y"], lambda x, y: x + y, name="add")
        assert f.evaluate(cols).tolist() == [0.0, 2.5, 5.0]

    def test_udf_has_no_inline_form(self, cols):
        f = Udf(["x"], lambda x: x, name="id")
        with pytest.raises(RuntimeError):
            f.expr({"x": "c_x"})

    def test_constant_never_evaluated(self, cols):
        with pytest.raises(RuntimeError):
            Constant(2.0).evaluate(cols)


class TestSignatures:
    def test_equality_by_signature(self):
        assert Identity("x") == Identity("x")
        assert Identity("x") != Identity("y")
        assert Power("x", 2) != Identity("x")
        assert Delta("x", "<=", 1.0) == Delta("x", "<=", 1.0)

    def test_hashable(self):
        assert len({Identity("x"), Identity("x"), Power("x", 2)}) == 2


class TestFoldConstants:
    def test_folds_into_coefficient(self):
        coeff, rest = fold_constants(
            [Constant(2.0), Identity("x"), Constant(3.0)]
        )
        assert coeff == 6.0
        assert len(rest) == 1 and isinstance(rest[0], Identity)

    def test_empty(self):
        coeff, rest = fold_constants([])
        assert coeff == 1.0 and rest == ()

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            fold_constants([Constant(float("nan"))])
