"""Queries and batches: validation, signatures, dynamic slots."""

import pytest

from repro.query.aggregates import Aggregate, Product
from repro.query.functions import Delta, Identity
from repro.query.query import Query, QueryBatch


class TestQuery:
    def test_requires_aggregates(self):
        with pytest.raises(ValueError):
            Query("q", [], [])

    def test_duplicate_group_by_rejected(self):
        with pytest.raises(ValueError):
            Query("q", ["a", "a"], [Aggregate.count()])

    def test_referenced_attrs(self):
        q = Query("q", ["g"], [Aggregate.of("x", "y")])
        assert q.referenced_attrs() == ("g", "x", "y")

    def test_n_aggregates(self):
        q = Query("q", [], [Aggregate.count(), Aggregate.of("x")])
        assert q.n_aggregates == 2


class TestQueryBatch:
    def test_duplicate_names_rejected(self):
        q = Query("same", [], [Aggregate.count()])
        with pytest.raises(ValueError):
            QueryBatch([q, Query("same", [], [Aggregate.count()])])

    def test_application_aggregate_count(self):
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate.count(), Aggregate.of("x")]),
                Query("b", ["g"], [Aggregate.count()]),
            ]
        )
        assert batch.n_application_aggregates == 3

    def test_dynamic_functions_in_batch_order(self):
        d1 = Delta("x", "<=", 1.0, dynamic=True)
        d2 = Delta("y", "<=", 2.0, dynamic=True)
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate([Product([d1])])]),
                Query("b", [], [Aggregate([Product([d2, d1])])]),
            ]
        )
        assert batch.dynamic_functions() == [d1, d2]

    def test_structural_signature_stable_across_values(self):
        def build(threshold):
            d = Delta("x", "<=", threshold, dynamic=True)
            return QueryBatch(
                [Query("a", [], [Aggregate([Product([d, Identity("y")])])])]
            )

        assert (
            build(1.0).structural_signature()
            == build(42.0).structural_signature()
        )

    def test_structural_signature_differs_for_static_values(self):
        def build(threshold):
            d = Delta("x", "<=", threshold, dynamic=False)
            return QueryBatch(
                [Query("a", [], [Aggregate([Product([d])])])]
            )

        assert (
            build(1.0).structural_signature()
            != build(42.0).structural_signature()
        )

    def test_structural_signature_differs_by_group_by(self):
        a = QueryBatch([Query("q", ["g"], [Aggregate.count()])])
        b = QueryBatch([Query("q", ["h"], [Aggregate.count()])])
        assert a.structural_signature() != b.structural_signature()

    def test_referenced_attrs_deduped(self):
        batch = QueryBatch(
            [
                Query("a", ["g"], [Aggregate.of("x")]),
                Query("b", ["g"], [Aggregate.of("x", "y")]),
            ]
        )
        assert batch.referenced_attrs() == ("g", "x", "y")

    def test_len_and_iter(self):
        batch = QueryBatch([Query("a", [], [Aggregate.count()])])
        assert len(batch) == 1
        assert [q.name for q in batch] == ["a"]
