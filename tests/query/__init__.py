"""Test package."""
