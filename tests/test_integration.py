"""End-to-end integration: the paper's four workloads on every dataset."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch, materialize_join
from repro.baselines import MaterializedEngine
from repro.ml import (
    CovarBatch,
    DataCube,
    build_mi_batch,
    mutual_information_from_results,
    train_ridge,
)

DATASET_FIXTURES = ["tiny_retailer", "tiny_favorita", "tiny_yelp", "tiny_tpcds"]


@pytest.mark.parametrize("fixture", DATASET_FIXTURES)
class TestWorkloadsRunEverywhere:
    def test_covar_workload(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        continuous = ds.continuous_features[:3]
        categorical = ds.categorical_features[:3]
        label = (
            ds.continuous_features[3]
            if ds.database.attribute_kind(ds.label) == "categorical"
            else ds.label
        )
        continuous = [c for c in continuous if c != label]
        covar = CovarBatch(continuous, categorical, label)
        engine = LMFAO(ds.database, ds.join_tree)
        matrix, index = covar.assemble(engine.run(covar.batch))
        assert matrix.shape[0] == index.size
        assert np.allclose(matrix, matrix.T)
        assert matrix[0, 0] > 0

    def test_mi_workload(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        attrs = ds.discrete_attrs[:4]
        engine = LMFAO(ds.database, ds.join_tree)
        batch = build_mi_batch(attrs)
        mi = mutual_information_from_results(attrs, engine.run(batch))
        assert len(mi) == len(attrs) * (len(attrs) - 1) // 2
        assert all(v >= 0 for v in mi.values())

    def test_cube_workload(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        engine = LMFAO(ds.database, ds.join_tree)
        cube = DataCube(engine, ds.cube_dimensions, ds.cube_measures)
        relation = cube.compute()
        flat = materialize_join(ds.database)
        measure = ds.cube_measures[0]
        apex = cube.cuboid([]).column(f"sum:{measure}")[0]
        assert np.isclose(apex, flat.column(measure).sum(), rtol=1e-9)

    def test_count_vs_baseline(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        batch = QueryBatch([Query("n", [], [Aggregate.count()])])
        lmfao_n = (
            LMFAO(ds.database, ds.join_tree)
            .run(batch)["n"]
            .column("count")[0]
        )
        baseline_n = (
            MaterializedEngine(ds.database)
            .run(batch)["n"]
            .column("count")[0]
        )
        assert lmfao_n == baseline_n


class TestEndToEndModels:
    def test_retailer_linreg_pipeline(self, tiny_retailer):
        """The Table 4 pipeline: train on history, test on the last dates."""
        from repro.datasets import train_test_split_by

        ds = tiny_retailer
        train_db, test_db = train_test_split_by(ds, "dateid", 0.15)
        continuous = ds.continuous_features[:6]
        categorical = ds.categorical_features[:4]
        model = train_ridge(
            train_db,
            continuous,
            categorical,
            ds.label,
            join_tree=ds.join_tree,
            method="closed",
        )
        test_flat = materialize_join(test_db)
        rmse = model.rmse(test_flat)
        target = test_flat.column(ds.label)
        trivial = float(np.sqrt(np.mean((target - target.mean()) ** 2)))
        assert np.isfinite(rmse)
        assert rmse < 2 * trivial  # sane model

    def test_favorita_regression_tree_pipeline(self, tiny_favorita):
        from repro.ml import CARTLearner

        ds = tiny_favorita
        engine = LMFAO(ds.database, ds.join_tree)
        learner = CARTLearner(
            engine,
            ["txns", "price"],
            ["stype", "promo", "family"],
            ds.label,
            "regression",
            max_depth=2,
            min_samples_split=50,
            n_buckets=4,
        )
        tree = learner.fit()
        flat = materialize_join(ds.database)
        target = flat.column(ds.label)
        trivial = float(np.sqrt(np.mean((target - target.mean()) ** 2)))
        assert tree.rmse(flat) <= trivial

    def test_tpcds_classification_pipeline(self, tiny_tpcds):
        from repro.ml import CARTLearner

        ds = tiny_tpcds
        engine = LMFAO(ds.database, ds.join_tree)
        learner = CARTLearner(
            engine,
            ds.continuous_features[:3],
            ds.categorical_features[:4],
            ds.label,
            "classification",
            max_depth=2,
            min_samples_split=50,
            n_buckets=4,
        )
        tree = learner.fit()
        flat = materialize_join(ds.database)
        assert 0.0 <= tree.accuracy(flat) <= 1.0

    def test_chow_liu_on_tpcds(self, tiny_tpcds):
        from repro.ml import chow_liu_tree

        ds = tiny_tpcds
        engine = LMFAO(ds.database, ds.join_tree)
        attrs = ds.discrete_attrs[:5]
        edges, _ = chow_liu_tree(engine, attrs)
        assert len(edges) == len(attrs) - 1
