"""Shared fixtures: toy databases and small dataset instances."""

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.data.schema import Schema, categorical, continuous, key


@pytest.fixture(scope="session")
def toy_db():
    """A 3-relation star: Sales(date, store, units) with Stores and Oil."""
    rng = np.random.default_rng(0)
    n = 300
    sales = Relation(
        "Sales",
        Schema([key("date"), key("store"), continuous("units")]),
        {
            "date": rng.integers(0, 25, n),
            "store": rng.integers(0, 6, n),
            "units": np.round(rng.normal(10, 2, n), 3),
        },
    )
    stores = Relation(
        "Stores",
        Schema([key("store"), categorical("city"), continuous("size")]),
        {
            "store": np.arange(6),
            "city": rng.integers(0, 3, 6),
            "size": np.round(rng.normal(100, 20, 6), 1),
        },
    )
    oil = Relation(
        "Oil",
        Schema([key("date"), continuous("price")]),
        {
            "date": np.arange(25),
            "price": np.round(rng.normal(50, 5, 25), 2),
        },
    )
    return Database([sales, stores, oil], name="toy")


@pytest.fixture(scope="session")
def chain_db():
    """A 4-relation chain R1(a,b)-R2(b,c)-R3(c,d)-R4(d,e)."""
    rng = np.random.default_rng(1)
    def rel(name, a1, a2, n, dom1, dom2):
        return Relation(
            name,
            Schema([key(a1), key(a2)]),
            {a1: rng.integers(0, dom1, n), a2: rng.integers(0, dom2, n)},
        )
    return Database(
        [
            rel("R1", "a", "b", 150, 8, 6),
            rel("R2", "b", "c", 120, 6, 5),
            rel("R3", "c", "d", 100, 5, 7),
            rel("R4", "d", "e", 90, 7, 4),
        ],
        name="chain",
    )


@pytest.fixture(scope="session")
def manytomany_db():
    """Star with a many-to-many dimension (Yelp-like blow-up)."""
    rng = np.random.default_rng(2)
    n = 200
    fact = Relation(
        "Fact",
        Schema([key("biz"), continuous("stars")]),
        {
            "biz": rng.integers(0, 10, n),
            "stars": rng.integers(1, 6, n).astype(np.float64),
        },
    )
    n_tags = 35
    tags = Relation(
        "Tags",
        Schema([key("biz"), categorical("tag")]),
        {
            "biz": rng.integers(0, 10, n_tags),
            "tag": rng.integers(0, 5, n_tags),
        },
    )
    return Database([fact, tags], name="m2m")


@pytest.fixture(scope="session")
def tiny_favorita():
    from repro.datasets import favorita

    return favorita(scale=0.1)


@pytest.fixture(scope="session")
def tiny_retailer():
    from repro.datasets import retailer

    return retailer(scale=0.1)


@pytest.fixture(scope="session")
def tiny_yelp():
    from repro.datasets import yelp

    return yelp(scale=0.1)


@pytest.fixture(scope="session")
def tiny_tpcds():
    from repro.datasets import tpcds

    return tpcds(scale=0.1)
