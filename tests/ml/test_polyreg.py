"""Polynomial regression (eq. (5)): batch shape and training accuracy."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.polyreg import (
    PolynomialCovarBatch,
    monomials,
    train_polynomial,
)


class TestMonomials:
    def test_degree_one_is_linear_basis(self):
        basis = monomials(["x", "y"], 1)
        assert basis == [(), (("x", 1),), (("y", 1),)]

    def test_degree_two_count(self):
        # C(n+d, d) monomials for n features, degree d: C(4,2) = 6
        assert len(monomials(["x", "y"], 2)) == 6

    def test_degree_three_count(self):
        # C(3+3, 3) = 20
        assert len(monomials(["x", "y", "z"], 3)) == 20

    def test_exponents_sum_bounded(self):
        for monomial in monomials(["x", "y"], 3):
            assert sum(e for _, e in monomial) <= 3


class TestBatchShape:
    def test_aggregate_degree_bounded_by_2d(self):
        covar = PolynomialCovarBatch(["x", "y"], [], "label", degree=2)
        for query in covar.batch:
            for agg in query.aggregates:
                for term in agg.terms:
                    total_degree = sum(
                        f.exponent
                        for f in term.factors
                        if f.attr != "label"
                    )
                    assert total_degree <= 4

    def test_categorical_becomes_group_by(self):
        covar = PolynomialCovarBatch(["x"], ["c"], "label", degree=2)
        grouped = [q for q in covar.batch if q.group_by]
        assert grouped
        assert all("c" in q.group_by for q in grouped)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialCovarBatch(["x"], [], "label", degree=0)

    def test_n_parameters(self):
        covar = PolynomialCovarBatch(["x", "y"], [], "label", degree=2)
        assert covar.n_parameters == 6


class TestTraining:
    @pytest.fixture(scope="class")
    def setup(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        engine = LMFAO(ds.database, ds.join_tree)
        flat = materialize_join(ds.database)
        return ds, engine, flat

    def test_matches_normal_equations(self, setup):
        _, engine, flat = setup
        model = train_polynomial(
            engine, ["txns", "price"], "units", degree=2, l2=1e-3
        )
        design = model.design_matrix(flat)
        target = flat.column("units")
        n = len(target)
        expected = np.linalg.solve(
            design.T @ design / n + 1e-3 * np.eye(design.shape[1]),
            design.T @ target / n,
        )
        assert np.allclose(model.theta, expected, rtol=1e-6, atol=1e-8)

    def test_degree2_no_worse_than_degree1(self, setup):
        _, engine, flat = setup
        linear = train_polynomial(engine, ["txns", "price"], "units", 1)
        quadratic = train_polynomial(engine, ["txns", "price"], "units", 2)
        # richer basis, same data, tiny ridge: training error can't grow
        # (up to the ridge term's influence)
        assert quadratic.rmse(flat) <= linear.rmse(flat) * 1.01

    def test_predictions_finite(self, setup):
        _, engine, flat = setup
        model = train_polynomial(engine, ["price"], "units", degree=3)
        assert np.isfinite(model.predict(flat)).all()
