"""Covar batches: entries match brute force over the materialized join."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.covar import CovarBatch, covar_batch_size


@pytest.fixture(scope="module")
def setup(request):
    toy_db = request.getfixturevalue("toy_db")
    engine = LMFAO(toy_db)
    flat = materialize_join(toy_db)
    covar = CovarBatch(["price", "size"], ["city"], "units")
    matrix, index = covar.assemble(engine.run(covar.batch))
    return toy_db, flat, covar, matrix, index


class TestBatchShape:
    def test_aggregate_count_formula(self, toy_db):
        covar = CovarBatch(["price"], ["city"], "units")
        assert covar.batch.n_application_aggregates == covar_batch_size(1, 1)

    def test_all_continuous_formula(self):
        # (n+1)(n+2)/2 for n features including the label
        n_features = 3  # 3 continuous + label -> n = 4 "attributes"
        size = covar_batch_size(n_features, 0)
        n = n_features + 1
        assert size == (n + 1) * (n + 2) // 2

    def test_label_must_be_continuous(self):
        with pytest.raises(ValueError):
            CovarBatch(["x"], ["c"], "c")


class TestMatrixEntries:
    def test_count_entry(self, setup):
        _, flat, _, matrix, _ = setup
        assert matrix[0, 0] == flat.n_rows

    def test_first_moments(self, setup):
        _, flat, _, matrix, index = setup
        pos = index.continuous_pos("price")
        assert np.isclose(matrix[0, pos], flat.column("price").sum())

    def test_continuous_pair(self, setup):
        _, flat, _, matrix, index = setup
        expected = (flat.column("price") * flat.column("size")).sum()
        got = matrix[index.continuous_pos("price"), index.continuous_pos("size")]
        assert np.isclose(got, expected)

    def test_label_column(self, setup):
        _, flat, _, matrix, index = setup
        expected = (flat.column("price") * flat.column("units")).sum()
        got = matrix[index.continuous_pos("price"), index.label_position]
        assert np.isclose(got, expected)

    def test_squared_diagonal(self, setup):
        _, flat, _, matrix, index = setup
        pos = index.continuous_pos("size")
        assert np.isclose(matrix[pos, pos], (flat.column("size") ** 2).sum())

    def test_categorical_diagonal_counts(self, setup):
        _, flat, _, matrix, index = setup
        city = flat.column("city")
        for value in np.unique(city):
            pos = index.categorical_pos("city", value)
            assert matrix[pos, pos] == (city == value).sum()

    def test_categorical_cross_continuous(self, setup):
        _, flat, _, matrix, index = setup
        city = flat.column("city")
        units = flat.column("units")
        for value in np.unique(city):
            pos = index.categorical_pos("city", value)
            row, col = sorted((pos, index.label_position))
            assert np.isclose(
                matrix[row, col], units[city == value].sum()
            )

    def test_matrix_symmetric(self, setup):
        *_, matrix, _ = setup
        assert np.allclose(matrix, matrix.T)

    def test_matrix_psd(self, setup):
        # sum of outer products z z^T is positive semidefinite
        *_, matrix, _ = setup
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() > -1e-6 * max(1.0, eigenvalues.max())

    def test_unseen_category_raises(self, setup):
        *_, index = setup
        with pytest.raises(KeyError):
            index.categorical_pos("city", 999_999)


class TestCategoricalPairs:
    def test_pair_blocks(self, tiny_favorita):
        ds = tiny_favorita
        engine = LMFAO(ds.database, ds.join_tree)
        covar = CovarBatch(["txns"], ["stype", "promo"], "units")
        matrix, index = covar.assemble(engine.run(covar.batch))
        flat = materialize_join(ds.database)
        stype = flat.column("stype")
        promo = flat.column("promo")
        for sv in np.unique(stype):
            for pv in np.unique(promo):
                expected = ((stype == sv) & (promo == pv)).sum()
                row, col = sorted(
                    (
                        index.categorical_pos("stype", sv),
                        index.categorical_pos("promo", pv),
                    )
                )
                assert matrix[row, col] == expected
