"""Chow-Liu trees: structure learning over LMFAO mutual information."""

import numpy as np
import pytest

from repro import LMFAO
from repro.ml.chow_liu import chow_liu_tree


class TestChowLiu:
    def test_result_is_spanning_tree(self, tiny_favorita):
        ds = tiny_favorita
        attrs = ["stype", "promo", "locale", "family", "perishable"]
        engine = LMFAO(ds.database, ds.join_tree)
        edges, mi = chow_liu_tree(engine, attrs)
        assert len(edges) == len(attrs) - 1
        # connected: union-find over the edges
        parent = {a: a for a in attrs}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(a) for a in attrs}) == 1

    def test_maximizes_total_mi(self, tiny_favorita):
        """The Chow-Liu tree's total MI weight is maximal among a sample
        of random spanning trees."""
        ds = tiny_favorita
        attrs = ["stype", "promo", "locale", "family"]
        engine = LMFAO(ds.database, ds.join_tree)
        edges, mi = chow_liu_tree(engine, attrs)
        # mi keys follow the attrs-list order; normalize lookups
        weight = {frozenset(pair): value for pair, value in mi.items()}
        chosen_weight = sum(weight[frozenset(e)] for e in edges)

        rng = np.random.default_rng(0)
        for _ in range(20):
            order = list(rng.permutation(attrs))
            random_edges = [
                frozenset((order[i], order[rng.integers(0, i)]))
                for i in range(1, len(order))
            ]
            random_weight = sum(weight[e] for e in random_edges)
            assert chosen_weight >= random_weight - 1e-12

    def test_requires_two_attrs(self, tiny_favorita):
        ds = tiny_favorita
        engine = LMFAO(ds.database, ds.join_tree)
        with pytest.raises(ValueError):
            chow_liu_tree(engine, ["stype"])

    def test_correlated_pair_forms_edge(self):
        """Attributes that determine each other must be adjacent."""
        from repro.data import Database, Relation
        from repro.data.schema import Schema, categorical, key

        rng = np.random.default_rng(1)
        n = 2_000
        a = rng.integers(0, 3, n)
        rel = Relation(
            "R",
            Schema(
                [key("k"), categorical("a"), categorical("b"), categorical("c")]
            ),
            {
                "k": np.arange(n),
                "a": a,
                "b": a,  # b == a exactly
                "c": rng.integers(0, 3, n),  # independent
            },
        )
        engine = LMFAO(Database([rel]))
        edges, _ = chow_liu_tree(engine, ["a", "b", "c"])
        assert ("a", "b") in edges
