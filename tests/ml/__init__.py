"""Test package."""
