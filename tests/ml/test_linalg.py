"""QR / SVD over joins: factors match NumPy over the materialized design."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.linalg import decompose_join_matrix


def design_matrix_over_join(flat, continuous):
    columns = [np.ones(flat.n_rows)]
    for attr in continuous:
        columns.append(np.asarray(flat.column(attr), dtype=np.float64))
    return np.stack(columns, axis=1)


class TestDecompositions:
    @pytest.fixture(scope="class")
    def setup(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        engine = LMFAO(ds.database, ds.join_tree)
        flat = materialize_join(ds.database)
        decomposition = decompose_join_matrix(
            engine, ["txns", "price", "units"]
        )
        design = design_matrix_over_join(flat, ["price", "units", "txns"])
        # decompose_join_matrix uses the first attr as the plumbing label,
        # so its column order is [1, price, units, txns]
        return decomposition, design

    def test_r_factor_reconstructs_gram(self, setup):
        decomposition, design = setup
        gram = design.T @ design
        reconstructed = decomposition.r_factor.T @ decomposition.r_factor
        assert np.allclose(reconstructed, gram, rtol=1e-8, atol=1e-6)

    def test_r_upper_triangular(self, setup):
        decomposition, _ = setup
        r = decomposition.r_factor
        assert np.allclose(r, np.triu(r))

    def test_singular_values_match_numpy(self, setup):
        decomposition, design = setup
        expected = np.linalg.svd(design, compute_uv=False)
        assert np.allclose(
            decomposition.singular_values, expected, rtol=1e-6
        )

    def test_condition_number_matches(self, setup):
        decomposition, design = setup
        expected = np.linalg.cond(design)
        assert np.isclose(
            decomposition.condition_number(), expected, rtol=1e-5
        )

    def test_rank_full(self, setup):
        decomposition, design = setup
        assert decomposition.rank() == design.shape[1]

    def test_n_rows(self, setup):
        decomposition, design = setup
        assert decomposition.n_rows == len(design)

    def test_right_vectors_orthonormal(self, setup):
        decomposition, _ = setup
        v = decomposition.right_vectors
        assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-8)


class TestSingularDesigns:
    def test_one_hot_collinearity_handled(self, tiny_favorita):
        """One-hot blocks + intercept are exactly collinear; the ridge
        and jittered Cholesky must still factorize."""
        ds = tiny_favorita
        engine = LMFAO(ds.database, ds.join_tree)
        decomposition = decompose_join_matrix(
            engine, ["txns", "price"], ["stype"], ridge=1e-9
        )
        assert np.isfinite(decomposition.singular_values).all()
        # collinearity shows up as a rank deficiency of exactly 1
        p = len(decomposition.singular_values)
        assert decomposition.rank(tolerance=1e-8) <= p

    def test_requires_continuous(self, tiny_favorita):
        ds = tiny_favorita
        engine = LMFAO(ds.database, ds.join_tree)
        with pytest.raises(ValueError):
            decompose_join_matrix(engine, [])
