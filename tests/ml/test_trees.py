"""CART trees: LMFAO-learned trees match brute-force CART exactly."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.baselines import brute_force_cart
from repro.ml.trees import CARTLearner, Condition, _gini, _variance


def tree_structure(node):
    if node.is_leaf:
        return ("leaf", round(node.prediction, 6))
    return (
        str(node.condition),
        tree_structure(node.left),
        tree_structure(node.right),
    )


class TestCostFunctions:
    def test_variance_zero_for_constant(self):
        assert _variance(5, 10.0, 20.0) == 0.0  # y == 2 everywhere

    def test_variance_positive(self):
        # y = [1, 3]: sum 4, sumsq 10, var-cost = 10 - 16/2 = 2
        assert _variance(2, 4.0, 10.0) == 2.0

    def test_variance_empty(self):
        assert _variance(0, 0.0, 0.0) == 0.0

    def test_gini_pure(self):
        assert _gini({0: 10.0}) == 0.0

    def test_gini_uniform_two_classes(self):
        assert np.isclose(_gini({0: 5.0, 1: 5.0}), 0.5)

    def test_gini_empty(self):
        assert _gini({}) == 0.0


class TestConditions:
    def test_delta_roundtrip(self):
        condition = Condition("x", "<=", 3.0)
        delta = condition.delta()
        assert delta.dynamic
        cols = {"x": np.array([1.0, 5.0])}
        assert delta.evaluate(cols).tolist() == [1.0, 0.0]
        assert condition.complement_delta().evaluate(cols).tolist() == [
            0.0,
            1.0,
        ]

    def test_equality_condition(self):
        condition = Condition("c", "==", 2.0)
        assert condition.test(np.array([2, 3])).tolist() == [True, False]


class TestRegressionTree:
    @pytest.fixture(scope="class")
    def learned(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        flat = materialize_join(ds.database)
        cont = ["txns", "price"]
        cat = ["stype", "promo"]
        params = dict(
            max_depth=3, min_samples_split=40, n_buckets=6,
        )
        engine = LMFAO(ds.database, ds.join_tree)
        learner = CARTLearner(
            engine, cont, cat, "units", "regression", **params
        )
        lmfao_tree = learner.fit()
        # same buckets for a true head-to-head (the paper feeds all
        # systems the same buckets)
        brute = brute_force_cart(
            ds.database, cont, cat, "units", "regression",
            flat=flat, thresholds=learner.thresholds, **params,
        )
        return lmfao_tree, brute, flat, learner

    def test_identical_structure(self, learned):
        lmfao_tree, brute, _, _ = learned
        assert tree_structure(lmfao_tree.root) == tree_structure(brute.root)

    def test_identical_rmse(self, learned):
        lmfao_tree, brute, flat, _ = learned
        assert np.isclose(lmfao_tree.rmse(flat), brute.rmse(flat))

    def test_tree_reduces_error_vs_mean(self, learned):
        lmfao_tree, _, flat, _ = learned
        target = flat.column("units")
        baseline_rmse = float(np.sqrt(np.mean((target - target.mean()) ** 2)))
        assert lmfao_tree.rmse(flat) < baseline_rmse

    def test_node_count_bounded(self, learned):
        lmfao_tree, *_ = learned
        assert lmfao_tree.node_count() <= 2 ** (3 + 1) - 1

    def test_plan_cache_reused_across_nodes(self, learned):
        *_, learner = learned
        # a plan is cached per ancestor-attribute pattern (values and
        # comparison operators are dynamic); sibling subtrees with the
        # same attribute path share plans, so plans < batches
        assert len(learner.engine._plan_cache) < learner.batches_run


class TestClassificationTree:
    @pytest.fixture(scope="class")
    def learned(self, request):
        ds = request.getfixturevalue("tiny_tpcds")
        flat = materialize_join(ds.database)
        cont = ["ss_list_price", "hd_dep_count"]
        cat = ["cd_marital", "cd_education"]
        params = dict(max_depth=2, min_samples_split=30, n_buckets=5)
        engine = LMFAO(ds.database, ds.join_tree)
        learner = CARTLearner(
            engine, cont, cat, "preferred", "classification", **params
        )
        lmfao_tree = learner.fit()
        brute = brute_force_cart(
            ds.database, cont, cat, "preferred", "classification",
            flat=flat, thresholds=learner.thresholds, **params,
        )
        return lmfao_tree, brute, flat

    def test_identical_structure(self, learned):
        lmfao_tree, brute, _ = learned
        assert tree_structure(lmfao_tree.root) == tree_structure(brute.root)

    def test_identical_accuracy(self, learned):
        lmfao_tree, brute, flat = learned
        assert np.isclose(lmfao_tree.accuracy(flat), brute.accuracy(flat))

    def test_beats_majority_class(self, learned):
        lmfao_tree, _, flat = learned
        labels = flat.column("preferred")
        majority = max(
            np.mean(labels == v) for v in np.unique(labels)
        )
        assert lmfao_tree.accuracy(flat) >= majority


class TestLearnerValidation:
    def test_unknown_kind_rejected(self, toy_db):
        engine = LMFAO(toy_db)
        with pytest.raises(ValueError, match="kind"):
            CARTLearner(engine, ["price"], [], "units", "boosting")

    def test_min_samples_split_stops_growth(self, toy_db):
        engine = LMFAO(toy_db)
        learner = CARTLearner(
            engine, ["price"], ["city"], "units", "regression",
            max_depth=5, min_samples_split=10_000, n_buckets=4,
        )
        tree = learner.fit()
        assert tree.node_count() == 1  # root only: not enough samples

    def test_max_depth_zero_gives_single_leaf(self, toy_db):
        engine = LMFAO(toy_db)
        learner = CARTLearner(
            engine, ["price"], [], "units", "regression",
            max_depth=0, min_samples_split=1, n_buckets=4,
        )
        tree = learner.fit()
        assert tree.root.is_leaf
        flat = materialize_join(toy_db)
        assert np.isclose(tree.root.prediction, flat.column("units").mean())
