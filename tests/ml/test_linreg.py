"""Ridge regression: LMFAO training matches the materialized baselines."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.baselines import gradient_descent_epochs, ols_closed_form
from repro.ml import train_ridge


@pytest.fixture(scope="module")
def favorita_setup(request):
    ds = request.getfixturevalue("tiny_favorita")
    flat = materialize_join(ds.database)
    cont = ["txns", "price"]
    cat = ["stype", "promo", "family"]
    return ds, flat, cont, cat


class TestClosedForm:
    def test_matches_materialized_ols(self, favorita_setup):
        ds, flat, cont, cat = favorita_setup
        lmfao_model = train_ridge(
            ds.database,
            cont,
            cat,
            "units",
            join_tree=ds.join_tree,
            method="closed",
            l2=1e-3,
        )
        baseline = ols_closed_form(
            ds.database, cont, cat, "units", l2=1e-3, flat=flat
        )
        assert np.allclose(
            lmfao_model.theta, baseline.theta, rtol=1e-6, atol=1e-8
        )

    def test_rmse_identical(self, favorita_setup):
        ds, flat, cont, cat = favorita_setup
        lmfao_model = train_ridge(
            ds.database, cont, cat, "units",
            join_tree=ds.join_tree, method="closed",
        )
        baseline = ols_closed_form(ds.database, cont, cat, "units", flat=flat)
        assert np.isclose(lmfao_model.rmse(flat), baseline.rmse(flat))


class TestBGD:
    def test_bgd_converges_to_closed_form(self, favorita_setup):
        # the one-hot design is nearly collinear with the intercept, so
        # the covar matrix is ill-conditioned and BGD needs many (cheap,
        # O(p^2)) iterations; convergence is asserted on model quality
        ds, flat, cont, cat = favorita_setup
        closed = train_ridge(
            ds.database, cont, cat, "units",
            join_tree=ds.join_tree, method="closed", l2=1e-2,
        )
        bgd = train_ridge(
            ds.database, cont, cat, "units",
            join_tree=ds.join_tree, method="bgd", l2=1e-2,
            max_iterations=20_000,
        )
        assert np.isclose(bgd.rmse(flat), closed.rmse(flat), rtol=1e-4)
        assert np.allclose(bgd.theta, closed.theta, atol=0.05)

    def test_bgd_iterations_bounded(self, favorita_setup):
        ds, _, cont, cat = favorita_setup
        model = train_ridge(
            ds.database, cont, cat, "units",
            join_tree=ds.join_tree, method="bgd", max_iterations=10,
        )
        assert model.iterations <= 10

    def test_unknown_method_rejected(self, favorita_setup):
        ds, _, cont, cat = favorita_setup
        with pytest.raises(ValueError, match="method"):
            train_ridge(
                ds.database, cont, cat, "units",
                join_tree=ds.join_tree, method="sgd",
            )


class TestGradientDescentBaseline:
    def test_one_epoch_is_worse_than_closed_form(self, favorita_setup):
        """The paper's TensorFlow result: one epoch over the join does not
        reach the closed-form accuracy."""
        ds, flat, cont, cat = favorita_setup
        one_epoch = gradient_descent_epochs(
            ds.database, cont, cat, "units", epochs=1, flat=flat
        )
        closed = ols_closed_form(ds.database, cont, cat, "units", flat=flat)
        assert one_epoch.rmse(flat) >= closed.rmse(flat)


class TestPrediction:
    def test_predicts_unseen_categories_as_zero_block(self, favorita_setup):
        ds, flat, cont, cat = favorita_setup
        model = train_ridge(
            ds.database, cont, cat, "units",
            join_tree=ds.join_tree, method="closed",
        )
        predictions = model.predict(flat)
        assert predictions.shape == (flat.n_rows,)
        assert np.isfinite(predictions).all()

    def test_train_test_split(self, favorita_setup):
        from repro.datasets import train_test_split_by

        ds, _, cont, cat = favorita_setup
        train_db, test_db = train_test_split_by(ds, "date", 0.2)
        model = train_ridge(
            train_db, cont, cat, "units",
            join_tree=ds.join_tree, method="closed",
        )
        test_flat = materialize_join(test_db)
        assert test_flat.n_rows > 0
        assert np.isfinite(model.rmse(test_flat))
