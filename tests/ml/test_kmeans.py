"""K-means over joins: convergence and agreement with direct Lloyd steps."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.kmeans import kmeans


class TestKMeans:
    @pytest.fixture(scope="class")
    def setup(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        engine = LMFAO(ds.database, ds.join_tree)
        flat = materialize_join(ds.database)
        return engine, flat

    def test_converges(self, setup):
        engine, _ = setup
        result = kmeans(engine, ["txns", "price"], 3, max_iterations=15)
        assert result.iterations <= 15
        assert result.centroids.shape == (3, 2)

    def test_inertia_monotone_after_first_step(self, setup):
        engine, _ = setup
        result = kmeans(engine, ["txns", "price"], 3, max_iterations=15)
        history = result.inertia_history
        for before, after in zip(history[1:], history[2:]):
            assert after <= before + 1e-6 * max(1.0, before)

    def test_centroids_match_assignment_means(self, setup):
        """Fixed point: each final centroid is the mean of its cluster
        over the materialized join."""
        engine, flat = setup
        result = kmeans(
            engine, ["txns", "price"], 3, max_iterations=30, tolerance=1e-9
        )
        assignment = result.assign(flat)
        points = np.stack(
            [flat.column("txns"), flat.column("price")], axis=1
        ).astype(np.float64)
        for j in range(3):
            mask = assignment == j
            if mask.sum() == 0:
                continue
            assert np.allclose(
                result.centroids[j], points[mask].mean(axis=0),
                rtol=1e-6, atol=1e-6,
            )

    def test_k_one_gives_global_mean(self, setup):
        engine, flat = setup
        result = kmeans(engine, ["txns"], 1, max_iterations=5)
        assert np.isclose(
            result.centroids[0, 0], flat.column("txns").mean(), rtol=1e-9
        )

    def test_invalid_k(self, setup):
        engine, _ = setup
        with pytest.raises(ValueError):
            kmeans(engine, ["txns"], 0)

    def test_unknown_feature(self, setup):
        engine, _ = setup
        with pytest.raises(KeyError):
            kmeans(engine, ["ghost"], 2)

    def test_dynamic_udf_plans_reused(self, toy_db):
        """Across iterations the batch structure is identical, so the
        compiled plan is reused with re-bound centroids."""
        engine = LMFAO(toy_db)
        kmeans(engine, ["units", "price"], 2, max_iterations=6, tolerance=0)
        # one plan per (k-structure), not one per iteration
        assert len(engine._plan_cache) == 1
