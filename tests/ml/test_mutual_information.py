"""Mutual information: matches direct computation on the joint distribution."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.mutual_information import (
    build_mi_batch,
    mutual_information_from_results,
    pairwise_mutual_information,
)


def direct_mi(flat, a, b):
    """Reference MI computed straight from the materialized join."""
    col_a = flat.column(a)
    col_b = flat.column(b)
    n = len(col_a)
    mi = 0.0
    for va in np.unique(col_a):
        mask_a = col_a == va
        p_a = mask_a.sum() / n
        for vb in np.unique(col_b):
            joint = (mask_a & (col_b == vb)).sum() / n
            if joint > 0:
                p_b = (col_b == vb).sum() / n
                mi += joint * np.log(joint / (p_a * p_b))
    return max(0.0, mi)


class TestBatchShape:
    def test_query_count(self):
        batch = build_mi_batch(["a", "b", "c"])
        # 1 total + 3 marginals + 3 pairs
        assert len(batch) == 7

    def test_pairwise_formula(self):
        n = 5
        batch = build_mi_batch([f"x{i}" for i in range(n)])
        n_pairs = n * (n - 1) // 2
        assert len(batch) == 1 + n + n_pairs


class TestValues:
    @pytest.fixture(scope="class")
    def mi_setup(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        attrs = ["stype", "promo", "locale", "family"]
        engine = LMFAO(ds.database, ds.join_tree)
        mi = pairwise_mutual_information(engine, attrs)
        flat = materialize_join(ds.database)
        return attrs, mi, flat

    def test_matches_direct_computation(self, mi_setup):
        attrs, mi, flat = mi_setup
        for (a, b), value in mi.items():
            assert np.isclose(value, direct_mi(flat, a, b), atol=1e-9), (
                a,
                b,
            )

    def test_nonnegative(self, mi_setup):
        _, mi, _ = mi_setup
        assert all(v >= 0.0 for v in mi.values())

    def test_all_pairs_present(self, mi_setup):
        attrs, mi, _ = mi_setup
        expected_pairs = {(a, b) for i, a in enumerate(attrs) for b in attrs[i + 1:]}
        assert set(mi) == expected_pairs

    def test_self_information_upper_bounds_pair(self, mi_setup):
        """MI(a,b) <= min(H(a), H(b))."""
        attrs, mi, flat = mi_setup
        def entropy(attr):
            col = flat.column(attr)
            _, counts = np.unique(col, return_counts=True)
            p = counts / counts.sum()
            return float(-(p * np.log(p)).sum())
        for (a, b), value in mi.items():
            assert value <= min(entropy(a), entropy(b)) + 1e-9


class TestEdgeCases:
    def test_independent_attrs_near_zero(self):
        # attributes generated independently have small MI
        from repro.data import Database, Relation
        from repro.data.schema import Schema, categorical, key

        rng = np.random.default_rng(0)
        n = 5_000
        rel = Relation(
            "R",
            Schema([key("k"), categorical("a"), categorical("b")]),
            {
                "k": np.arange(n),
                "a": rng.integers(0, 2, n),
                "b": rng.integers(0, 2, n),
            },
        )
        dim = Relation(
            "D",
            Schema([key("k")]),
            {"k": np.arange(n)},
        )
        db = Database([rel, dim])
        engine = LMFAO(db)
        mi = pairwise_mutual_information(engine, ["a", "b"])
        assert mi[("a", "b")] < 0.01

    def test_perfectly_dependent_attr(self):
        from repro.data import Database, Relation
        from repro.data.schema import Schema, categorical, key

        n = 99  # divisible by 3: uniform distribution over categories
        values = np.arange(n) % 3
        rel = Relation(
            "R",
            Schema([key("k"), categorical("a"), categorical("b")]),
            {"k": np.arange(n), "a": values, "b": values},
        )
        db = Database([rel])
        # single-relation "join": MI(a, a) = H(a) = log 3
        engine = LMFAO(db)
        mi = pairwise_mutual_information(engine, ["a", "b"])
        assert np.isclose(mi[("a", "b")], np.log(3), atol=1e-9)
