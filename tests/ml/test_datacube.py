"""Data cubes: cuboid counts, ALL encoding, rollup consistency."""

import numpy as np
import pytest

from repro import LMFAO, materialize_join
from repro.ml.datacube import ALL, DataCube, build_cube_batch


@pytest.fixture(scope="module")
def cube_setup(request):
    ds = request.getfixturevalue("tiny_favorita")
    engine = LMFAO(ds.database, ds.join_tree)
    cube = DataCube(engine, ["stype", "locale", "promo"], ["units", "txns"])
    cube.compute()
    flat = materialize_join(ds.database)
    return cube, flat


class TestBatchShape:
    def test_2k_cuboids(self):
        batch = build_cube_batch(["a", "b", "c"], ["m"])
        assert len(batch) == 8

    def test_aggregate_count_formula(self):
        # 2^d * v application aggregates (paper Table 2 formula)
        batch = build_cube_batch(["a", "b"], ["m1", "m2", "m3"])
        assert batch.n_application_aggregates == 4 * 3

    def test_needs_dimensions_and_measures(self):
        with pytest.raises(ValueError):
            build_cube_batch([], ["m"])
        with pytest.raises(ValueError):
            build_cube_batch(["a"], [])


class TestCubeContents:
    def test_apex_matches_total(self, cube_setup):
        cube, flat = cube_setup
        apex = cube.cuboid([])
        assert np.isclose(apex.column("sum:units")[0], flat.column("units").sum())

    def test_single_dimension_cuboid(self, cube_setup):
        cube, flat = cube_setup
        cuboid = cube.cuboid(["stype"])
        stype = flat.column("stype")
        units = flat.column("units")
        for value, total in zip(
            cuboid.column("stype"), cuboid.column("sum:units")
        ):
            assert np.isclose(total, units[stype == value].sum())

    def test_full_cuboid(self, cube_setup):
        cube, flat = cube_setup
        cuboid = cube.cuboid(["stype", "locale", "promo"])
        # spot-check one cell
        s, l, p = (
            cuboid.column("stype")[0],
            cuboid.column("locale")[0],
            cuboid.column("promo")[0],
        )
        mask = (
            (flat.column("stype") == s)
            & (flat.column("locale") == l)
            & (flat.column("promo") == p)
        )
        assert np.isclose(
            cuboid.column("sum:units")[0], flat.column("units")[mask].sum()
        )

    def test_rollup_consistency(self, cube_setup):
        """Summing any cuboid over one dimension gives the coarser cuboid
        — the defining property of the cube lattice."""
        cube, _ = cube_setup
        fine = cube.cuboid(["stype", "locale"])
        coarse = cube.cuboid(["stype"])
        rolled = {}
        for s, units in zip(fine.column("stype"), fine.column("sum:units")):
            rolled[s] = rolled.get(s, 0.0) + units
        for s, units in zip(coarse.column("stype"), coarse.column("sum:units")):
            assert np.isclose(rolled[s], units)


class TestCubeRelation:
    def test_all_value_encoding(self, cube_setup):
        cube, _ = cube_setup
        relation = cube.cube
        apex_rows = relation.filter(
            (relation.column("stype") == ALL)
            & (relation.column("locale") == ALL)
            & (relation.column("promo") == ALL)
        )
        assert apex_rows.n_rows == 1

    def test_row_count_is_sum_of_cuboids(self, cube_setup):
        cube, _ = cube_setup
        total = 0
        from itertools import combinations

        for size in range(4):
            for subset in combinations(["stype", "locale", "promo"], size):
                total += cube.cuboid(list(subset)).n_rows
        assert cube.cube.n_rows == total

    def test_slice(self, cube_setup):
        cube, flat = cube_setup
        promo_values = np.unique(flat.column("promo"))
        sliced = cube.slice(promo=int(promo_values[0]))
        assert sliced.n_rows == 1
        expected = flat.column("units")[
            flat.column("promo") == promo_values[0]
        ].sum()
        assert np.isclose(sliced.column("units")[0], expected)
