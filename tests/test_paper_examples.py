"""The paper's running examples (§3.1-§3.5), executed on Favorita.

These tests pin the reproduction to the paper's own worked examples:
Q1-Q4 over the Favorita join tree of Figure 3, and the multi-output
group scenario of Figure 4.
"""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch, Udf, materialize_join
from repro.baselines import MaterializedEngine
from repro.query.functions import Identity

from .engine.helpers import assert_results_equal


@pytest.fixture(scope="module")
def favorita(request):
    return request.getfixturevalue("tiny_favorita")


def paper_queries():
    """Q1, Q2, Q3, Q4 in the spirit of Examples 3.1-3.5.

    Q1(f(units) * g(price))           -- scalar, functions on two relations
    Q2(family; g(price))              -- grouped by an Items attribute
    Q3(family; h(txns, city))         -- grouped, 2-ary function
    Q4(f(units) * ...)                -- the Figure 4 aggregate
    """
    f_units = Udf(["units"], lambda u: np.asarray(u, dtype=np.float64) ** 2, "f")
    g_price = Udf(["price"], lambda p: np.log1p(np.abs(p)), "g")
    h = Udf(
        ["txns", "city"],
        lambda t, c: np.asarray(t, dtype=np.float64)
        * (np.asarray(c, dtype=np.float64) + 1.0),
        "h",
    )
    return QueryBatch(
        [
            Query("Q1", [], [Aggregate.of(f_units, g_price, name="a")]),
            Query("Q2", ["family"], [Aggregate.of(g_price, name="a")]),
            Query("Q3", ["family"], [Aggregate.of(h, name="a")]),
            Query("Q4", [], [Aggregate.of(f_units, name="a")]),
        ]
    )


class TestFigure3Scenario:
    def test_results_match_materialized(self, favorita):
        batch = paper_queries()
        engine = LMFAO(favorita.database, favorita.join_tree)
        got = engine.run(batch)
        expected = MaterializedEngine(favorita.database).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-8)

    def test_views_flow_along_figure3_edges(self, favorita):
        batch = paper_queries()
        engine = LMFAO(favorita.database, favorita.join_tree)
        plan = engine.plan(batch)
        tree_edges = {frozenset(e) for e in favorita.join_tree.edges}
        for view in plan.decomposed.views:
            if view.is_output:
                continue
            assert frozenset((view.source, view.target)) in tree_edges

    def test_group_count_is_small(self, favorita):
        """The paper's scenario partitions into 7 groups; ours lands in
        the same regime (one group per node plus a few extra levels)."""
        batch = paper_queries()
        engine = LMFAO(favorita.database, favorita.join_tree)
        stats = engine.plan(batch).statistics
        assert stats.n_groups <= 2 * len(favorita.join_tree.nodes)

    def test_shared_views_between_q1_and_q2(self, favorita):
        """Example 3.2: Q1 and Q2 share V_T (and its underlying views)."""
        batch = paper_queries()
        only_q1 = QueryBatch([batch.queries[0]])
        both = QueryBatch(list(batch.queries[:2]))
        engine = LMFAO(favorita.database, favorita.join_tree)
        views_q1 = engine.plan(only_q1).statistics.n_views
        views_both = engine.plan(both).statistics.n_views
        # adding Q2 must cost fewer views than planning it alone would
        views_q2_alone = engine.plan(
            QueryBatch([batch.queries[1]])
        ).statistics.n_views
        assert views_both < views_q1 + views_q2_alone


class TestExample33ChainCounts:
    """Example 3.3: per-attribute counts over a chain S1-...-S_{n-1}."""

    @pytest.fixture(scope="class")
    def chain(self, request):
        return request.getfixturevalue("chain_db")

    def test_all_marginal_counts_correct(self, chain):
        batch = QueryBatch(
            [
                Query(f"Q_{attr}", [attr], [Aggregate.count(name="cnt")])
                for attr in ("a", "b", "c", "d", "e")
            ]
        )
        engine = LMFAO(chain.database if hasattr(chain, "database") else chain)
        got = engine.run(batch)
        flat = materialize_join(chain)
        for attr in ("a", "b", "c", "d", "e"):
            rel = got[f"Q_{attr}"]
            values, counts = np.unique(
                flat.column(attr), return_counts=True
            )
            table = dict(zip(rel.column(attr).tolist(), rel.column("cnt")))
            assert table == dict(
                zip(values.tolist(), counts.astype(float).tolist())
            )

    def test_pairwise_counts_correct(self, chain):
        """The Q_{i,j} generalization at the end of Example 3.3."""
        batch = QueryBatch(
            [
                Query("Q_ae", ["a", "e"], [Aggregate.count(name="cnt")]),
                Query("Q_bd", ["b", "d"], [Aggregate.count(name="cnt")]),
            ]
        )
        engine = LMFAO(chain)
        got = engine.run(batch)
        expected = MaterializedEngine(chain).run(batch)
        assert_results_equal(got, expected, batch)

    def test_multi_root_no_quadratic_views(self, chain):
        """Multi-root keeps the marginal-count batch linear in views."""
        batch = QueryBatch(
            [
                Query(f"Q_{attr}", [attr], [Aggregate.count(name="cnt")])
                for attr in ("a", "b", "c", "d", "e")
            ]
        )
        engine = LMFAO(chain, multi_root=True)
        stats = engine.plan(batch).statistics
        # 2 directional views per edge + marginal outputs is the linear
        # regime of Example 3.3's second strategy
        n_edges = 3
        assert stats.n_views <= 2 * n_edges + len(batch) + 2
