"""GYO reduction: acyclicity detection."""

from repro.jointree.gyo import ear_decomposition, is_acyclic


class TestAcyclic:
    def test_single_edge(self):
        assert is_acyclic({"R": {"a", "b"}})

    def test_empty(self):
        assert is_acyclic({})

    def test_chain(self):
        edges = {
            "R1": {"a", "b"},
            "R2": {"b", "c"},
            "R3": {"c", "d"},
        }
        assert is_acyclic(edges)

    def test_star(self):
        edges = {
            "F": {"a", "b", "c"},
            "D1": {"a", "x"},
            "D2": {"b", "y"},
            "D3": {"c", "z"},
        }
        assert is_acyclic(edges)

    def test_snowflake(self):
        edges = {
            "F": {"a", "b"},
            "D1": {"a", "c"},
            "D2": {"c", "d"},
            "D3": {"b", "e"},
        }
        assert is_acyclic(edges)

    def test_triangle_is_cyclic(self):
        edges = {
            "R": {"a", "b"},
            "S": {"b", "c"},
            "T": {"a", "c"},
        }
        assert not is_acyclic(edges)

    def test_square_is_cyclic(self):
        edges = {
            "R": {"a", "b"},
            "S": {"b", "c"},
            "T": {"c", "d"},
            "U": {"d", "a"},
        }
        assert not is_acyclic(edges)

    def test_triangle_with_covering_edge_is_acyclic(self):
        # adding an edge containing the whole triangle makes it an ear tree
        edges = {
            "R": {"a", "b"},
            "S": {"b", "c"},
            "T": {"a", "c"},
            "big": {"a", "b", "c"},
        }
        assert is_acyclic(edges)

    def test_disconnected_components(self):
        edges = {"R": {"a"}, "S": {"b"}}
        assert is_acyclic(edges)


class TestEarDecomposition:
    def test_order_gives_tree_edges(self):
        edges = {
            "R1": {"a", "b"},
            "R2": {"b", "c"},
            "R3": {"c", "d"},
        }
        order = ear_decomposition(edges)
        assert order is not None
        assert len(order) == 3
        # final entry is the surviving edge
        assert order[-1][1] is None
        witnesses = [(e, w) for e, w in order if w is not None]
        assert len(witnesses) == 2

    def test_cyclic_returns_none(self):
        edges = {
            "R": {"a", "b"},
            "S": {"b", "c"},
            "T": {"a", "c"},
        }
        assert ear_decomposition(edges) is None

    def test_subsumed_edge_is_ear(self):
        edges = {"Big": {"a", "b", "c"}, "Small": {"a", "b"}}
        order = ear_decomposition(edges)
        # either direction is a valid ear/witness pair here
        assert order[0][1] is not None
        assert {order[0][0], order[0][1]} == {"Small", "Big"}
