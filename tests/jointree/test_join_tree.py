"""Join trees: construction, running intersection, rooted views."""

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.data.schema import Schema, key
from repro.jointree.join_tree import JoinTree, join_tree_from_database


def db_from_schemas(schemas):
    relations = []
    for name, attrs in schemas.items():
        cols = {a: np.array([0, 1], dtype=np.int64) for a in attrs}
        relations.append(
            Relation(name, Schema([key(a) for a in attrs]), cols)
        )
    return Database(relations, name="synthetic")


class TestConstruction:
    def test_from_acyclic_database(self, toy_db):
        tree = join_tree_from_database(toy_db)
        assert set(tree.nodes) == {"Sales", "Stores", "Oil"}
        assert len(tree.edges) == 2

    def test_explicit_edges_validated(self, toy_db):
        tree = join_tree_from_database(
            toy_db, edges=[("Sales", "Stores"), ("Sales", "Oil")]
        )
        assert tree.join_keys("Sales", "Stores") == ("store",)

    def test_cyclic_database_rejected(self):
        db = db_from_schemas(
            {"R": ["a", "b"], "S": ["b", "c"], "T": ["a", "c"]}
        )
        with pytest.raises(ValueError, match="cyclic"):
            join_tree_from_database(db)

    def test_wrong_edge_count_rejected(self, toy_db):
        with pytest.raises(ValueError, match="edges"):
            join_tree_from_database(toy_db, edges=[("Sales", "Stores")])

    def test_unknown_node_rejected(self, toy_db):
        with pytest.raises(ValueError, match="unknown node"):
            join_tree_from_database(
                toy_db, edges=[("Sales", "Nope"), ("Sales", "Oil")]
            )

    def test_running_intersection_violation_rejected(self):
        # R1(a,b) - R3(c) - R2(b,c): shared attr b of R1,R2 missing on path
        db = db_from_schemas({"R1": ["a", "b"], "R2": ["b", "c"], "R3": ["c"]})
        with pytest.raises(ValueError, match="running intersection"):
            JoinTree(
                {"R1": {"a", "b"}, "R2": {"b", "c"}, "R3": {"c"}},
                [("R1", "R3"), ("R3", "R2")],
            )

    def test_disconnected_tree_rejected(self):
        with pytest.raises(ValueError):
            JoinTree(
                {"A": {"x"}, "B": {"x"}, "C": {"y"}, "D": {"y"}},
                [("A", "B"), ("C", "D"), ("A", "B")],
            )


class TestRootedView:
    @pytest.fixture
    def chain_tree(self, chain_db):
        return join_tree_from_database(chain_db)

    def test_parents_and_depths(self, chain_tree):
        rooted = chain_tree.rooted("R1")
        assert rooted.parent["R1"] is None
        assert rooted.depth["R4"] == 3
        assert rooted.parent["R4"] == "R3"

    def test_subtree_attrs(self, chain_tree):
        rooted = chain_tree.rooted("R1")
        assert rooted.subtree_attrs["R4"] == frozenset({"d", "e"})
        assert rooted.subtree_attrs["R1"] == frozenset(
            {"a", "b", "c", "d", "e"}
        )

    def test_order_is_topdown(self, chain_tree):
        rooted = chain_tree.rooted("R2")
        position = {n: i for i, n in enumerate(rooted.order)}
        for node, parent in rooted.parent.items():
            if parent is not None:
                assert position[parent] < position[node]

    def test_rooted_cached(self, chain_tree):
        assert chain_tree.rooted("R1") is chain_tree.rooted("R1")

    def test_path_to_root(self, chain_tree):
        rooted = chain_tree.rooted("R1")
        assert rooted.path_to_root("R4") == ["R4", "R3", "R2", "R1"]

    def test_all_attrs(self, chain_tree):
        assert chain_tree.all_attrs() == frozenset({"a", "b", "c", "d", "e"})
