"""Hypertree decomposition: cyclic schemas become acyclic bag databases."""

import numpy as np
import pytest

from repro.data import Database, Relation, materialize_join
from repro.data.schema import Schema, key
from repro.jointree.hypertree import decompose


def cyclic_triangle_db(seed=0):
    rng = np.random.default_rng(seed)
    def rel(name, a1, a2):
        return Relation(
            name,
            Schema([key(a1), key(a2)]),
            {a1: rng.integers(0, 5, 40), a2: rng.integers(0, 5, 40)},
        )
    return Database(
        [rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "a", "c")],
        name="triangle",
    )


class TestDecompose:
    def test_acyclic_is_identity(self, toy_db):
        db, tree = decompose(toy_db)
        assert set(db.relation_names) == set(toy_db.relation_names)
        assert len(tree.edges) == 2

    def test_triangle_becomes_acyclic(self):
        db, tree = decompose(cyclic_triangle_db())
        assert len(db) < 3  # at least one bag merged
        tree.validate()

    def test_join_result_preserved(self):
        original = cyclic_triangle_db()
        flat_before = materialize_join(original)
        db, _ = decompose(original)
        flat_after = materialize_join(db)
        assert flat_after.n_rows == flat_before.n_rows
        cols = sorted(["a", "b", "c"])
        before = sorted(zip(*(flat_before.column(c) for c in cols)))
        after = sorted(zip(*(flat_after.column(c) for c in cols)))
        assert before == after

    def test_engine_runs_on_decomposed_cycle(self):
        from repro import LMFAO, Aggregate, Query, QueryBatch

        db, tree = decompose(cyclic_triangle_db())
        engine = LMFAO(db, tree)
        result = engine.run(
            QueryBatch([Query("count", [], [Aggregate.count()])])
        )
        flat = materialize_join(db)
        assert result["count"].column("count")[0] == flat.n_rows
