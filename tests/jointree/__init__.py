"""Test package."""
