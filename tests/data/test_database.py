"""Database catalog and join materialization."""

import numpy as np
import pytest

from repro.data import Database, Relation, materialize_join
from repro.data.schema import Schema, continuous, key


def rel(name, cols, attrs):
    return Relation(name, Schema(attrs), cols)


class TestCatalog:
    def test_duplicate_relation_rejected(self, toy_db):
        sales = toy_db.relation("Sales")
        with pytest.raises(ValueError):
            Database([sales, sales])

    def test_relation_lookup(self, toy_db):
        assert toy_db.relation("Sales").name == "Sales"
        with pytest.raises(KeyError):
            toy_db.relation("Missing")

    def test_contains_len_iter(self, toy_db):
        assert "Sales" in toy_db and "Nope" not in toy_db
        assert len(toy_db) == 3
        assert {r.name for r in toy_db} == {"Sales", "Stores", "Oil"}

    def test_attributes_dedup(self, toy_db):
        attrs = toy_db.attributes()
        assert attrs.count("store") == 1
        assert "units" in attrs and "price" in attrs

    def test_relations_with_attribute(self, toy_db):
        assert set(toy_db.relations_with_attribute("store")) == {
            "Sales",
            "Stores",
        }

    def test_attribute_kind(self, toy_db):
        assert toy_db.attribute_kind("units") == "continuous"
        assert toy_db.attribute_kind("city") == "categorical"
        with pytest.raises(KeyError):
            toy_db.attribute_kind("nope")

    def test_domain_size_cached(self, toy_db):
        first = toy_db.domain_size("Sales", "store")
        assert first == toy_db.domain_size("Sales", "store")

    def test_replace(self, toy_db):
        smaller = toy_db.relation("Sales").filter(
            toy_db.relation("Sales").column("store") == 0
        )
        replaced = toy_db.replace(smaller)
        assert replaced.relation("Sales").n_rows < toy_db.relation(
            "Sales"
        ).n_rows
        # original untouched
        assert toy_db.relation("Sales").n_rows == 300

    def test_replace_unknown_raises(self, toy_db):
        stray = rel("Stray", {"z": np.array([1])}, [key("z")])
        with pytest.raises(KeyError):
            toy_db.replace(stray)

    def test_with_relation(self, toy_db):
        extra = rel("Extra", {"date": np.array([0])}, [key("date")])
        assert len(toy_db.with_relation(extra)) == 4

    def test_totals(self, toy_db):
        assert toy_db.total_tuples() == 300 + 6 + 25
        assert toy_db.total_bytes() > 0


class TestMaterializeJoin:
    def test_count_matches_brute_force(self, toy_db):
        flat = materialize_join(toy_db)
        sales = toy_db.relation("Sales")
        # every sale matches exactly one store and one oil row
        assert flat.n_rows == sales.n_rows

    def test_join_has_all_attributes(self, toy_db):
        flat = materialize_join(toy_db)
        for attr in toy_db.attributes():
            assert flat.has_column(attr)

    def test_greedy_order_avoids_cross_products(self, chain_db):
        # relation order in the catalog is R1..R4; a naive pairwise fold
        # works, but listing disconnected relations first must too
        flat = materialize_join(chain_db, order=["R1", "R3", "R2", "R4"])
        flat2 = materialize_join(chain_db)
        assert flat.n_rows == flat2.n_rows

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            materialize_join(Database([], name="empty"))
