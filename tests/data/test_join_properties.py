"""Algebraic properties of the natural join (property-based)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, materialize_join
from repro.data.schema import Schema, continuous, key


@st.composite
def three_relations(draw):
    rng = np.random.default_rng(draw(st.integers(0, 5_000)))
    n1 = draw(st.integers(1, 25))
    n2 = draw(st.integers(1, 25))
    n3 = draw(st.integers(1, 25))
    r1 = Relation(
        "R1",
        Schema([key("a"), key("b")]),
        {
            "a": rng.integers(0, 4, n1),
            "b": rng.integers(0, 4, n1),
        },
    )
    r2 = Relation(
        "R2",
        Schema([key("b"), key("c")]),
        {
            "b": rng.integers(0, 4, n2),
            "c": rng.integers(0, 4, n2),
        },
    )
    r3 = Relation(
        "R3",
        Schema([key("c"), continuous("x")]),
        {
            "c": rng.integers(0, 4, n3),
            "x": np.round(rng.normal(0, 1, n3), 3),
        },
    )
    return r1, r2, r3


def row_multiset(relation, columns):
    return sorted(
        zip(*(relation.column(c).tolist() for c in columns))
    )


class TestJoinAlgebra:
    @given(three_relations())
    @settings(max_examples=30, deadline=None)
    def test_join_associative(self, relations):
        r1, r2, r3 = relations
        left_first = r1.join(r2).join(r3)
        right_first = r1.join(r2.join(r3))
        cols = ["a", "b", "c", "x"]
        assert row_multiset(left_first, cols) == row_multiset(
            right_first, cols
        )

    @given(three_relations())
    @settings(max_examples=30, deadline=None)
    def test_join_commutative(self, relations):
        r1, r2, _ = relations
        cols = ["a", "b", "c"]
        assert row_multiset(r1.join(r2), cols) == row_multiset(
            r2.join(r1), cols
        )

    @given(three_relations())
    @settings(max_examples=30, deadline=None)
    def test_materialize_order_independent(self, relations):
        r1, r2, r3 = relations
        db = Database([r1, r2, r3])
        cols = ["a", "b", "c", "x"]
        base = row_multiset(materialize_join(db), cols)
        for order in (["R3", "R2", "R1"], ["R2", "R1", "R3"]):
            assert row_multiset(materialize_join(db, order), cols) == base

    @given(three_relations())
    @settings(max_examples=30, deadline=None)
    def test_semijoin_filter_sound(self, relations):
        """Every joined row's key appears in every participant."""
        r1, r2, _ = relations
        joined = r1.join(r2)
        b_values = set(r2.column("b").tolist())
        assert all(b in b_values for b in joined.column("b").tolist())
