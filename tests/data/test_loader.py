"""CSV round-trips for relations and databases."""

import numpy as np
import pytest

from repro.data import Relation
from repro.data.loader import (
    load_database,
    load_relation,
    save_database,
    save_relation,
)
from repro.data.schema import Schema, categorical, continuous, key


@pytest.fixture
def rel():
    return Relation(
        "Sample",
        Schema([key("k"), categorical("c"), continuous("x")]),
        {
            "k": np.array([3, 1, 2]),
            "c": np.array([0, 1, 0]),
            "x": np.array([1.25, -2.5, 0.0]),
        },
    )


class TestRelationRoundTrip:
    def test_values_survive(self, rel, tmp_path):
        path = tmp_path / "sample.csv"
        save_relation(rel, str(path))
        loaded = load_relation(str(path))
        assert loaded.to_rows() == rel.to_rows()

    def test_schema_survives(self, rel, tmp_path):
        path = tmp_path / "sample.csv"
        save_relation(rel, str(path))
        loaded = load_relation(str(path))
        assert loaded.schema["k"].kind == "key"
        assert loaded.schema["c"].kind == "categorical"
        assert loaded.schema["x"].kind == "continuous"
        assert loaded.schema["k"].dtype == np.dtype("int64")

    def test_name_from_filename(self, rel, tmp_path):
        path = tmp_path / "renamed.csv"
        save_relation(rel, str(path))
        assert load_relation(str(path)).name == "renamed"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_relation(str(path))

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("justaname\n1\n")
        with pytest.raises(ValueError, match="malformed"):
            load_relation(str(path))


class TestDatabaseRoundTrip:
    def test_database_round_trip(self, toy_db, tmp_path):
        directory = tmp_path / "db"
        save_database(toy_db, str(directory))
        loaded = load_database(str(directory), name="toy")
        assert set(loaded.relation_names) == set(toy_db.relation_names)
        for name in toy_db.relation_names:
            assert (
                loaded.relation(name).to_rows()
                == toy_db.relation(name).to_rows()
            )

    def test_partial_load(self, toy_db, tmp_path):
        directory = tmp_path / "db"
        save_database(toy_db, str(directory))
        loaded = load_database(str(directory), relation_names=["Sales"])
        assert loaded.relation_names == ("Sales",)
