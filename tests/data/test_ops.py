"""Kernel laws: factorization, joins and grouped sums vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ops

small_ints = st.lists(st.integers(0, 9), min_size=0, max_size=60)


def brute_join_pairs(left, right):
    return sorted(
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    )


class TestFactorize:
    def test_round_trip(self):
        col = np.array([5, 3, 5, 9, 3])
        codes, uniques = ops.factorize(col)
        assert (uniques[codes] == col).all()

    def test_codes_follow_value_order(self):
        codes, uniques = ops.factorize(np.array([30, 10, 20]))
        assert uniques.tolist() == [10, 20, 30]
        assert codes.tolist() == [2, 0, 1]

    def test_empty(self):
        codes, uniques = ops.factorize(np.array([], dtype=np.int64))
        assert len(codes) == 0 and len(uniques) == 0

    def test_floats(self):
        codes, uniques = ops.factorize(np.array([2.5, 1.5, 2.5]))
        assert (uniques[codes] == np.array([2.5, 1.5, 2.5])).all()


class TestFactorizeRows:
    def test_single_column(self):
        codes, keys = ops.factorize_rows([np.array([4, 2, 4])])
        assert (keys[0][codes] == np.array([4, 2, 4])).all()

    def test_two_columns_decode(self):
        a = np.array([1, 2, 1, 2])
        b = np.array([5, 5, 5, 6])
        codes, keys = ops.factorize_rows([a, b])
        assert (keys[0][codes] == a).all()
        assert (keys[1][codes] == b).all()

    def test_three_columns_decode(self):
        rng = np.random.default_rng(3)
        cols = [rng.integers(0, 4, 80) for _ in range(3)]
        codes, keys = ops.factorize_rows(cols)
        for col, key_col in zip(cols, keys):
            assert (key_col[codes] == col).all()

    def test_keys_are_lexicographically_sorted(self):
        a = np.array([2, 1, 2, 1])
        b = np.array([9, 9, 3, 1])
        _, keys = ops.factorize_rows([a, b])
        tuples = list(zip(keys[0].tolist(), keys[1].tolist()))
        assert tuples == sorted(tuples)

    def test_distinct_count(self):
        a = np.array([1, 1, 2, 2, 1])
        b = np.array([0, 0, 0, 1, 0])
        codes, keys = ops.factorize_rows([a, b])
        assert len(keys[0]) == 3
        assert codes.max() == 2

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ops.factorize_rows([])

    @given(small_ints, small_ints)
    @settings(max_examples=50, deadline=None)
    def test_property_decode(self, left, right):
        if len(left) != len(right):
            left = (left + [0] * len(right))[: max(len(left), len(right))]
            right = (right + [0] * len(left))[: len(left)]
        a, b = np.asarray(left, dtype=np.int64), np.asarray(right, dtype=np.int64)
        if len(a) == 0:
            return
        codes, keys = ops.factorize_rows([a, b])
        assert (keys[0][codes] == a).all()
        assert (keys[1][codes] == b).all()


class TestJoinIndices:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        left = rng.integers(0, 6, 40)
        right = rng.integers(0, 6, 30)
        lc, rc = ops.shared_codes([left], [right])
        li, ri = ops.join_indices(lc, rc)
        got = sorted(zip(li.tolist(), ri.tolist()))
        assert got == brute_join_pairs(left, right)

    def test_many_to_many_fanout(self):
        left = np.array([1, 1, 2])
        right = np.array([1, 1, 1, 2])
        lc, rc = ops.shared_codes([left], [right])
        li, ri = ops.join_indices(lc, rc)
        assert len(li) == 2 * 3 + 1

    def test_no_matches(self):
        lc, rc = ops.shared_codes([np.array([1, 2])], [np.array([3, 4])])
        li, ri = ops.join_indices(lc, rc)
        assert len(li) == 0 and len(ri) == 0

    def test_empty_sides(self):
        lc, rc = ops.shared_codes(
            [np.array([], dtype=np.int64)], [np.array([1, 2])]
        )
        li, ri = ops.join_indices(lc, rc)
        assert len(li) == 0

    def test_composite_keys(self):
        rng = np.random.default_rng(5)
        la, lb = rng.integers(0, 4, 30), rng.integers(0, 3, 30)
        ra, rb = rng.integers(0, 4, 25), rng.integers(0, 3, 25)
        lc, rc = ops.shared_codes([la, lb], [ra, rb])
        li, ri = ops.join_indices(lc, rc)
        expected = sum(
            int(((ra == a) & (rb == b)).sum()) for a, b in zip(la, lb)
        )
        assert len(li) == expected
        assert (la[li] == ra[ri]).all() and (lb[li] == rb[ri]).all()

    @given(small_ints, small_ints)
    @settings(max_examples=50, deadline=None)
    def test_property_join(self, left, right):
        la = np.asarray(left, dtype=np.int64)
        ra = np.asarray(right, dtype=np.int64)
        lc, rc = ops.shared_codes([la], [ra])
        li, ri = ops.join_indices(lc, rc)
        assert sorted(zip(li.tolist(), ri.tolist())) == brute_join_pairs(
            la, ra
        )


class TestGroupAggregate:
    def test_sums_match_brute_force(self):
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 5, 100)
        values = rng.normal(0, 1, 100)
        out_keys, sums = ops.group_aggregate([keys], [values])
        for k, s in zip(out_keys[0], sums[0]):
            assert np.isclose(s, values[keys == k].sum())

    def test_scalar_aggregate(self):
        values = np.array([1.0, 2.0, 3.5])
        keys, sums = ops.group_aggregate([], [values])
        assert keys == []
        assert sums[0].tolist() == [6.5]

    def test_scalar_empty(self):
        keys, sums = ops.group_aggregate([], [np.array([])])
        assert sums[0].tolist() == [0.0]

    def test_composite_group_by(self):
        a = np.array([1, 1, 2, 2, 1])
        b = np.array([0, 1, 0, 0, 0])
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        keys, sums = ops.group_aggregate([a, b], [v])
        table = {
            (ka, kb): s
            for ka, kb, s in zip(keys[0], keys[1], sums[0])
        }
        assert table[(1, 0)] == 6.0
        assert table[(1, 1)] == 2.0
        assert table[(2, 0)] == 7.0

    def test_multiple_value_columns(self):
        keys = np.array([0, 0, 1])
        v1 = np.array([1.0, 2.0, 3.0])
        v2 = np.array([10.0, 20.0, 30.0])
        _, sums = ops.group_aggregate([keys], [v1, v2])
        assert sums[0].tolist() == [3.0, 3.0]
        assert sums[1].tolist() == [30.0, 30.0]

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.floats(-5, 5)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_group_sums(self, rows):
        keys = np.asarray([k for k, _ in rows], dtype=np.int64)
        values = np.asarray([v for _, v in rows])
        out_keys, sums = ops.group_aggregate([keys], [values])
        total = {}
        for k, v in rows:
            total[k] = total.get(k, 0.0) + v
        got = dict(zip(out_keys[0].tolist(), sums[0].tolist()))
        assert set(got) == set(total)
        for k in total:
            assert np.isclose(got[k], total[k], atol=1e-9)


class TestSemijoinAndSort:
    def test_semijoin_mask(self):
        mask = ops.semijoin_mask(np.array([1, 2, 3]), np.array([2, 4]))
        assert mask.tolist() == [False, True, False]

    def test_lexsort_rows(self):
        a = np.array([2, 1, 2])
        b = np.array([0, 5, -1])
        order = ops.lexsort_rows([a, b])
        assert a[order].tolist() == [1, 2, 2]
        assert b[order].tolist() == [5, -1, 0]

    def test_lexsort_requires_columns(self):
        with pytest.raises(ValueError):
            ops.lexsort_rows([])

    def test_distinct_count(self):
        assert ops.distinct_count(np.array([1, 1, 2, 3, 3])) == 3
