"""Relation operations vs brute force."""

import numpy as np
import pytest

from repro.data import Relation
from repro.data.schema import Schema, categorical, continuous, key


def make(name, cols, attrs):
    return Relation(name, Schema(attrs), cols)


@pytest.fixture
def r():
    return make(
        "R",
        {
            "a": np.array([1, 2, 1, 3]),
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
        },
        [key("a"), continuous("x")],
    )


class TestConstruction:
    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            make("R", {"a": np.array([1])}, [key("a"), continuous("x")])

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            make(
                "R",
                {"a": np.array([1, 2]), "x": np.array([1.0])},
                [key("a"), continuous("x")],
            )

    def test_from_dict_infers_kinds(self):
        rel = Relation.from_dict(
            "R", {"a": np.array([1, 2]), "x": np.array([0.5, 1.5])}
        )
        assert rel.schema["a"].is_categorical
        assert rel.schema["x"].is_continuous

    def test_unknown_column_raises(self, r):
        with pytest.raises(KeyError, match="no column"):
            r.column("zzz")


class TestRowOps:
    def test_take(self, r):
        taken = r.take(np.array([2, 0]))
        assert taken.column("a").tolist() == [1, 1]
        assert taken.column("x").tolist() == [3.0, 1.0]

    def test_filter(self, r):
        filtered = r.filter(r.column("a") == 1)
        assert filtered.n_rows == 2

    def test_project(self, r):
        projected = r.project(["x"])
        assert projected.attribute_names == ("x",)

    def test_sorted_by(self, r):
        sorted_rel = r.sorted_by(["a", "x"])
        assert sorted_rel.column("a").tolist() == [1, 1, 2, 3]

    def test_with_column(self, r):
        extended = r.with_column(continuous("y"), np.zeros(4))
        assert extended.column("y").tolist() == [0.0] * 4
        with pytest.raises(ValueError):
            extended.with_column(continuous("y"), np.zeros(4))

    def test_distinct(self, r):
        distinct = r.distinct(["a"])
        assert sorted(distinct.column("a").tolist()) == [1, 2, 3]

    def test_domain_size(self, r):
        assert r.domain_size("a") == 3


class TestJoin:
    def test_natural_join_matches_brute_force(self):
        left = make(
            "L",
            {"k": np.array([1, 1, 2]), "x": np.array([0.1, 0.2, 0.3])},
            [key("k"), continuous("x")],
        )
        right = make(
            "R",
            {"k": np.array([1, 2, 2]), "y": np.array([10.0, 20.0, 30.0])},
            [key("k"), continuous("y")],
        )
        joined = left.join(right)
        rows = sorted(joined.to_rows())
        expected = sorted(
            (lk, lx, ry)
            for lk, lx in zip([1, 1, 2], [0.1, 0.2, 0.3])
            for rk, ry in zip([1, 2, 2], [10.0, 20.0, 30.0])
            if lk == rk
        )
        assert rows == expected

    def test_cross_product_when_no_shared_attrs(self):
        left = make("L", {"x": np.array([1.0, 2.0])}, [continuous("x")])
        right = make("R", {"y": np.array([5.0])}, [continuous("y")])
        assert left.join(right).n_rows == 2

    def test_join_keeps_schema_union(self):
        left = make("L", {"k": np.array([1])}, [key("k")])
        right = make(
            "R",
            {"k": np.array([1]), "y": np.array([2.0])},
            [key("k"), continuous("y")],
        )
        assert left.join(right).attribute_names == ("k", "y")


class TestGroupBySum:
    def test_grouped(self, r):
        result = r.group_by_sum(["a"], {"sx": r.column("x")})
        table = dict(
            zip(result.column("a").tolist(), result.column("sx").tolist())
        )
        assert table == {1: 4.0, 2: 2.0, 3: 4.0}

    def test_scalar(self, r):
        result = r.group_by_sum([], {"sx": r.column("x")})
        assert result.column("sx").tolist() == [10.0]

    def test_to_rows_empty(self):
        rel = make("E", {"a": np.array([], dtype=np.int64)}, [key("a")])
        assert rel.to_rows() == []
