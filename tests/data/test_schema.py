"""Schema and attribute metadata."""

import numpy as np
import pytest

from repro.data.schema import (
    Attribute,
    Schema,
    categorical,
    continuous,
    key,
)


class TestAttribute:
    def test_kinds(self):
        assert key("k").is_categorical
        assert categorical("c").is_categorical
        assert continuous("x").is_continuous
        assert not continuous("x").is_categorical

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Attribute("x", "nonsense")

    def test_dtype_normalized(self):
        attr = Attribute("x", "continuous", "float32")
        assert attr.dtype == np.dtype("float32")

    def test_defaults(self):
        attr = Attribute("x")
        assert attr.kind == "continuous"
        assert attr.dtype == np.dtype("float64")

    def test_equality_and_hash(self):
        assert key("a") == key("a")
        assert hash(key("a")) == hash(key("a"))
        assert key("a") != categorical("a")


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([key("a"), continuous("a")])

    def test_names_order_preserved(self):
        schema = Schema([key("b"), key("a")])
        assert schema.names == ("b", "a")

    def test_contains_and_getitem(self):
        schema = Schema([key("a"), continuous("x")])
        assert "a" in schema and "z" not in schema
        assert schema["x"].is_continuous
        with pytest.raises(KeyError):
            schema["z"]

    def test_get_returns_none_for_missing(self):
        schema = Schema([key("a")])
        assert schema.get("z") is None

    def test_intersection_in_left_order(self):
        left = Schema([key("a"), key("b"), key("c")])
        right = Schema([key("c"), key("a")])
        assert left.intersection(right) == ("a", "c")

    def test_project(self):
        schema = Schema([key("a"), continuous("x"), categorical("c")])
        sub = schema.project(["c", "a"])
        assert sub.names == ("c", "a")

    def test_union_dedups(self):
        left = Schema([key("a"), continuous("x")])
        right = Schema([continuous("x"), key("b")])
        assert left.union(right).names == ("a", "x", "b")

    def test_equality(self):
        assert Schema([key("a")]) == Schema([key("a")])
        assert Schema([key("a")]) != Schema([key("b")])

    def test_len_and_iter(self):
        schema = Schema([key("a"), key("b")])
        assert len(schema) == 2
        assert [a.name for a in schema] == ["a", "b"]
