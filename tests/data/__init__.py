"""Test package."""
