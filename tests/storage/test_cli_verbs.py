"""The ``repro snapshot`` and ``repro restore`` CLI verbs."""

import os

import pytest

from repro.__main__ import main


class TestSnapshotVerb:
    def test_snapshot_writes_a_servable_data_dir(self, tmp_path, capsys):
        out = str(tmp_path / "data")
        assert (
            main(
                ["--scale", "0.05", "snapshot", "favorita", "--out", out]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "snapshot of favorita" in printed
        assert "--data-dir" in printed
        dataset_dir = os.path.join(out, "favorita")
        assert os.path.isfile(os.path.join(dataset_dir, "CURRENT"))
        assert os.path.isfile(os.path.join(dataset_dir, "wal.log"))

    def test_snapshot_refuses_to_overwrite_without_force(
        self, tmp_path, capsys
    ):
        out = str(tmp_path / "data")
        main(["--scale", "0.05", "snapshot", "favorita", "--out", out])
        with pytest.raises(SystemExit, match="--force"):
            main(
                ["--scale", "0.05", "snapshot", "favorita", "--out", out]
            )
        capsys.readouterr()
        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "snapshot",
                    "favorita",
                    "--out",
                    out,
                    "--force",
                ]
            )
            == 0
        )
        assert "snapshot of favorita" in capsys.readouterr().out

    def test_snapshot_unknown_dataset_rejected(self, tmp_path):
        # argparse choices reject before cmd_snapshot even runs
        with pytest.raises(SystemExit):
            main(
                [
                    "snapshot",
                    "not-a-dataset",
                    "--out",
                    str(tmp_path / "x"),
                ]
            )


class TestRestoreVerb:
    def test_restore_reports_relations_and_epoch(self, tmp_path, capsys):
        out = str(tmp_path / "data")
        main(["--scale", "0.05", "snapshot", "favorita", "--out", out])
        capsys.readouterr()
        assert main(["restore", out]) == 0
        printed = capsys.readouterr().out
        assert "favorita: epoch 0" in printed
        assert "Sales" in printed
        assert "snapshot load" in printed

    def test_restore_accepts_the_dataset_dir_itself(
        self, tmp_path, capsys
    ):
        out = str(tmp_path / "data")
        main(["--scale", "0.05", "snapshot", "favorita", "--out", out])
        capsys.readouterr()
        assert main(["restore", os.path.join(out, "favorita")]) == 0
        assert "epoch 0" in capsys.readouterr().out

    def test_restore_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no dataset storage"):
            main(["restore", str(tmp_path)])
