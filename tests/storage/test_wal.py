"""Write-ahead log: framing, replay, torn tails, corruption bounds."""

import os

import numpy as np
import pytest

from repro import WriteAheadLog
from repro.data import DeltaBatch
from repro.storage.wal import WalError


def insert_delta(n=3, base=0):
    return DeltaBatch.insert(
        "Sales",
        {
            "date": np.arange(base, base + n, dtype=np.int64),
            "store": np.zeros(n, dtype=np.int64),
            "units": np.full(n, 1.5),
        },
    )


def delete_delta(indices):
    return DeltaBatch.delete("Sales", np.asarray(indices, dtype=np.int64))


@pytest.fixture()
def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendReplay:
    def test_round_trip_inserts_and_deletes(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta(3)])
        wal.append(2, [delete_delta([0, 2]), insert_delta(1, base=9)])
        wal.close()

        replayed = list(WriteAheadLog(wal_path).replay())
        assert [c.epoch for c in replayed] == [1, 2]
        first = replayed[0].deltas[0]
        np.testing.assert_array_equal(
            first.inserts["date"], np.arange(3, dtype=np.int64)
        )
        assert first.delete_indices is None
        second = replayed[1]
        assert len(second.deltas) == 2
        np.testing.assert_array_equal(
            second.deltas[0].delete_indices, [0, 2]
        )
        np.testing.assert_array_equal(
            second.deltas[1].inserts["date"], [9]
        )

    def test_replayed_deltas_apply_cleanly(self, toy_db, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta(4)])
        wal.append(2, [delete_delta([1, 2])])
        wal.close()
        database = toy_db
        for commit in WriteAheadLog(wal_path).replay():
            for delta in commit.deltas:
                database = database.apply_delta(delta).database
        assert (
            database.relation("Sales").n_rows
            == toy_db.relation("Sales").n_rows + 4 - 2
        )

    def test_counters_survive_reopen(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        wal.append(2, [insert_delta()])
        nbytes = wal.nbytes
        wal.close()
        reopened = WriteAheadLog(wal_path)
        assert reopened.n_commits == 2
        assert reopened.last_epoch == 2
        assert reopened.nbytes == nbytes
        assert not reopened.tail_truncated
        reopened.append(3, [insert_delta()])
        assert reopened.n_commits == 3
        reopened.close()

    def test_empty_deltas_are_dropped_from_commit(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta(2)])
        wal.close()
        (commit,) = WriteAheadLog(wal_path).replay()
        assert commit.n_changes() == 2

    def test_truncate_resets(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        wal.truncate()
        assert wal.n_commits == 0
        assert wal.nbytes == 0
        wal.append(5, [insert_delta()])
        wal.close()
        (commit,) = WriteAheadLog(wal_path).replay()
        assert commit.epoch == 5

    def test_append_after_close_raises(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(1, [insert_delta()])


class TestCrashTails:
    def test_torn_tail_is_truncated_on_open(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        wal.append(2, [insert_delta()])
        wal.close()
        size = os.path.getsize(wal_path)
        # simulate a crash mid-write: chop the last record in half
        with open(wal_path, "ab") as handle:
            handle.truncate(size - 10)
        reopened = WriteAheadLog(wal_path)
        assert reopened.tail_truncated
        assert reopened.n_commits == 1
        assert [c.epoch for c in reopened.replay()] == [1]
        # the log is clean again: appends extend it normally
        reopened.append(2, [insert_delta()])
        assert [c.epoch for c in reopened.replay()] == [1, 2]
        reopened.close()

    def test_garbage_tail_is_truncated(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        wal.close()
        with open(wal_path, "ab") as handle:
            handle.write(b"this is not a WAL record")
        reopened = WriteAheadLog(wal_path)
        assert reopened.tail_truncated
        assert reopened.n_commits == 1
        reopened.close()

    def test_corrupt_middle_record_stops_replay_there(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        first_end = wal.nbytes
        wal.append(2, [insert_delta()])
        wal.append(3, [insert_delta()])
        wal.close()
        with open(wal_path, "r+b") as handle:
            handle.seek(first_end + 20)
            handle.write(b"\xff\xff")
        reopened = WriteAheadLog(wal_path)
        # everything from the first bad frame on is discarded
        assert reopened.n_commits == 1
        assert [c.epoch for c in reopened.replay()] == [1]
        reopened.close()

    def test_empty_and_missing_files_open_clean(self, wal_path):
        wal = WriteAheadLog(wal_path)
        assert wal.n_commits == 0
        assert list(wal.replay()) == []
        assert not wal.tail_truncated
        wal.close()

    def test_failed_append_scrubs_the_partial_frame(
        self, wal_path, monkeypatch
    ):
        """An append whose fsync fails must leave NO trace on disk:
        a complete-but-unacknowledged frame would replay a rolled-back
        commit, a torn one would orphan every later commit."""
        import repro.storage.wal as wal_module

        wal = WriteAheadLog(wal_path)
        wal.append(1, [insert_delta()])
        good_bytes = wal.nbytes

        # transient failure: the append's fsync dies, the scrub's works
        real_fsync = os.fsync
        calls = []

        def flaky_fsync(fd):
            if not calls:
                calls.append(1)
                raise OSError("disk on fire")
            return real_fsync(fd)

        monkeypatch.setattr(wal_module.os, "fsync", flaky_fsync)
        with pytest.raises(OSError, match="disk on fire"):
            wal.append(2, [insert_delta()])
        monkeypatch.undo()
        # nothing of the failed frame remains, in memory or on disk
        assert wal.n_commits == 1
        assert wal.nbytes == good_bytes
        assert os.path.getsize(wal_path) == good_bytes
        # the log extends normally afterwards, and replay agrees
        wal.append(2, [insert_delta()])
        assert [c.epoch for c in wal.replay()] == [1, 2]
        wal.close()
        reopened = WriteAheadLog(wal_path)
        assert reopened.n_commits == 2
        assert not reopened.tail_truncated
        reopened.close()
