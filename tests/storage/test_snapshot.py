"""Columnar snapshot format: round-trip, integrity, atomicity."""

import json
import os

import numpy as np
import pytest

from repro import load_snapshot, write_snapshot
from repro.data import Database, Relation
from repro.data.schema import Schema, categorical, continuous, key
from repro.engine.viewcache.signature import (
    database_fingerprint,
    relation_fingerprint,
)
from repro.storage.snapshot import SnapshotError, read_manifest


class TestRoundTrip:
    def test_database_round_trips_bit_exact(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"), epoch=7)
        loaded, info = load_snapshot(str(tmp_path / "snap"))
        assert info.epoch == 7
        assert info.database_name == toy_db.name
        assert set(loaded.relation_names) == set(toy_db.relation_names)
        for relation in toy_db:
            other = loaded.relation(relation.name)
            assert other.schema == relation.schema
            for name in relation.schema.names:
                np.testing.assert_array_equal(
                    other.column(name), relation.column(name)
                )

    def test_fingerprints_identical_after_reload(self, toy_db, tmp_path):
        """The property the warm cache depends on: reloaded relations
        re-key to exactly the digests the original produced."""
        info = write_snapshot(toy_db, str(tmp_path / "snap"))
        loaded, loaded_info = load_snapshot(str(tmp_path / "snap"))
        for relation in toy_db:
            assert info.fingerprints[
                relation.name
            ] == relation_fingerprint(relation)
            assert relation_fingerprint(
                loaded.relation(relation.name)
            ) == relation_fingerprint(relation)
        assert database_fingerprint(loaded) == database_fingerprint(toy_db)
        assert loaded_info.fingerprints == info.fingerprints

    def test_manifest_carries_schema_and_counts(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        manifest = read_manifest(str(tmp_path / "snap"))
        by_name = {spec["name"]: spec for spec in manifest["relations"]}
        sales = by_name["Sales"]
        assert sales["n_rows"] == toy_db.relation("Sales").n_rows
        kinds = {a["name"]: a["kind"] for a in sales["attributes"]}
        assert kinds["units"] == "continuous"
        assert kinds["date"] == "key"

    def test_overwrite_replaces_previous_snapshot(self, toy_db, tmp_path):
        target = str(tmp_path / "snap")
        write_snapshot(toy_db, target, epoch=1)
        smaller = Database(
            [toy_db.relation("Oil")], name="just-oil"
        )
        write_snapshot(smaller, target, epoch=2)
        loaded, info = load_snapshot(target)
        assert info.epoch == 2
        assert list(loaded.relation_names) == ["Oil"]


class TestIntegrity:
    def test_flipped_byte_fails_checksum(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        victim = tmp_path / "snap" / "data" / "Sales" / "units.col"
        raw = bytearray(victim.read_bytes())
        raw[3] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(str(tmp_path / "snap"))

    def test_truncated_column_detected(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        victim = tmp_path / "snap" / "data" / "Sales" / "units.col"
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(str(tmp_path / "snap"))

    def test_tampered_fingerprint_detected(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["relations"][0]["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="fingerprint"):
            load_snapshot(str(tmp_path / "snap"))

    def test_verify_false_skips_checks(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["relations"][0]["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        loaded, _info = load_snapshot(
            str(tmp_path / "snap"), verify=False
        )
        assert len(loaded) == len(toy_db)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            load_snapshot(str(tmp_path / "nowhere"))

    def test_wrong_format_rejected(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="not a repro-snapshot"):
            load_snapshot(str(tmp_path / "snap"))

    def test_unsafe_relation_name_rejected(self, tmp_path):
        bad = Relation(
            "../escape",
            Schema([continuous("x")]),
            {"x": np.arange(3.0)},
        )
        with pytest.raises(SnapshotError, match="not snapshot-safe"):
            write_snapshot(
                Database([bad], name="bad"), str(tmp_path / "snap")
            )

    def test_no_tmp_litter_after_write(self, toy_db, tmp_path):
        write_snapshot(toy_db, str(tmp_path / "snap"))
        write_snapshot(toy_db, str(tmp_path / "snap"))
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if ".tmp-" in name or ".old-" in name
        ]
        assert leftovers == []


class TestMixedDtypes:
    def test_int32_and_float32_columns_survive(self, tmp_path):
        relation = Relation(
            "Mixed",
            Schema(
                [
                    key("k"),
                    categorical("c"),
                    continuous("f"),
                ]
            ),
            {
                "k": np.arange(10, dtype=np.int64),
                "c": np.arange(10, dtype=np.int64) % 3,
                "f": np.linspace(0, 1, 10, dtype=np.float64),
            },
        )
        db = Database([relation], name="mixed")
        write_snapshot(db, str(tmp_path / "snap"))
        loaded, _ = load_snapshot(str(tmp_path / "snap"))
        other = loaded.relation("Mixed")
        for name in relation.schema.names:
            assert other.column(name).dtype == relation.column(name).dtype
