"""Crash recovery, black-box: SIGKILL the server, restart, verify.

The strongest durability claim the subsystem makes: kill the serving
process *without warning* (SIGKILL — no handlers, no draining, no
fsync-on-exit) in the middle of a delta stream, restart from the same
``--data-dir``, and the recovered epoch answers exactly what an offline
engine computes over the WAL-committed prefix of the stream.  Run on
both the interpreted and compiled backends.

Subprocess-based and therefore slow-lane; the CI ``recovery-smoke`` job
runs the same scenario on every push.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.data import DeltaBatch
from repro.datasets import favorita
from repro.server import AnalyticsClient

pytestmark = [pytest.mark.slow, pytest.mark.timeout(600)]

SCALE = 0.05
REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(data_dir, port, backend):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--scale",
            str(SCALE),
            "serve",
            "favorita",
            "--port",
            str(port),
            "--coalesce-ms",
            "0",
            "--backend",
            backend,
            "--data-dir",
            data_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)
    if proc.stdout is not None:
        proc.stdout.close()


def delta_stream(fact, n_deltas, rows_per_delta=4):
    """Deterministic insert payloads (JSON-able) drawn from real rows."""
    payloads = []
    for i in range(n_deltas):
        lo = (i * rows_per_delta) % max(1, fact.n_rows - rows_per_delta)
        payloads.append(
            {
                name: fact.column(name)[lo : lo + rows_per_delta].tolist()
                for name in fact.schema.names
            }
        )
    return payloads


@pytest.mark.parametrize("backend", ["interpret", "compiled"])
def test_sigkill_recovers_every_committed_delta(backend, tmp_path):
    data_dir = str(tmp_path / "data")
    port = free_port()
    ds = favorita(scale=SCALE)
    fact = ds.database.relation("Sales")
    payloads = delta_stream(fact, n_deltas=6)

    proc = start_server(data_dir, port, backend)
    state = {"acked": 0}
    try:
        client = AnalyticsClient(port=port, retries=2)
        client.wait_ready(timeout=120)

        # stream deltas from a writer thread; SIGKILL lands mid-stream
        # (racing whatever commit is in flight at that moment)
        import threading

        def pound():
            try:
                for payload in payloads:
                    response = client.delta(
                        "favorita", "Sales", inserts=payload
                    )
                    state["acked"] = response["epoch"]
            except Exception:  # noqa: BLE001 - the kill severs the socket
                pass

        writer = threading.Thread(target=pound, daemon=True)
        writer.start()
        deadline = time.monotonic() + 120
        while (
            state["acked"] < 3
            and writer.is_alive()
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
    finally:
        # no draining, no fsync-on-exit: the hard way down
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        stop(proc)
    writer.join(timeout=30)
    acknowledged = state["acked"]
    assert acknowledged >= 1

    # restart over the same data dir
    proc2 = start_server(data_dir, port, backend)
    try:
        client = AnalyticsClient(port=port, retries=2)
        client.wait_ready(timeout=120)
        stats = client.stats()["datasets"]["favorita"]
        recovered_epoch = stats["epoch"]
        # every acknowledged commit was WAL'd before its epoch was
        # published, so recovery can never lose one
        assert recovered_epoch >= acknowledged
        recovery = stats["storage"]["recovery"]
        assert recovery is not None
        assert recovery["epoch"] == recovered_epoch

        served = client.query(
            "favorita", ["covar"], include_data=True
        )
        assert served["epoch"] == recovered_epoch
    finally:
        stop(proc2)

    # offline ground truth over exactly the recovered prefix
    from repro.__main__ import _build_workload

    from repro import LMFAO

    database = ds.database
    for payload in payloads[:recovered_epoch]:
        database = database.apply_delta(
            DeltaBatch.insert(
                "Sales",
                {
                    name: np.asarray(values).astype(
                        fact.column(name).dtype
                    )
                    for name, values in payload.items()
                },
            )
        ).database
    with LMFAO(
        database,
        ds.join_tree,
        backend=backend,
        sort_inputs=False,
    ) as engine:
        batch = _build_workload(ds, engine, "covar")
        expected = engine.run(batch)

    wire = served["results"]["covar"]
    assert set(wire) == set(expected)
    for query_name, payload in wire.items():
        relation = expected[query_name]
        assert payload["n_rows"] == relation.n_rows, query_name
        for column in payload["columns"]:
            np.testing.assert_allclose(
                np.asarray(payload["data"][column]),
                relation.column(column),
                rtol=1e-9,
                atol=1e-9,
                err_msg=f"{query_name}.{column}",
            )


def test_restart_after_clean_boot_serves_warm_cache(tmp_path):
    """A restart with no deltas at all must also boot from storage and
    serve warm hits (the pure warm-start path, no WAL replay)."""
    data_dir = str(tmp_path / "data")
    port = free_port()

    proc = start_server(data_dir, port, "compiled")
    try:
        client = AnalyticsClient(port=port, retries=2)
        client.wait_ready(timeout=120)
        client.query("favorita", ["covar"])
        stats = client.stats()["datasets"]["favorita"]
        assert stats["storage"]["spilled_entries"] > 0
    finally:
        stop(proc)

    proc2 = start_server(data_dir, port, "compiled")
    try:
        client = AnalyticsClient(port=port, retries=2)
        client.wait_ready(timeout=120)
        first = client.query("favorita", ["covar"])
        assert first["epoch"] == 0
        stats = client.stats()["datasets"]["favorita"]
        assert stats["storage"]["warm_hits"] > 0
        assert stats["cache"]["misses"] == 0
        assert stats["storage"]["recovery"]["replayed_commits"] == 0
    finally:
        stop(proc2)
