"""Persistent view-cache tier: spill, warm load, corruption = miss."""

import hashlib

import numpy as np
import pytest

from repro import CacheStore
from repro.engine.interpreter import ViewData
from repro.engine.viewcache.cache import ViewCache
from repro.engine.viewcache.signature import ViewSignature


def digest_of(text):
    return hashlib.sha256(text.encode()).hexdigest()


def keyed_view(n=5, with_support=False):
    return ViewData(
        group_by=("store", "city"),
        key_cols=[
            np.arange(n, dtype=np.int64),
            np.arange(n, dtype=np.int64) % 3,
        ],
        agg_cols=[np.linspace(1, 2, n), np.full(n, 7.0)],
        support=np.ones(n) if with_support else None,
    )


def scalar_view():
    return ViewData(
        group_by=(),
        key_cols=[],
        agg_cols=[np.array([42.0])],
    )


def sig_for(name, relations=("Sales",), cacheable=True):
    return ViewSignature(
        digest=digest_of(name),
        relations=frozenset(relations),
        cacheable=cacheable,
    )


@pytest.fixture()
def store(tmp_path):
    return CacheStore(str(tmp_path / "cache"))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "view",
        [keyed_view(), keyed_view(with_support=True), scalar_view()],
        ids=["keyed", "with-support", "scalar"],
    )
    def test_save_load_bit_exact(self, store, view):
        sig = sig_for("v1", relations=("Sales", "Stores"))
        assert store.save(sig, view)
        loaded = store.load(sig.digest)
        assert loaded is not None
        got_sig, got = loaded
        assert got_sig.digest == sig.digest
        assert got_sig.relations == sig.relations
        assert got_sig.cacheable
        assert got.group_by == view.group_by
        for mine, theirs in zip(view.key_cols, got.key_cols):
            np.testing.assert_array_equal(mine, theirs)
            assert mine.dtype == theirs.dtype
        for mine, theirs in zip(view.agg_cols, got.agg_cols):
            np.testing.assert_array_equal(mine, theirs)
        if view.support is None:
            assert got.support is None
        else:
            np.testing.assert_array_equal(view.support, got.support)

    def test_loaded_arrays_are_writable(self, store):
        """The cache merges into loaded views; frombuffer views are
        read-only, so the store must hand back owned copies."""
        sig = sig_for("v1")
        store.save(sig, keyed_view())
        _, got = store.load(sig.digest)
        got.agg_cols[0][0] = 99.0  # must not raise

    def test_uncacheable_signature_never_persisted(self, store):
        sig = sig_for("v1", cacheable=False)
        assert not store.save(sig, keyed_view())
        assert len(store) == 0

    def test_missing_digest_is_a_miss(self, store):
        assert store.load(digest_of("nope")) is None

    def test_bad_digest_string_is_a_miss(self, store):
        assert store.load("../../etc/passwd") is None
        assert store.load("") is None


class TestCorruption:
    def corrupt(self, store, digest, mutate):
        path = store._path(digest)
        with open(path, "r+b") as handle:
            raw = bytearray(handle.read())
            mutate(raw)
            handle.seek(0)
            handle.truncate()
            handle.write(bytes(raw))

    def test_flipped_byte_is_a_miss_and_removed(self, store):
        sig = sig_for("v1")
        store.save(sig, keyed_view())

        def flip(raw):
            raw[len(raw) // 2] ^= 0xFF

        self.corrupt(store, sig.digest, flip)
        assert store.load(sig.digest) is None
        assert len(store) == 0  # the bad file is gone
        assert store.stats()["load_failures"] == 1

    def test_truncated_file_is_a_miss(self, store):
        sig = sig_for("v1")
        store.save(sig, keyed_view())
        self.corrupt(store, sig.digest, lambda raw: raw.__delitem__(
            slice(len(raw) - 16, None)
        ))
        assert store.load(sig.digest) is None

    def test_digest_mismatch_is_a_miss(self, store, tmp_path):
        """A file renamed to the wrong digest must not serve."""
        sig = sig_for("v1")
        store.save(sig, keyed_view())
        import os

        os.rename(
            store._path(sig.digest), store._path(digest_of("other"))
        )
        assert store.load(digest_of("other")) is None

    def test_empty_file_is_a_miss(self, store):
        sig = sig_for("v1")
        store.save(sig, keyed_view())
        with open(store._path(sig.digest), "wb"):
            pass
        assert store.load(sig.digest) is None


class TestBudget:
    def test_prune_removes_oldest_first(self, tmp_path):
        import os
        import time

        store = CacheStore(str(tmp_path / "cache"), budget_bytes=1)
        old_sig, new_sig = sig_for("old"), sig_for("new")
        # budget checks run inside save; write both, backdate one, prune
        store.budget_bytes = None
        store.save(old_sig, keyed_view())
        store.save(new_sig, keyed_view())
        past = time.time() - 3600
        os.utime(store._path(old_sig.digest), (past, past))
        single = os.path.getsize(store._path(new_sig.digest))
        # two files over budget, one file under the 90% prune target
        store.budget_bytes = 2 * single - 1
        store.prune()
        assert store.load(old_sig.digest) is None
        assert store.load(new_sig.digest) is not None

    def test_stats_report(self, store):
        sig = sig_for("v1")
        store.save(sig, keyed_view())
        store.load(sig.digest)
        stats = store.stats()
        assert stats["saves"] == 1
        assert stats["loads"] == 1
        assert stats["entries"] == 1
        assert stats["spilled_bytes"] > 0


class TestViewCacheSecondTier:
    def test_warm_hit_across_cache_instances(self, tmp_path):
        store = CacheStore(str(tmp_path / "cache"))
        first = ViewCache(budget_bytes=1 << 20, store=store)
        sig = sig_for("v1")
        view = keyed_view()
        assert first.put(sig, view)
        assert first.stats().spills == 1

        # a "restarted process": fresh in-memory cache, same store
        second = ViewCache(budget_bytes=1 << 20, store=store)
        got = second.get(sig.digest)
        assert got is not None
        np.testing.assert_array_equal(
            got.agg_cols[0], view.agg_cols[0]
        )
        stats = second.stats()
        assert stats.warm_hits == 1
        assert stats.hits == 1
        assert stats.misses == 0
        # now resident in memory: the next get is a plain hit
        assert second.get(sig.digest) is not None
        assert second.stats().warm_hits == 1

    def test_miss_when_store_empty(self, tmp_path):
        cache = ViewCache(
            budget_bytes=1 << 20,
            store=CacheStore(str(tmp_path / "cache")),
        )
        assert cache.get(digest_of("nope")) is None
        assert cache.stats().misses == 1
        assert cache.stats().warm_hits == 0

    def test_budget_rejected_entry_still_spills(self, tmp_path):
        store = CacheStore(str(tmp_path / "cache"))
        tiny = ViewCache(budget_bytes=8, store=store)
        sig = sig_for("big")
        assert not tiny.put(sig, keyed_view(n=100))  # memory reject
        assert store.load(sig.digest) is not None  # but disk has it

    def test_no_store_behaves_as_before(self):
        cache = ViewCache(budget_bytes=1 << 20)
        assert cache.get(digest_of("x")) is None
        assert cache.stats().misses == 1
