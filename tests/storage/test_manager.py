"""DatasetStorage: recovery protocol, compaction, CURRENT pointer."""

import os

import numpy as np
import pytest

from repro import DatasetStorage
from repro.data import DeltaBatch
from repro.engine.viewcache.signature import database_fingerprint
from repro.storage.manager import StorageError, dataset_dirs


def insert_rows(db, n=3):
    sales = db.relation("Sales")
    return DeltaBatch.insert(
        "Sales",
        {name: sales.column(name)[:n] for name in sales.schema.names},
    )


@pytest.fixture()
def data_dir(tmp_path):
    return str(tmp_path / "data")


class TestRecovery:
    def test_initialize_then_recover_round_trips(self, toy_db, data_dir):
        storage = DatasetStorage(data_dir)
        assert not storage.has_snapshot()
        storage.initialize(toy_db)
        assert storage.has_snapshot()
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 0
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(toy_db)
        )
        assert recovered.stats.replayed_commits == 0

    def test_wal_replay_reconstructs_epochs(self, toy_db, data_dir):
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        expected = toy_db
        for epoch in (1, 2, 3):
            delta = insert_rows(expected, n=epoch)
            storage.log_commit(epoch, [delta])
            expected = expected.apply_delta(delta).database
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 3
        assert recovered.stats.replayed_commits == 3
        assert recovered.stats.replayed_changes == 1 + 2 + 3
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(expected)
        )

    def test_deletes_replay_against_running_row_order(
        self, toy_db, data_dir
    ):
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        expected = toy_db
        first = insert_rows(expected, n=4)
        storage.log_commit(1, [first])
        expected = expected.apply_delta(first).database
        second = DeltaBatch.delete(
            "Sales", np.array([0, expected.relation("Sales").n_rows - 1])
        )
        storage.log_commit(2, [second])
        expected = expected.apply_delta(second).database
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(expected)
        )

    def test_replay_skips_non_monotonic_epochs(self, toy_db, data_dir):
        """A resurrected duplicate frame (a failed append's scrub lost
        to a power cut) must never apply an epoch twice."""
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        first = insert_rows(toy_db, n=2)
        storage.log_commit(1, [first])
        storage.log_commit(1, [insert_rows(toy_db, n=5)])  # duplicate
        second = insert_rows(toy_db, n=3)
        storage.log_commit(2, [second])
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 2
        assert recovered.stats.replayed_commits == 2
        expected = toy_db.apply_delta(first).database
        expected = expected.apply_delta(second).database
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(expected)
        )

    def test_recover_without_snapshot_raises(self, data_dir):
        with pytest.raises(StorageError, match="no snapshot"):
            DatasetStorage(data_dir).recover()

    def test_initialize_truncates_a_stale_wal(self, toy_db, data_dir):
        """Re-initializing a dir establishes a NEW base: commits logged
        against the old base must not replay over it."""
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        storage.log_commit(1, [insert_rows(toy_db)])
        storage.log_commit(2, [insert_rows(toy_db)])
        storage.close()

        fresh = DatasetStorage(data_dir)
        fresh.initialize(toy_db, epoch=0)
        assert fresh.wal_len == 0
        fresh.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 0
        assert recovered.stats.replayed_commits == 0
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(toy_db)
        )


class TestCompaction:
    def test_compact_folds_wal_and_truncates(self, toy_db, data_dir):
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        delta = insert_rows(toy_db)
        storage.log_commit(1, [delta])
        updated = toy_db.apply_delta(delta).database
        assert storage.wal_len == 1
        storage.compact(updated, 1)
        assert storage.wal_len == 0
        assert storage.last_compaction["epoch"] == 1
        assert storage.snapshot_epoch() == 1
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 1
        assert recovered.stats.replayed_commits == 0
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(updated)
        )

    def test_snapshot_names_never_collide_across_restarts(
        self, toy_db, data_dir
    ):
        """A fresh process resumes the snapshot counter past names
        already on disk, so compacting at the same epoch after a
        restart never regenerates (and non-atomically replaces) the
        directory CURRENT points at."""
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        first = storage.current_snapshot_dir()
        storage.close()

        again = DatasetStorage(data_dir)
        again.compact(toy_db, 0)  # same epoch as the initial snapshot
        second = again.current_snapshot_dir()
        again.close()
        assert second != first
        assert os.path.isdir(second)

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 0
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(toy_db)
        )

    def test_old_snapshots_garbage_collected(self, toy_db, data_dir):
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        storage.compact(toy_db, 1)
        storage.compact(toy_db, 2)
        storage.close()
        snaps = [
            name
            for name in os.listdir(data_dir)
            if name.startswith("snap-")
        ]
        assert len(snaps) == 1
        assert snaps[0].startswith("snap-00000002")

    def test_stale_wal_commits_skipped_after_compaction(
        self, toy_db, data_dir
    ):
        """A crash between snapshot flip and WAL truncate must not
        double-apply: commits at or below the snapshot epoch are
        skipped on replay."""
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        delta = insert_rows(toy_db)
        storage.log_commit(1, [delta])
        updated = toy_db.apply_delta(delta).database
        # compact, then put the WAL back as if truncate never ran
        storage.compact(updated, 1)
        storage.log_commit(1, [delta])  # stale: epoch 1 <= snapshot epoch
        storage.log_commit(2, [insert_rows(updated, n=2)])
        storage.close()

        recovered = DatasetStorage(data_dir).recover()
        assert recovered.epoch == 2
        assert recovered.stats.replayed_commits == 1
        expected = updated.apply_delta(insert_rows(updated, n=2)).database
        assert database_fingerprint(recovered.database) == (
            database_fingerprint(expected)
        )


class TestLayout:
    def test_stats_shape(self, toy_db, data_dir):
        storage = DatasetStorage(data_dir)
        storage.initialize(toy_db)
        storage.log_commit(1, [insert_rows(toy_db)])
        stats = storage.stats()
        assert stats["wal_len"] == 1
        assert stats["wal_bytes"] > 0
        assert stats["snapshot_epoch"] == 0
        assert stats["last_compaction"] is None
        assert stats["spilled_entries"] == 0
        storage.close()

    def test_dataset_dirs_discovery(self, toy_db, tmp_path):
        root = str(tmp_path / "data")
        for name in ("alpha", "beta"):
            storage = DatasetStorage(os.path.join(root, name))
            storage.initialize(toy_db)
            storage.close()
        found = dataset_dirs(root)
        assert [os.path.basename(d) for d in found] == ["alpha", "beta"]
        # a dataset dir given directly is itself the storage dir
        assert dataset_dirs(found[0]) == [found[0]]
        assert dataset_dirs(str(tmp_path / "missing")) == []
