"""Durable storage & recovery tests."""
