"""Test package."""
