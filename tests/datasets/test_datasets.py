"""Dataset generators: schema fidelity, determinism, scaling, metadata."""

import numpy as np
import pytest

from repro import materialize_join
from repro.datasets import ALL_DATASETS, favorita, retailer, tpcds, yelp
from repro.datasets.base import train_test_split_by, zipf_choice


@pytest.mark.parametrize("name,generator", list(ALL_DATASETS.items()))
class TestAllDatasets:
    def test_join_tree_valid(self, name, generator):
        ds = generator(scale=0.05)
        ds.join_tree.validate()
        assert set(ds.join_tree.nodes) == set(ds.database.relation_names)

    def test_deterministic(self, name, generator):
        a = generator(scale=0.05)
        b = generator(scale=0.05)
        for rel_name in a.database.relation_names:
            assert (
                a.database.relation(rel_name).to_rows()
                == b.database.relation(rel_name).to_rows()
            )

    def test_scaling(self, name, generator):
        small = generator(scale=0.05)
        large = generator(scale=0.2)
        assert large.database.total_tuples() > small.database.total_tuples()

    def test_feature_metadata_resolves(self, name, generator):
        ds = generator(scale=0.05)
        attrs = set(ds.database.attributes())
        for feature in ds.features + [ds.label] + ds.discrete_attrs:
            assert feature in attrs, feature
        for dim in ds.cube_dimensions:
            assert dim in attrs
        for measure in ds.cube_measures:
            assert measure in attrs

    def test_label_kind_matches_task(self, name, generator):
        ds = generator(scale=0.05)
        kind = ds.database.attribute_kind(ds.label)
        if name == "tpcds":  # classification target
            assert kind == "categorical"
        else:
            assert kind == "continuous"

    def test_join_is_connected(self, name, generator):
        ds = generator(scale=0.05)
        flat = materialize_join(ds.database)
        assert flat.n_rows > 0

    def test_summary_fields(self, name, generator):
        ds = generator(scale=0.05)
        summary = ds.summary()
        assert summary["dataset"] == name
        assert summary["relations"] == len(ds.database)
        assert summary["tuples"] > 0


class TestSchemasMatchPaper:
    def test_relation_counts(self):
        assert len(retailer(scale=0.05).database) == 5
        assert len(favorita(scale=0.05).database) == 6
        assert len(yelp(scale=0.05).database) == 5
        assert len(tpcds(scale=0.05).database) == 10

    def test_favorita_schema_is_figure3(self):
        ds = favorita(scale=0.05)
        sales = ds.database.relation("Sales")
        assert set(sales.schema.names) == {
            "date",
            "store",
            "item",
            "units",
            "promo",
        }
        assert set(ds.database.relation_names) == {
            "Sales",
            "Holidays",
            "StoRes",
            "Items",
            "Transactions",
            "Oil",
        }

    def test_yelp_join_blows_up(self):
        """Table 1: Yelp's join result far exceeds its database size."""
        ds = yelp(scale=0.1)
        flat = materialize_join(ds.database)
        assert flat.n_rows > 3 * ds.database.total_tuples()

    def test_snowflake_vs_star(self):
        # Retailer: Census hangs off Location (depth 2) -> snowflake
        ds = retailer(scale=0.05)
        rooted = ds.join_tree.rooted("Inventory")
        assert rooted.depth["Census"] == 2
        # Favorita: Oil/StoRes hang off Transactions per Figure 3
        ds = favorita(scale=0.05)
        rooted = ds.join_tree.rooted("Sales")
        assert rooted.depth["Oil"] == 2

    def test_fact_table_detection(self):
        assert retailer(scale=0.05).fact_table() == "Inventory"
        assert favorita(scale=0.05).fact_table() == "Sales"
        assert tpcds(scale=0.05).fact_table() == "Store_Sales"


class TestHelpers:
    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(0)
        draws = zipf_choice(rng, 100, 10_000)
        _, counts = np.unique(draws, return_counts=True)
        assert counts.max() > 5 * counts.min()

    def test_train_test_split(self):
        ds = favorita(scale=0.1)
        train_db, test_db = train_test_split_by(ds, "date", 0.2)
        total = ds.database.relation("Sales").n_rows
        n_train = train_db.relation("Sales").n_rows
        n_test = test_db.relation("Sales").n_rows
        assert n_train + n_test == total
        assert 0 < n_test < total
        # test fraction uses the top date range (future sales)
        assert (
            train_db.relation("Sales").column("date").max()
            <= test_db.relation("Sales").column("date").min()
        )
