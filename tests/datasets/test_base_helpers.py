"""Dataset base helpers: scaling, fact-table detection, summaries."""

import numpy as np
import pytest

from repro.datasets import favorita
from repro.datasets.base import Dataset, scaled, zipf_choice


class TestScaled:
    def test_rounds(self):
        assert scaled(100, 0.5) == 50
        assert scaled(101, 0.5) == 50 or scaled(101, 0.5) == 51

    def test_minimum_enforced(self):
        assert scaled(100, 0.0001, minimum=8) == 8

    def test_identity_at_scale_one(self):
        assert scaled(1234, 1.0) == 1234


class TestZipf:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        draws = zipf_choice(rng, 50, 1000)
        assert draws.min() >= 0 and draws.max() < 50

    def test_rank_one_most_popular(self):
        rng = np.random.default_rng(0)
        draws = zipf_choice(rng, 20, 20_000)
        counts = np.bincount(draws, minlength=20)
        assert counts[0] == counts.max()

    def test_exponent_controls_skew(self):
        rng = np.random.default_rng(0)
        mild = zipf_choice(rng, 20, 20_000, exponent=0.5)
        harsh = zipf_choice(rng, 20, 20_000, exponent=2.0)
        mild_top = np.bincount(mild, minlength=20)[0] / len(mild)
        harsh_top = np.bincount(harsh, minlength=20)[0] / len(harsh)
        assert harsh_top > mild_top


class TestDatasetApi:
    def test_features_concatenates(self):
        ds = favorita(scale=0.05)
        assert ds.features == ds.continuous_features + ds.categorical_features

    def test_fact_table_is_largest(self):
        ds = favorita(scale=0.05)
        fact = ds.fact_table()
        largest = max(ds.database, key=lambda r: r.n_rows)
        assert fact == largest.name

    def test_summary_size_positive(self):
        ds = favorita(scale=0.05)
        assert ds.summary()["size_mb"] > 0
