"""Materialized-join baseline: correctness and baseline semantics."""

import numpy as np
import pytest

from repro import Aggregate, Delta, Product, Query, QueryBatch
from repro.baselines import MaterializedEngine


class TestCorrectness:
    def test_count(self, toy_db):
        engine = MaterializedEngine(toy_db)
        result = engine.run(
            QueryBatch([Query("n", [], [Aggregate.count()])])
        )
        assert result["n"].column("count")[0] == 300

    def test_grouped_sum(self, toy_db):
        engine = MaterializedEngine(toy_db)
        result = engine.run(
            QueryBatch(
                [Query("g", ["city"], [Aggregate.of("units", name="u")])]
            )
        )
        flat = engine.materialize()
        for city, total in zip(
            result["g"].column("city"), result["g"].column("u")
        ):
            mask = flat.column("city") == city
            assert np.isclose(total, flat.column("units")[mask].sum())

    def test_sum_of_products(self, toy_db):
        engine = MaterializedEngine(toy_db)
        aggregate = Aggregate(
            [
                Product(["units"], coefficient=2.0),
                Product([Delta("price", ">", 50.0)], coefficient=1.0),
            ],
            name="mix",
        )
        result = engine.run(QueryBatch([Query("q", [], [aggregate])]))
        flat = engine.materialize()
        expected = 2.0 * flat.column("units").sum() + (
            flat.column("price") > 50.0
        ).sum()
        assert np.isclose(result["q"].column("mix")[0], expected)

    def test_duplicate_agg_names_suffixed(self, toy_db):
        engine = MaterializedEngine(toy_db)
        result = engine.run(
            QueryBatch(
                [
                    Query(
                        "q",
                        [],
                        [Aggregate.count(), Aggregate.count()],
                    )
                ]
            )
        )
        assert result["q"].has_column("count")
        assert result["q"].has_column("count_1")


class TestBaselineSemantics:
    def test_materialization_cached_and_timed(self, toy_db):
        engine = MaterializedEngine(toy_db)
        flat1 = engine.materialize()
        assert engine.materialize_seconds is not None
        flat2 = engine.materialize()
        assert flat1 is flat2  # cached

    def test_join_blowup_on_many_to_many(self, manytomany_db):
        engine = MaterializedEngine(manytomany_db)
        flat = engine.materialize()
        # the materialized join is larger than the database — the cost
        # LMFAO avoids (Yelp's Table 1 signature)
        assert flat.n_rows > manytomany_db.total_tuples()

    def test_materialize_now_flag(self, toy_db):
        engine = MaterializedEngine(toy_db, materialize_now=True)
        assert engine.materialize_seconds is not None
