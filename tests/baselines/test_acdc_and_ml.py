"""AC/DC proxy and the materialize-then-learn ML baselines."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch, materialize_join
from repro.baselines import (
    FIGURE5_LADDER,
    MaterializedEngine,
    acdc_proxy,
    gradient_descent_epochs,
    ols_closed_form,
)

from ..engine.helpers import assert_results_equal


class TestAcdcProxy:
    def test_configuration(self, toy_db):
        engine = acdc_proxy(toy_db)
        assert not engine.multi_root
        assert not engine.compile_enabled
        assert not engine.group_views_enabled
        assert engine.merge_mode == "dedup"

    def test_agrees_with_lmfao(self, toy_db):
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["city"], [Aggregate.of("units", name="u")]),
            ]
        )
        acdc_results = acdc_proxy(toy_db).run(batch)
        lmfao_results = LMFAO(toy_db).run(batch)
        assert_results_equal(acdc_results, lmfao_results, batch)

    def test_figure5_ladder_configs_all_agree(self, toy_db):
        batch = QueryBatch(
            [Query("g", ["city"], [Aggregate.of("units", name="u")])]
        )
        reference = MaterializedEngine(toy_db).run(batch)
        for name, kwargs in FIGURE5_LADDER:
            engine = LMFAO(toy_db, **kwargs)
            assert_results_equal(engine.run(batch), reference, batch)

    def test_ladder_is_monotone_in_features(self):
        names = [name for name, _ in FIGURE5_LADDER]
        assert names[0].startswith("acdc")
        assert "compilation" in names[1]
        assert "parallel" in names[-1]


class TestMLBaselines:
    def test_ols_rmse_reasonable(self, tiny_favorita):
        ds = tiny_favorita
        flat = materialize_join(ds.database)
        model = ols_closed_form(
            ds.database, ["txns", "price"], ["stype"], "units", flat=flat
        )
        target = flat.column("units")
        trivial = float(np.sqrt(np.mean((target - target.mean()) ** 2)))
        assert model.rmse(flat) <= trivial + 1e-9

    def test_more_epochs_improve_gd(self, tiny_favorita):
        ds = tiny_favorita
        flat = materialize_join(ds.database)
        args = (ds.database, ["txns", "price"], ["stype"], "units")
        one = gradient_descent_epochs(*args, epochs=1, flat=flat)
        many = gradient_descent_epochs(*args, epochs=100, flat=flat)
        assert many.rmse(flat) <= one.rmse(flat) + 1e-9

    def test_gd_iterations_recorded(self, tiny_favorita):
        ds = tiny_favorita
        flat = materialize_join(ds.database)
        model = gradient_descent_epochs(
            ds.database, ["txns"], [], "units", epochs=3, flat=flat
        )
        assert model.iterations == 3
