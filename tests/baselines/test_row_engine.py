"""The tuple-at-a-time OLS baseline (MADlib/PostgreSQL architecture proxy)."""

import numpy as np
import pytest

from repro import materialize_join
from repro.baselines import ols_closed_form, ols_row_engine


class TestRowEngineOls:
    @pytest.fixture(scope="class")
    def setup(self, request):
        ds = request.getfixturevalue("tiny_favorita")
        flat = materialize_join(ds.database)
        return ds, flat

    def test_matches_vectorized_ols(self, setup):
        """Same math, different executor: theta must agree exactly."""
        ds, flat = setup
        args = (ds.database, ["txns", "price"], ["stype"], "units")
        row = ols_row_engine(*args, flat=flat)
        blas = ols_closed_form(*args, flat=flat)
        assert np.allclose(row.theta, blas.theta, rtol=1e-9, atol=1e-10)

    def test_rmse_identical(self, setup):
        ds, flat = setup
        args = (ds.database, ["txns"], [], "units")
        row = ols_row_engine(*args, flat=flat)
        blas = ols_closed_form(*args, flat=flat)
        assert np.isclose(row.rmse(flat), blas.rmse(flat))

    def test_scales_with_rows_not_views(self, setup):
        """Architectural property: the row engine's work grows linearly
        with the number of join tuples (not asserted by timing, but by
        the transition-count it must perform)."""
        ds, flat = setup
        # the executor must touch every tuple once; with a subset of the
        # rows the coefficients differ — i.e. it genuinely consumed them
        half = flat.take(np.arange(flat.n_rows // 2))
        full_model = ols_row_engine(
            ds.database, ["txns"], [], "units", flat=flat
        )
        half_model = ols_row_engine(
            ds.database, ["txns"], [], "units", flat=half
        )
        assert not np.allclose(full_model.theta, half_model.theta)
