"""Test package."""
