"""The Find Roots layer: weight heuristic of §3.3."""

from repro import Aggregate, Query, QueryBatch
from repro.engine.roots import assign_roots, possible_roots
from repro.jointree.join_tree import join_tree_from_database


class TestPossibleRoots:
    def test_grouped_query_roots_contain_attr(self, toy_db):
        tree = join_tree_from_database(toy_db)
        query = Query("q", ["city"], [Aggregate.count()])
        assert possible_roots(query, tree) == ["Stores"]

    def test_join_key_group_by_allows_both_sides(self, toy_db):
        tree = join_tree_from_database(toy_db)
        query = Query("q", ["store"], [Aggregate.count()])
        assert set(possible_roots(query, tree)) == {"Sales", "Stores"}

    def test_scalar_query_can_root_anywhere(self, toy_db):
        tree = join_tree_from_database(toy_db)
        query = Query("q", [], [Aggregate.count()])
        assert set(possible_roots(query, tree)) == set(tree.nodes)


class TestAssignRoots:
    def test_each_query_gets_a_valid_root(self, toy_db):
        tree = join_tree_from_database(toy_db)
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.count()]),
                Query("b", ["date"], [Aggregate.count()]),
                Query("c", [], [Aggregate.count()]),
            ]
        )
        roots = assign_roots(batch, tree, toy_db)
        assert set(roots) == {"a", "b", "c"}
        for query in batch:
            assert roots[query.name] in possible_roots(query, tree)

    def test_single_root_mode(self, toy_db):
        tree = join_tree_from_database(toy_db)
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.count()]),
                Query("b", ["price"], [Aggregate.count()]),
            ]
        )
        roots = assign_roots(batch, tree, toy_db, multi_root=False)
        assert len(set(roots.values())) == 1

    def test_heavy_node_attracts_queries(self, toy_db):
        tree = join_tree_from_database(toy_db)
        # many queries grouped on Sales attrs, one on Stores
        queries = [
            Query(f"s{i}", ["date"], [Aggregate.count()]) for i in range(5)
        ]
        queries.append(Query("c", ["store"], [Aggregate.count()]))
        roots = assign_roots(QueryBatch(queries), tree, toy_db)
        # "store" is a join key: Sales carries the batch's weight, so the
        # store-grouped query is rooted with the others at Sales
        assert roots["c"] == "Sales"

    def test_ties_broken_by_relation_size(self, toy_db):
        tree = join_tree_from_database(toy_db)
        batch = QueryBatch([Query("c", [], [Aggregate.count()])])
        roots = assign_roots(batch, tree, toy_db)
        # all nodes weigh the same; Sales is the largest relation
        assert roots["c"] == "Sales"

    def test_multiroot_reduces_view_count(self, chain_db):
        """The paper's Example 3.3: per-attribute counts over a chain
        benefit from one root per query."""
        from repro.engine.pushdown import Decomposer

        tree = join_tree_from_database(chain_db)
        batch = QueryBatch(
            [
                Query(f"q_{attr}", [attr], [Aggregate.count()])
                for attr in ("a", "b", "c", "d", "e")
            ]
        )
        multi = Decomposer(tree).decompose(
            batch, assign_roots(batch, tree, chain_db, multi_root=True)
        )
        single = Decomposer(tree).decompose(
            batch, assign_roots(batch, tree, chain_db, multi_root=False)
        )
        assert multi.n_total_aggregates <= single.n_total_aggregates
