"""Incremental view maintenance: differential tests against recomputation.

Every test asserts the same contract: after any sequence of
``apply_delta`` calls, the incremental engine's results have *exactly*
the group keys a from-scratch evaluation of the updated database
produces, and aggregate values that agree to floating-point roundoff
(sums are re-associated by the merge, so the last few ulps may differ).
"""

import numpy as np
import pytest

from repro import (
    Aggregate,
    DeltaBatch,
    IncrementalEngine,
    LMFAO,
    Query,
    QueryBatch,
)
from repro.data.database import AppliedDelta

from .helpers import assert_results_equal


def simple_batch(extra_group_by):
    """A small mixed batch: scalar count + grouped sums."""
    queries = [
        Query("n", [], [Aggregate.count()]),
        Query(
            "by_key",
            list(extra_group_by),
            [Aggregate.count(name="cnt")],
        ),
    ]
    return QueryBatch(queries)


def covar_batch(ds):
    from repro.ml import CovarBatch

    label = ds.label
    if ds.database.attribute_kind(label) != "continuous":
        label = ds.continuous_features[0]
    continuous = [f for f in ds.continuous_features if f != label]
    return CovarBatch(continuous, ds.categorical_features, label).batch


def reference_results(engine, batch):
    """From-scratch evaluation of the engine's current database."""
    ref = LMFAO(
        engine.database,
        engine.engine.join_tree,
        sort_inputs=False,
    )
    return ref.run(batch)


def sample_inserts(rng, relation, n):
    """n new rows drawn (with replacement) from existing rows."""
    idx = rng.integers(0, relation.n_rows, n)
    return {a: relation.column(a)[idx] for a in relation.schema.names}


DATASET_FIXTURES = [
    "tiny_retailer",
    "tiny_favorita",
    "tiny_yelp",
    "tiny_tpcds",
]


@pytest.fixture(params=DATASET_FIXTURES)
def any_dataset(request):
    return request.getfixturevalue(request.param)


class TestDeltaBatchApi:
    def test_insert_appends_rows(self, toy_db):
        applied = toy_db.apply_delta(
            DeltaBatch.insert(
                "Oil", {"date": np.array([100]), "price": np.array([9.5])}
            )
        )
        assert isinstance(applied, AppliedDelta)
        assert applied.database.relation("Oil").n_rows == 26
        assert applied.inserted.n_rows == 1
        assert applied.deleted is None

    def test_delete_splits_rows(self, toy_db):
        applied = toy_db.apply_delta(
            DeltaBatch.delete("Oil", np.array([0, 2, 2]))
        )
        assert applied.database.relation("Oil").n_rows == 23
        assert applied.deleted.n_rows == 2  # indices deduplicated
        assert applied.inserted is None

    def test_delete_out_of_range_raises(self, toy_db):
        with pytest.raises(IndexError):
            toy_db.apply_delta(DeltaBatch.delete("Oil", np.array([99])))

    def test_mixed_deletes_before_inserts(self, toy_db):
        oil = toy_db.relation("Oil")
        applied = toy_db.apply_delta(
            DeltaBatch(
                "Oil",
                inserts={
                    "date": np.array([100, 101]),
                    "price": np.array([1.0, 2.0]),
                },
                delete_indices=np.array([5]),
            )
        )
        assert applied.database.relation("Oil").n_rows == oil.n_rows + 1
        assert applied.deleted.column("date").tolist() == [5]
        assert applied.inserted.column("date").tolist() == [100, 101]

    def test_empty_delta(self):
        assert DeltaBatch("Oil").is_empty
        assert DeltaBatch("Oil", inserts={"date": np.array([])}).is_empty
        assert not DeltaBatch.delete("Oil", np.array([1])).is_empty

    def test_match_rows(self, toy_db):
        oil = toy_db.relation("Oil")
        idx = oil.match_rows({"date": np.array([3, 7])})
        assert oil.column("date")[idx].tolist() == [3, 7]


class TestIncrementalMatchesRecomputation:
    """apply_delta == full recomputation on all four bundled datasets."""

    def _delta_roundtrip(self, ds, deltas_fn, batch=None):
        engine = IncrementalEngine(ds.database, ds.join_tree)
        fact = engine.root
        if batch is None:
            group_attr = ds.categorical_features[0]
            batch = simple_batch([group_attr])
        engine.run(batch)
        rng = np.random.default_rng(0)
        report = engine.apply_delta(
            *deltas_fn(rng, engine.database.relation(fact))
        )
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch, rtol=1e-9, atol=1e-9)
        return report

    def test_inserts(self, any_dataset):
        def deltas(rng, fact):
            return [
                DeltaBatch.insert(
                    fact.name, sample_inserts(rng, fact, fact.n_rows // 20)
                )
            ]

        report = self._delta_roundtrip(any_dataset, deltas)
        assert report.all_incremental

    def test_deletes(self, any_dataset):
        def deltas(rng, fact):
            idx = rng.choice(fact.n_rows, fact.n_rows // 20, replace=False)
            return [DeltaBatch.delete(fact.name, idx)]

        report = self._delta_roundtrip(any_dataset, deltas)
        assert report.all_incremental

    def test_mixed(self, any_dataset):
        def deltas(rng, fact):
            idx = rng.choice(fact.n_rows, fact.n_rows // 30, replace=False)
            return [
                DeltaBatch(
                    fact.name,
                    inserts=sample_inserts(rng, fact, fact.n_rows // 30),
                    delete_indices=idx,
                )
            ]

        report = self._delta_roundtrip(any_dataset, deltas)
        assert report.all_incremental

    def test_empty_delta_is_noop(self, any_dataset):
        def deltas(rng, fact):
            return [DeltaBatch(fact.name)]

        report = self._delta_roundtrip(any_dataset, deltas)
        assert report.n_changes == 0
        assert report.batches == []

    def test_covar_workload(self, tiny_favorita):
        ds = tiny_favorita
        batch = covar_batch(ds)

        def deltas(rng, fact):
            idx = rng.choice(fact.n_rows, fact.n_rows // 50, replace=False)
            return [
                DeltaBatch(
                    fact.name,
                    inserts=sample_inserts(rng, fact, fact.n_rows // 50),
                    delete_indices=idx,
                )
            ]

        report = self._delta_roundtrip(ds, deltas, batch=batch)
        assert report.all_incremental


class TestExecutePlanDelta:
    """The interpreter-level delta primitive used by delta evaluation."""

    def test_negated_run_is_sign_flip(self, toy_db):
        from repro.engine.interpreter import execute_plan, execute_plan_delta

        engine = LMFAO(
            toy_db, sort_inputs=False, root="Sales", track_support=True,
            compile=False,
        )
        batch = simple_batch(["city"])
        plan = engine.plan(batch)
        view_data = engine._execute(plan, [])
        group = next(
            g for g in plan.grouped.groups if g.node == "Sales"
        )
        group_plan = plan.group_plans[group.id]
        incoming = {
            vid: view_data[vid] for vid in group_plan.input_view_ids
        }
        part = toy_db.relation("Sales").take(np.arange(10))
        plus = execute_plan(group_plan, part, incoming, [])
        minus = execute_plan_delta(group_plan, part, incoming, [], sign=-1)
        assert set(plus) == set(minus)
        for vid in plus:
            for got, want in zip(minus[vid].agg_cols, plus[vid].agg_cols):
                np.testing.assert_array_equal(got, -want)
            if plus[vid].support is not None:
                np.testing.assert_array_equal(
                    minus[vid].support, -plus[vid].support
                )

    def test_bad_sign_rejected(self, toy_db):
        from repro.engine.interpreter import execute_plan_delta

        with pytest.raises(ValueError):
            execute_plan_delta(None, None, {}, [], sign=0)


class TestKeyRetirement:
    def test_deleting_all_rows_of_a_key_drops_it(self, tiny_favorita):
        ds = tiny_favorita
        engine = IncrementalEngine(ds.database, ds.join_tree)
        fact = engine.root
        batch = simple_batch(["store"])
        engine.run(batch)
        store_col = engine.database.relation(fact).column("store")
        victim = int(store_col[0])
        idx = np.flatnonzero(store_col == victim)
        report = engine.apply_delta(DeltaBatch.delete(fact, idx))
        assert report.all_incremental
        got = engine.run(batch)
        assert victim not in got["by_key"].column("store")
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch)

    def test_deleting_everything_empties_results(self, toy_db):
        engine = IncrementalEngine(toy_db)
        batch = simple_batch(["store"])
        engine.run(batch)
        fact = engine.root
        n = engine.database.relation(fact).n_rows
        report = engine.apply_delta(DeltaBatch.delete(fact, np.arange(n)))
        assert report.all_incremental
        got = engine.run(batch)
        assert got["by_key"].n_rows == 0
        assert got["n"].column("count")[0] == 0.0


class TestPropagation:
    def test_non_root_delta_propagates_not_recomputes(self, tiny_favorita):
        ds = tiny_favorita
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        dim = next(r.name for r in engine.database if r.name != engine.root)
        dim_rel = engine.database.relation(dim)
        rng = np.random.default_rng(1)
        report = engine.apply_delta(
            DeltaBatch.insert(dim, sample_inserts(rng, dim_rel, 3))
        )
        assert not report.all_incremental
        assert report.all_maintained
        assert report.batches[0].mode == "propagate"
        assert engine.stats()["propagated"] == 1
        assert engine.stats()["fallbacks"] == 0
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch)

    def test_fallback_counter_increments_on_propagation_error(
        self, tiny_favorita, monkeypatch
    ):
        ds = tiny_favorita
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)

        def boom(*args, **kwargs):
            raise RuntimeError("injected propagation failure")

        monkeypatch.setattr(engine, "_propagate", boom)
        dim = next(r.name for r in engine.database if r.name != engine.root)
        dim_rel = engine.database.relation(dim)
        rng = np.random.default_rng(2)
        report = engine.apply_delta(
            DeltaBatch.insert(dim, sample_inserts(rng, dim_rel, 2))
        )
        stats = engine.stats()
        assert stats["fallbacks"] == 1
        assert "injected propagation failure" in stats["last_fallback_reason"]
        assert report.batches[0].mode == "recompute"
        assert not report.all_maintained
        # the fallback still leaves correct state behind
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch)

    def test_mergeable_relations_is_the_root_only(self, tiny_retailer):
        ds = tiny_retailer
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        assert engine.mergeable_relations(batch) == {engine.root}


class TestRandomDeltaSequences:
    """Property-style: arbitrary insert/delete interleavings stay exact."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sequence_matches_recomputation(self, tiny_yelp, seed):
        ds = tiny_yelp
        engine = IncrementalEngine(ds.database, ds.join_tree)
        fact = engine.root
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            relation = engine.database.relation(fact)
            op = rng.integers(0, 3)
            if op == 0:
                delta = DeltaBatch.insert(
                    fact,
                    sample_inserts(
                        rng, relation, int(rng.integers(1, 40))
                    ),
                )
            elif op == 1:
                size = int(
                    rng.integers(1, max(2, relation.n_rows // 10))
                )
                idx = rng.choice(relation.n_rows, size, replace=False)
                delta = DeltaBatch.delete(fact, idx)
            else:
                size = int(
                    rng.integers(1, max(2, relation.n_rows // 20))
                )
                delta = DeltaBatch(
                    fact,
                    inserts=sample_inserts(
                        rng, relation, int(rng.integers(1, 30))
                    ),
                    delete_indices=rng.choice(
                        relation.n_rows, size, replace=False
                    ),
                )
            report = engine.apply_delta(delta)
            assert report.all_incremental
            got = engine.run(batch)
            expected = reference_results(engine, batch)
            assert_results_equal(got, expected, batch, rtol=1e-8, atol=1e-8)

    def test_forget_stops_maintenance(self, tiny_yelp):
        ds = tiny_yelp
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        assert engine.n_cached_batches == 1
        assert engine.forget(batch)
        assert not engine.forget(batch)  # already gone
        assert engine.n_cached_batches == 0
        report = engine.apply_delta(
            DeltaBatch.delete(engine.root, np.array([0]))
        )
        assert report.batches == []  # nothing cached, nothing maintained
        got = engine.run(batch)  # re-materializes against the updated db
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch)
        engine.clear_cache()
        assert engine.n_cached_batches == 0

    def test_refresh_squashes_drift(self, tiny_yelp):
        ds = tiny_yelp
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        fact = engine.root
        rng = np.random.default_rng(9)
        relation = engine.database.relation(fact)
        engine.apply_delta(
            DeltaBatch.insert(fact, sample_inserts(rng, relation, 25))
        )
        engine.refresh()
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch)
