"""Test package."""
