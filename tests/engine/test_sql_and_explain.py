"""SQL rendering and EXPLAIN output of LMFAO plans."""

import pytest

from repro import LMFAO, Aggregate, Delta, Query, QueryBatch, Udf
from repro.engine.explain import explain
from repro.engine.sql import function_sql, render_batch_sql, view_name
from repro.query.functions import Exp, Identity, Log, Power


@pytest.fixture
def plan(toy_db):
    engine = LMFAO(toy_db)
    batch = QueryBatch(
        [
            Query("n", [], [Aggregate.count()]),
            Query(
                "g",
                ["city"],
                [Aggregate.of("units", Delta("price", "<=", 50.0), name="u")],
            ),
        ]
    )
    return engine, engine.plan(batch)


class TestFunctionSql:
    def test_identity(self):
        assert function_sql(Identity("x")) == "x"

    def test_power(self):
        assert function_sql(Power("x", 2)) == "POWER(x, 2)"
        assert function_sql(Power("x", 1)) == "x"

    def test_delta_case_expression(self):
        sql = function_sql(Delta("x", "<=", 3.0))
        assert "CASE WHEN x <= 3.0" in sql

    def test_delta_not_equal_uses_sql_operator(self):
        assert "x <> 3.0" in function_sql(Delta("x", "!=", 3.0))

    def test_delta_in(self):
        sql = function_sql(Delta("x", "in", [1, 2]))
        assert "x IN (1, 2)" in sql

    def test_log_exp(self):
        assert function_sql(Log("x")) == "LN(x)"
        assert "EXP(" in function_sql(Exp(["x"], [0.5]))

    def test_udf_rendered_as_call(self):
        f = Udf(["x", "y"], lambda x, y: x + y, name="my_udf")
        assert function_sql(f) == "my_udf(x, y)"


class TestRenderBatch:
    def test_script_contains_all_views(self, plan):
        engine, engine_plan = plan
        script = render_batch_sql(engine_plan.decomposed)
        for view in engine_plan.decomposed.views:
            assert view_name(view) in script

    def test_views_created_before_use(self, plan):
        """Dependency order: every CREATE VIEW precedes its references."""
        _, engine_plan = plan
        script = render_batch_sql(engine_plan.decomposed)
        for view in engine_plan.decomposed.views:
            if view.is_output:
                continue
            name = view_name(view)
            create_pos = script.index(f"CREATE VIEW {name}")
            use_marker = f"{name}.agg"
            if use_marker in script:
                assert create_pos < script.index(use_marker)

    def test_group_by_clause_present(self, plan):
        _, engine_plan = plan
        script = render_batch_sql(engine_plan.decomposed)
        assert "GROUP BY" in script

    def test_delta_rendered_inline(self, plan):
        _, engine_plan = plan
        script = render_batch_sql(engine_plan.decomposed)
        assert "CASE WHEN price <= 50.0" in script

    def test_header_counts(self, plan):
        _, engine_plan = plan
        script = render_batch_sql(engine_plan.decomposed)
        assert f"{engine_plan.decomposed.n_views} views" in script


class TestExplain:
    def test_sections_present(self, plan, toy_db):
        engine, engine_plan = plan
        text = explain(engine_plan, engine.join_tree)
        for section in (
            "join tree:",
            "roots (Find Roots layer):",
            "directional views",
            "view groups",
            "sharing summary:",
        ):
            assert section in text

    def test_mentions_all_nodes(self, plan):
        engine, engine_plan = plan
        text = explain(engine_plan, engine.join_tree)
        for node in engine.join_tree.nodes:
            assert node in text

    def test_group_levels_cover_all_groups(self, plan):
        engine, engine_plan = plan
        text = explain(engine_plan, engine.join_tree)
        for group in engine_plan.grouped.groups:
            assert f"group {group.id} @" in text
