"""Step-level tests of the interpreted executor and ViewData."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch
from repro.data import Relation
from repro.data.schema import Schema, continuous, key
from repro.engine.grouping import group_views
from repro.engine.interpreter import ViewData, execute_plan
from repro.engine.plan import build_group_plan
from repro.engine.pushdown import Decomposer
from repro.jointree.join_tree import join_tree_from_database


class TestViewData:
    def test_scalar_view(self):
        data = ViewData((), [], [np.array([7.0])])
        assert data.n_rows == 1

    def test_grouped_view(self):
        data = ViewData(
            ("g",), [np.array([1, 2, 3])], [np.zeros(3)]
        )
        assert data.n_rows == 3

    def test_to_relation(self):
        data = ViewData(
            ("g",), [np.array([1, 2])], [np.array([5.0, 6.0])]
        )
        rel = data.to_relation("out")
        assert rel.attribute_names == ("g", "agg_0")
        assert rel.column("agg_0").tolist() == [5.0, 6.0]


def make_plan(db, batch):
    tree = join_tree_from_database(db)
    from repro.engine.roots import assign_roots

    roots = assign_roots(batch, tree, db)
    decomposed = Decomposer(tree).decompose(batch, roots)
    grouped = group_views(decomposed)
    dyn_slots = {}
    plans = [
        build_group_plan(
            group, decomposed.views, db.relation(group.node), dyn_slots
        )
        for group in grouped.groups
    ]
    return decomposed, grouped, plans


class TestExecutePlan:
    def test_leaf_group_produces_views(self, toy_db):
        batch = QueryBatch(
            [Query("g", ["city"], [Aggregate.of("units", name="u")])]
        )
        decomposed, grouped, plans = make_plan(toy_db, batch)
        first = plans[0]
        produced = execute_plan(
            first, toy_db.relation(first.node), {}, []
        )
        assert set(produced) == set(first.group.view_ids)

    def test_full_pipeline_by_hand(self, toy_db):
        batch = QueryBatch(
            [Query("n", [], [Aggregate.count()])]
        )
        decomposed, grouped, plans = make_plan(toy_db, batch)
        view_data = {}
        for group in grouped.groups:  # topological order
            plan = plans[group.id]
            incoming = {
                vid: view_data[vid] for vid in plan.input_view_ids
            }
            view_data.update(
                execute_plan(
                    plan, toy_db.relation(plan.node), incoming, []
                )
            )
        output = next(
            view_data[v.id]
            for v in decomposed.views
            if v.is_output
        )
        assert output.agg_cols[0][0] == 300.0

    def test_empty_relation_produces_empty_views(self):
        sales = Relation(
            "S",
            Schema([key("k"), continuous("x")]),
            {"k": np.array([], dtype=np.int64), "x": np.array([])},
        )
        dim = Relation(
            "D",
            Schema([key("k"), continuous("y")]),
            {"k": np.array([1, 2]), "y": np.array([1.0, 2.0])},
        )
        from repro.data import Database

        db = Database([sales, dim])
        engine = LMFAO(db)
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["k"], [Aggregate.of("x", name="sx")]),
            ]
        )
        result = engine.run(batch)
        assert result["n"].column("count")[0] == 0.0
        assert result["g"].n_rows == 0

    def test_plan_describe_lists_steps(self, toy_db):
        batch = QueryBatch([Query("n", [], [Aggregate.count()])])
        _, _, plans = make_plan(toy_db, batch)
        text = plans[0].describe()
        assert "group" in text


class TestDanglingTuples:
    def test_fact_rows_without_dimension_partner_dropped(self):
        """Join semantics: a fact row with no dimension match is not in
        the join and must not be counted."""
        from repro.data import Database

        sales = Relation(
            "S",
            Schema([key("k"), continuous("x")]),
            {"k": np.array([1, 2, 99]), "x": np.array([1.0, 2.0, 4.0])},
        )
        dim = Relation(
            "D",
            Schema([key("k")]),
            {"k": np.array([1, 2])},
        )
        db = Database([sales, dim])
        engine = LMFAO(db)
        result = engine.run(
            QueryBatch(
                [
                    Query("n", [], [Aggregate.count()]),
                    Query("sx", [], [Aggregate.of("x", name="v")]),
                ]
            )
        )
        assert result["n"].column("count")[0] == 2.0
        assert result["sx"].column("v")[0] == 3.0

    def test_dimension_fanout_counted(self):
        """A fact row matching several dimension rows contributes once
        per combination (bag semantics)."""
        from repro.data import Database

        fact = Relation(
            "F",
            Schema([key("k")]),
            {"k": np.array([1])},
        )
        dim = Relation(
            "D",
            Schema([key("k"), continuous("y")]),
            {"k": np.array([1, 1, 1]), "y": np.array([1.0, 2.0, 3.0])},
        )
        db = Database([fact, dim])
        engine = LMFAO(db)
        result = engine.run(
            QueryBatch(
                [
                    Query("n", [], [Aggregate.count()]),
                    Query("sy", [], [Aggregate.of("y", name="v")]),
                ]
            )
        )
        assert result["n"].column("count")[0] == 3.0
        assert result["sy"].column("v")[0] == 6.0
