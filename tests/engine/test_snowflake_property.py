"""Property-based differential tests on a snowflake (depth-2) schema.

The star-schema property tests never exercise *transitive* carried
attributes: a group-by attribute two edges away from the root must ride
through an intermediate node's view.  This suite generates random
snowflake databases (Fact - Dim - SubDim chain plus a second dimension)
and random batches over attributes at every depth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LMFAO, Aggregate, Database, Delta, Product, Query, QueryBatch, Relation
from repro.baselines import MaterializedEngine
from repro.data.schema import Schema, continuous, key

from .helpers import assert_results_equal


@st.composite
def snowflake_db(draw):
    """Fact(a, b, x) - Dim(a, c, y) - SubDim(c, z); Other(b, w)."""
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    n_fact = draw(st.integers(1, 60))
    n_dim = draw(st.integers(1, 10))
    n_sub = draw(st.integers(1, 6))
    n_other = draw(st.integers(1, 8))
    fact = Relation(
        "Fact",
        Schema([key("a"), key("b"), continuous("x")]),
        {
            "a": rng.integers(0, n_dim + 1, n_fact),  # may dangle
            "b": rng.integers(0, n_other, n_fact),
            "x": np.round(rng.normal(0, 2, n_fact), 2),
        },
    )
    dim = Relation(
        "Dim",
        Schema([key("a"), key("c"), continuous("y")]),
        {
            "a": np.arange(n_dim),
            "c": rng.integers(0, n_sub, n_dim),
            "y": np.round(rng.normal(5, 1, n_dim), 2),
        },
    )
    sub = Relation(
        "SubDim",
        Schema([key("c"), continuous("z")]),
        {
            "c": np.arange(n_sub),
            "z": np.round(rng.normal(-1, 3, n_sub), 2),
        },
    )
    other = Relation(
        "Other",
        Schema([key("b"), continuous("w")]),
        {
            "b": np.arange(n_other),
            "w": np.round(rng.normal(0, 1, n_other), 2),
        },
    )
    return Database([fact, dim, sub, other], name="snowflake")


GROUPABLE = ["a", "b", "c"]
NUMERIC = ["x", "y", "z", "w"]


@st.composite
def snowflake_batch(draw):
    queries = []
    for qi in range(draw(st.integers(1, 3))):
        group_by = draw(
            st.lists(st.sampled_from(GROUPABLE), unique=True, max_size=2)
        )
        aggs = []
        for ai in range(draw(st.integers(1, 2))):
            n_factors = draw(st.integers(0, 2))
            factors = [
                draw(st.sampled_from(NUMERIC)) for _ in range(n_factors)
            ]
            if draw(st.booleans()):
                factors.append(
                    Delta(
                        draw(st.sampled_from(NUMERIC)),
                        draw(st.sampled_from(["<=", ">"])),
                        draw(st.floats(-5, 8, allow_nan=False)),
                    )
                )
            aggs.append(
                Aggregate([Product(factors)], name=f"agg{ai}")
            )
        queries.append(Query(f"q{qi}", group_by, aggs))
    return QueryBatch(queries)


class TestSnowflakeDifferential:
    @given(snowflake_db(), snowflake_batch())
    @settings(max_examples=30, deadline=None)
    def test_matches_materialized(self, db, batch):
        got = LMFAO(db).run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-7, atol=1e-7)

    @given(snowflake_db(), snowflake_batch())
    @settings(max_examples=15, deadline=None)
    def test_root_at_leaf_matches(self, db, batch):
        """Force the root to the deepest leaf: every group-by attr is
        carried transitively."""
        from repro.engine.grouping import group_views
        from repro.engine.interpreter import execute_plan
        from repro.engine.pushdown import Decomposer
        from repro.jointree.join_tree import join_tree_from_database

        tree = join_tree_from_database(db)
        roots = {q.name: "SubDim" for q in batch}
        decomposed = Decomposer(tree).decompose(batch, roots)
        grouped = group_views(decomposed)
        from repro.engine.plan import build_group_plan

        view_data = {}
        for group in grouped.groups:  # topological order
            plan = build_group_plan(
                group, decomposed.views, db.relation(group.node), {}
            )
            incoming = {
                vid: view_data[vid] for vid in plan.input_view_ids
            }
            view_data.update(
                execute_plan(plan, db.relation(group.node), incoming, [])
            )
        # compare the scalar/count totals against the default engine
        default = LMFAO(db).run(batch)
        for output in decomposed.outputs:
            query = next(q for q in batch if q.name == output.query_name)
            ref = output.term_refs[0][0]
            data = view_data[ref.view_id]
            expected_rel = default[query.name]
            got_total = float(np.sum(data.agg_cols[ref.agg_index]))
            agg_name = query.aggregates[0].name or "agg"
            expected_total = float(np.sum(expected_rel.column(agg_name)))
            assert np.isclose(got_total, expected_total, rtol=1e-7, atol=1e-7)

    @given(snowflake_db())
    @settings(max_examples=15, deadline=None)
    def test_subdim_groupby_carried_two_edges(self, db):
        """Group-by on SubDim's key when rooted at Fact: 'c' rides
        through Dim's view."""
        batch = QueryBatch(
            [Query("g", ["c"], [Aggregate.of("x", name="sx")])]
        )
        tree = None
        engine = LMFAO(db, tree)
        got = engine.run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-7, atol=1e-7)
