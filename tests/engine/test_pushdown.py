"""Aggregate Pushdown + Merge Views: view structure of decomposed batches."""

import pytest

from repro import Aggregate, Delta, Query, QueryBatch, Udf
from repro.engine.pushdown import Decomposer
from repro.engine.roots import assign_roots
from repro.jointree.join_tree import join_tree_from_database


def decompose(db, batch, merge_mode="full", multi_root=True):
    tree = join_tree_from_database(db)
    roots = assign_roots(batch, tree, db, multi_root=multi_root)
    return Decomposer(tree, merge_mode=merge_mode).decompose(batch, roots)


class TestViewStructure:
    def test_one_view_per_edge_and_output(self, toy_db):
        batch = QueryBatch([Query("count", [], [Aggregate.count()])])
        decomposed = decompose(toy_db, batch)
        # 2 edges + 1 output view
        assert decomposed.n_views == 3
        outputs = [v for v in decomposed.views if v.is_output]
        assert len(outputs) == 1
        assert outputs[0].group_by == ()

    def test_directional_views_point_to_root(self, toy_db):
        batch = QueryBatch(
            [Query("q", ["city"], [Aggregate.count()])]
        )
        decomposed = decompose(toy_db, batch)
        root = decomposed.roots["q"]
        assert root == "Stores"
        for view in decomposed.views:
            if not view.is_output:
                # flows along an edge towards the root
                assert view.target is not None

    def test_count_views_shared_across_queries(self, toy_db):
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate.of("units", name="u")]),
                Query("b", [], [Aggregate.of(("units"), "units", name="uu")]),
            ]
        )
        decomposed = decompose(toy_db, batch)
        # both queries need plain count views from Stores and Oil; merging
        # must share them: expect 2 edge views + 1 merged output view
        assert decomposed.n_views == 3

    def test_merge_full_vs_none_view_counts(self, toy_db):
        aggs = [
            Aggregate.of("units", name=f"u{i}") for i in range(5)
        ]
        batch = QueryBatch([Query("q", [], aggs)])
        full = decompose(toy_db, batch, merge_mode="full")
        dedup = decompose(toy_db, batch, merge_mode="dedup")
        none = decompose(toy_db, batch, merge_mode="none")
        assert full.n_views <= dedup.n_views <= none.n_views
        # "none" materializes one view per (term, edge) plus outputs:
        # 5 aggregates x 2 edges + 5 outputs
        assert none.n_views == 15

    def test_identical_aggregates_deduplicated(self, toy_db):
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate.of("units", name="u")]),
                Query("b", [], [Aggregate.of("units", name="u2")]),
            ]
        )
        decomposed = decompose(toy_db, batch, merge_mode="full")
        outputs = [v for v in decomposed.views if v.is_output]
        # same root, same group-by, same aggregate: one output column
        assert len(outputs) == 1
        assert len(outputs[0].aggregates) == 1

    def test_carried_attribute_becomes_group_by(self, toy_db):
        # group by a Stores attribute while rooting at Sales: the "city"
        # values must be carried by the Stores->Sales view
        tree = join_tree_from_database(toy_db)
        batch = QueryBatch([Query("q", ["city"], [Aggregate.of("units")])])
        decomposed = Decomposer(tree).decompose(batch, {"q": "Sales"})
        store_views = [
            v
            for v in decomposed.views
            if v.source == "Stores" and v.target == "Sales"
        ]
        assert any("city" in v.group_by for v in store_views)

    def test_spanning_function_carries_attrs(self, toy_db):
        f = Udf(["units", "price"], lambda u, p: u + p, name="sum2")
        batch = QueryBatch([Query("q", [], [Aggregate.of(f, name="v")])])
        decomposed = decompose(toy_db, batch)
        # price lives in Oil; the function must be evaluated where both
        # attrs are visible, so some view carries price upward
        carrying = [
            v
            for v in decomposed.views
            if not v.is_output and "price" in v.group_by
        ]
        assert carrying

    def test_dynamic_functions_not_merged_across_slots(self, toy_db):
        d1 = Delta("price", "<=", 50.0, dynamic=True)
        d2 = Delta("price", "<=", 50.0, dynamic=True)
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate.of(d1, name="v")]),
                Query("b", [], [Aggregate.of(d2, name="v")]),
            ]
        )
        dyn_slots = {id(f): i for i, f in enumerate(batch.dynamic_functions())}
        tree = join_tree_from_database(toy_db)
        roots = assign_roots(batch, tree, toy_db)
        decomposed = Decomposer(tree, dyn_slots=dyn_slots).decompose(
            batch, roots
        )
        outputs = [v for v in decomposed.views if v.is_output]
        total_output_aggs = sum(len(v.aggregates) for v in outputs)
        assert total_output_aggs == 2  # NOT deduplicated

    def test_unknown_attr_rejected(self, toy_db):
        batch = QueryBatch([Query("q", ["ghost"], [Aggregate.count()])])
        with pytest.raises(ValueError, match="unknown attribute"):
            decompose(toy_db, batch)

    def test_invalid_merge_mode_rejected(self, toy_db):
        tree = join_tree_from_database(toy_db)
        with pytest.raises(ValueError, match="merge_mode"):
            Decomposer(tree, merge_mode="bogus")


class TestConsolidationScale:
    def test_covar_style_consolidation(self, tiny_favorita):
        """Many aggregates consolidate into few views (the paper's
        814 x 4 = 3256 -> 34 example, at our scale)."""
        from repro.ml import CovarBatch

        ds = tiny_favorita
        batch = CovarBatch(
            ["txns", "price"], ["stype", "family"], "units"
        ).batch
        tree = ds.join_tree
        roots = assign_roots(batch, tree, ds.database)
        full = Decomposer(tree, "full").decompose(batch, roots)
        none = Decomposer(tree, "none").decompose(batch, roots)
        assert full.n_views < none.n_views / 3
        assert full.n_total_aggregates < none.n_total_aggregates
