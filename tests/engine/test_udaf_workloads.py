"""UDAF coverage through the full engine: the §1.1 function vocabulary.

The paper's aggregate language includes exponentials (logistic
regression), parameterized linear combinations (the gradient's inner
product), and arbitrary UDFs.  These tests push each through the engine
and check against the materialized join.
"""

import numpy as np
import pytest

from repro import (
    LMFAO,
    Aggregate,
    Exp,
    Log,
    Product,
    Query,
    QueryBatch,
    materialize_join,
)
from repro.baselines import MaterializedEngine

from .helpers import assert_results_equal


class TestLogisticRegressionAggregates:
    def test_exp_inner_product_aggregate(self, toy_db):
        """sum exp(theta . x) — the logistic-regression example of §1.1."""
        exp_factor = Exp(["units", "price"], [0.01, -0.005])
        batch = QueryBatch(
            [Query("ll", [], [Aggregate.of(exp_factor, name="v")])]
        )
        got = LMFAO(toy_db).run(batch)
        flat = materialize_join(toy_db)
        expected = np.exp(
            0.01 * flat.column("units") - 0.005 * flat.column("price")
        ).sum()
        assert np.isclose(got["ll"].column("v")[0], expected, rtol=1e-9)

    def test_exp_grouped(self, toy_db):
        exp_factor = Exp(["units"], [0.02])
        batch = QueryBatch(
            [Query("g", ["city"], [Aggregate.of(exp_factor, name="v")])]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-9)


class TestGradientVectorAggregates:
    def test_inner_product_linear_combination(self, toy_db):
        """sum_j theta_j X_j as a multi-term aggregate (the gradient
        vector formulation of §2)."""
        thetas = [0.5, -0.25]
        features = ["units", "price"]
        agg = Aggregate.linear_combination(
            thetas, [[f] for f in features], name="ip"
        )
        batch = QueryBatch([Query("q", [], [agg])])
        got = LMFAO(toy_db).run(batch)
        flat = materialize_join(toy_db)
        expected = (
            0.5 * flat.column("units") - 0.25 * flat.column("price")
        ).sum()
        assert np.isclose(got["q"].column("ip")[0], expected, rtol=1e-9)

    def test_gradient_component(self, toy_db):
        """sum (theta . x) * x_k — one gradient entry, as a sum of
        two-factor products."""
        agg = Aggregate(
            [
                Product(["units", "units"], coefficient=0.5),
                Product(["price", "units"], coefficient=-0.25),
            ],
            name="grad_units",
        )
        batch = QueryBatch([Query("q", [], [agg])])
        got = LMFAO(toy_db).run(batch)
        flat = materialize_join(toy_db)
        u, p = flat.column("units"), flat.column("price")
        expected = ((0.5 * u - 0.25 * p) * u).sum()
        assert np.isclose(got["q"].column("grad_units")[0], expected, rtol=1e-9)


class TestLogAggregates:
    def test_log_factor(self, toy_db):
        batch = QueryBatch(
            [Query("q", [], [Aggregate.of(Log("price"), name="lp")])]
        )
        got = LMFAO(toy_db).run(batch)
        flat = materialize_join(toy_db)
        assert np.isclose(
            got["q"].column("lp")[0],
            np.log(flat.column("price")).sum(),
            rtol=1e-9,
        )

    def test_mixed_log_identity_product(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "q",
                    ["city"],
                    [Aggregate.of(Log("price"), "units", name="v")],
                )
            ]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-9)
