"""Dimension-table deltas: differential tests for DAG propagation.

The propagation tentpole's contract: a delta on ANY relation — not just
the join-tree root — maintains every cached batch without falling back
to full recomputation, and the maintained results are exactly what a
from-scratch evaluation of the updated database produces.

Every test here applies inserts and/or retractions to *non-root*
(dimension) relations, asserts the maintenance mode was ``propagate``
(never ``recompute``), and checks the differential against a cold
engine.  Both execution backends are covered: the propagation path
re-runs interior view groups through ``LMFAO.run_group``, which
dispatches to whichever backend the engine was built with.
"""

import numpy as np
import pytest

from repro import DeltaBatch, IncrementalEngine

from .helpers import assert_results_equal
from .test_ivm import (
    DATASET_FIXTURES,
    reference_results,
    sample_inserts,
    simple_batch,
)

BACKENDS = ["interpret", "compiled"]


@pytest.fixture(params=DATASET_FIXTURES)
def any_dataset(request):
    return request.getfixturevalue(request.param)


def dimension_names(engine):
    """Every non-root relation, in database order."""
    return [r.name for r in engine.database if r.name != engine.root]


def build_engine(ds, backend):
    return IncrementalEngine(ds.database, ds.join_tree, backend=backend)


class TestDimensionDeltaDifferential:
    """insert/retract on dimension tables == recomputation, per backend."""

    def _roundtrip(self, ds, backend, deltas_fn):
        engine = build_engine(ds, backend)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        rng = np.random.default_rng(0)
        reports = []
        for dim in dimension_names(engine):
            deltas = deltas_fn(rng, engine.database.relation(dim), dim)
            if not deltas:
                continue
            reports.append(engine.apply_delta(*deltas))
        assert reports, "datasets under test must have dimension tables"
        for report in reports:
            # the whole point of the PR: dimension deltas propagate
            # through interior DAG levels instead of recomputing
            assert report.all_maintained, report
            assert all(b.mode == "propagate" for b in report.batches)
        stats = engine.stats()
        assert stats["fallbacks"] == 0
        assert stats["propagated"] == len(reports)
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch, rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_inserts_on_every_dimension(self, any_dataset, backend):
        def deltas(rng, rel, dim):
            n = max(1, rel.n_rows // 20)
            return [DeltaBatch.insert(dim, sample_inserts(rng, rel, n))]

        self._roundtrip(any_dataset, backend, deltas)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retractions_on_every_dimension(self, any_dataset, backend):
        def deltas(rng, rel, dim):
            if rel.n_rows < 2:
                return []
            n = max(1, rel.n_rows // 20)
            idx = rng.choice(rel.n_rows, n, replace=False)
            return [DeltaBatch.delete(dim, idx)]

        self._roundtrip(any_dataset, backend, deltas)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_insert_and_retract(self, any_dataset, backend):
        def deltas(rng, rel, dim):
            if rel.n_rows < 2:
                return []
            n = max(1, rel.n_rows // 30)
            return [
                DeltaBatch(
                    dim,
                    inserts=sample_inserts(rng, rel, n),
                    delete_indices=rng.choice(rel.n_rows, n, replace=False),
                )
            ]

        self._roundtrip(any_dataset, backend, deltas)


class TestInterleavedRootAndDimension:
    """Sequences mixing root and dimension deltas stay exact."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sequence(self, tiny_favorita, seed):
        ds = tiny_favorita
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        rng = np.random.default_rng(seed)
        targets = [engine.root] + dimension_names(engine)
        for step in range(6):
            name = targets[int(rng.integers(0, len(targets)))]
            rel = engine.database.relation(name)
            if rel.n_rows < 4 or rng.integers(0, 2) == 0:
                delta = DeltaBatch.insert(
                    name,
                    sample_inserts(rng, rel, int(rng.integers(1, 5))),
                )
            else:
                idx = rng.choice(
                    rel.n_rows, int(rng.integers(1, 4)), replace=False
                )
                delta = DeltaBatch.delete(name, idx)
            report = engine.apply_delta(delta)
            assert report.all_maintained, (step, name, report)
            got = engine.run(batch)
            expected = reference_results(engine, batch)
            assert_results_equal(
                got, expected, batch, rtol=1e-8, atol=1e-8
            )
        assert engine.stats()["fallbacks"] == 0

    def test_one_batch_with_root_and_dimension_deltas(self, tiny_yelp):
        ds = tiny_yelp
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = simple_batch([ds.categorical_features[0]])
        engine.run(batch)
        rng = np.random.default_rng(3)
        dim = dimension_names(engine)[0]
        root_rel = engine.database.relation(engine.root)
        dim_rel = engine.database.relation(dim)
        report = engine.apply_delta(
            DeltaBatch.insert(
                engine.root, sample_inserts(rng, root_rel, 10)
            ),
            DeltaBatch.insert(dim, sample_inserts(rng, dim_rel, 2)),
        )
        # the dimension step forces propagation for the whole call
        assert report.all_maintained
        assert report.batches[0].mode == "propagate"
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch, rtol=1e-8, atol=1e-8)

    def test_covar_workload_dimension_delta(self, tiny_retailer):
        from .test_ivm import covar_batch

        ds = tiny_retailer
        engine = IncrementalEngine(ds.database, ds.join_tree)
        batch = covar_batch(ds)
        engine.run(batch)
        rng = np.random.default_rng(4)
        dim = dimension_names(engine)[0]
        dim_rel = engine.database.relation(dim)
        report = engine.apply_delta(
            DeltaBatch(
                dim,
                inserts=sample_inserts(rng, dim_rel, 2),
                delete_indices=np.array([0]),
            )
        )
        assert report.all_maintained
        got = engine.run(batch)
        expected = reference_results(engine, batch)
        assert_results_equal(got, expected, batch, rtol=1e-7, atol=1e-7)
