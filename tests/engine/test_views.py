"""Unit tests of the view IR (AggregateSpec, View, ViewRef)."""

import pytest

from repro.engine.views import AggregateSpec, View, ViewRef
from repro.query.functions import Delta, Identity


class TestAggregateSpec:
    def test_signature_order_invariant(self):
        a = AggregateSpec(
            1.0,
            (Identity("x"), Identity("y")),
            (ViewRef(1, 0), ViewRef(2, 3)),
        )
        b = AggregateSpec(
            1.0,
            (Identity("y"), Identity("x")),
            (ViewRef(2, 3), ViewRef(1, 0)),
        )
        assert a.signature() == b.signature()

    def test_signature_coefficient_sensitive(self):
        a = AggregateSpec(1.0, (), ())
        b = AggregateSpec(2.0, (), ())
        assert a.signature() != b.signature()

    def test_dynamic_without_slot_never_merges(self):
        d1 = Delta("x", "<=", 1.0, dynamic=True)
        d2 = Delta("x", "<=", 1.0, dynamic=True)
        a = AggregateSpec(1.0, (d1,), ())
        b = AggregateSpec(1.0, (d2,), ())
        # without slots the object identity keeps them apart
        assert a.signature({}) != b.signature({})

    def test_dynamic_with_slots(self):
        d1 = Delta("x", "<=", 1.0, dynamic=True)
        d2 = Delta("x", "<=", 9.0, dynamic=True)
        slots = {id(d1): 0, id(d2): 1}
        a = AggregateSpec(1.0, (d1,), ())
        b = AggregateSpec(1.0, (d2,), ())
        assert a.signature(slots) != b.signature(slots)
        # same slot -> same signature regardless of value
        assert a.signature({id(d1): 5}) == b.signature({id(d2): 5})

    def test_referenced_view_ids_sorted_unique(self):
        spec = AggregateSpec(
            1.0, (), (ViewRef(3, 0), ViewRef(1, 2), ViewRef(3, 1))
        )
        assert spec.referenced_view_ids() == (1, 3)


class TestView:
    def test_names(self):
        edge = View(0, "A", "B", ("k",))
        output = View(1, "A", None, ())
        assert "A->B" in edge.name
        assert edge.is_output is False
        assert output.is_output is True
        assert "@A" in output.name

    def test_add_aggregate_returns_index(self):
        view = View(0, "A", "B", ("k",))
        assert view.add_aggregate(AggregateSpec(1.0, (), ())) == 0
        assert view.add_aggregate(AggregateSpec(2.0, (), ())) == 1

    def test_referenced_view_ids_across_aggregates(self):
        view = View(0, "A", "B", ("k",))
        view.add_aggregate(AggregateSpec(1.0, (), (ViewRef(5, 0),)))
        view.add_aggregate(AggregateSpec(1.0, (), (ViewRef(7, 0),)))
        assert set(view.referenced_view_ids()) == {5, 7}
