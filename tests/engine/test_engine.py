"""End-to-end engine tests: differential vs the materialized baseline."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Delta, Identity, Power, Product, Query, QueryBatch
from repro.baselines import MaterializedEngine

from .helpers import assert_results_equal


def standard_batch():
    return QueryBatch(
        [
            Query("count", [], [Aggregate.count()]),
            Query("sum_units", [], [Aggregate.of("units", name="s")]),
            Query(
                "by_city",
                ["city"],
                [
                    Aggregate.of("units", "price", name="up"),
                    Aggregate.count(name="n"),
                ],
            ),
            Query(
                "by_city_store",
                ["city", "store"],
                [Aggregate.of("units", name="u")],
            ),
            Query(
                "delta",
                [],
                [Aggregate.of(Delta("price", "<=", 50.0), "units", name="du")],
            ),
            Query(
                "square",
                ["store"],
                [Aggregate.of(Power("units", 2), name="uu")],
            ),
            Query(
                "sum_of_products",
                [],
                [
                    Aggregate(
                        [
                            Product(["units"], coefficient=2.0),
                            Product(["price"], coefficient=-1.0),
                        ],
                        name="mix",
                    )
                ],
            ),
        ]
    )


class TestAgainstMaterialized:
    def test_standard_batch(self, toy_db):
        batch = standard_batch()
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_group_by_attr_from_two_relations(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "cross_group",
                    ["city", "date"],
                    [Aggregate.of("units", name="u")],
                )
            ]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_function_spanning_relations(self, toy_db):
        from repro import Udf

        f = Udf(["units", "price"], lambda u, p: u * p + 1.0, name="up1")
        batch = QueryBatch(
            [Query("span", ["city"], [Aggregate.of(f, name="v")])]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_chain_database(self, chain_db):
        batch = QueryBatch(
            [
                Query("count", [], [Aggregate.count()]),
                Query("by_a", ["a"], [Aggregate.count(name="n")]),
                Query("by_e", ["e"], [Aggregate.count(name="n")]),
                Query("by_ae", ["a", "e"], [Aggregate.count(name="n")]),
                Query("by_c", ["c"], [Aggregate.count(name="n")]),
            ]
        )
        got = LMFAO(chain_db).run(batch)
        expected = MaterializedEngine(chain_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_many_to_many(self, manytomany_db):
        batch = QueryBatch(
            [
                Query("count", [], [Aggregate.count()]),
                Query("by_tag", ["tag"], [Aggregate.of("stars", name="s")]),
                Query(
                    "by_biz", ["biz"], [Aggregate.of("stars", name="s")]
                ),
            ]
        )
        got = LMFAO(manytomany_db).run(batch)
        expected = MaterializedEngine(manytomany_db).run(batch)
        assert_results_equal(got, expected, batch)

    @pytest.mark.parametrize(
        "dataset_fixture",
        ["tiny_favorita", "tiny_retailer", "tiny_yelp", "tiny_tpcds"],
    )
    def test_all_datasets_counts_and_groups(self, dataset_fixture, request):
        dataset = request.getfixturevalue(dataset_fixture)
        group_attr = dataset.categorical_features[0]
        measure = dataset.continuous_features[0]
        batch = QueryBatch(
            [
                Query("count", [], [Aggregate.count()]),
                Query(
                    "grouped", [group_attr], [Aggregate.of(measure, name="m")]
                ),
            ]
        )
        got = LMFAO(dataset.database, dataset.join_tree).run(batch)
        expected = MaterializedEngine(dataset.database).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-8)


class TestModes:
    @pytest.mark.parametrize("compile_", [True, False])
    @pytest.mark.parametrize("multi_root", [True, False])
    @pytest.mark.parametrize("merge_mode", ["full", "dedup", "none"])
    def test_all_mode_combinations_agree(
        self, toy_db, compile_, multi_root, merge_mode
    ):
        batch = standard_batch()
        reference = MaterializedEngine(toy_db).run(batch)
        engine = LMFAO(
            toy_db,
            compile=compile_,
            multi_root=multi_root,
            merge_mode=merge_mode,
        )
        assert_results_equal(engine.run(batch), reference, batch)

    def test_group_views_disabled_agrees(self, toy_db):
        batch = standard_batch()
        reference = MaterializedEngine(toy_db).run(batch)
        engine = LMFAO(toy_db, group_views=False)
        assert_results_equal(engine.run(batch), reference, batch)

    def test_unsorted_inputs_agree(self, toy_db):
        batch = standard_batch()
        reference = MaterializedEngine(toy_db).run(batch)
        engine = LMFAO(toy_db, sort_inputs=False)
        assert_results_equal(engine.run(batch), reference, batch)

    def test_parallel_agrees(self, toy_db):
        batch = standard_batch()
        reference = MaterializedEngine(toy_db).run(batch)
        engine = LMFAO(toy_db, n_threads=4, partition_threshold=50)
        assert_results_equal(engine.run(batch), reference, batch)


class TestPlanCache:
    def test_same_structure_hits_cache(self, toy_db):
        engine = LMFAO(toy_db)
        batch = standard_batch()
        plan1 = engine.plan(batch)
        plan2 = engine.plan(standard_batch())
        assert plan1 is plan2

    def test_dynamic_rebinding(self, toy_db):
        engine = LMFAO(toy_db)

        def batch_for(threshold):
            d = Delta("price", "<=", threshold, dynamic=True)
            return QueryBatch(
                [Query("q", [], [Aggregate.of(d, "units", name="v")])]
            )

        first = engine.run(batch_for(45.0))
        plan_count = len(engine._plan_cache)
        second = engine.run(batch_for(55.0))
        assert len(engine._plan_cache) == plan_count  # reused
        expected1 = MaterializedEngine(toy_db).run(batch_for(45.0))
        expected2 = MaterializedEngine(toy_db).run(batch_for(55.0))
        assert np.isclose(
            first["q"].column("v")[0], expected1["q"].column("v")[0]
        )
        assert np.isclose(
            second["q"].column("v")[0], expected2["q"].column("v")[0]
        )
        assert not np.isclose(
            first["q"].column("v")[0], second["q"].column("v")[0]
        )

    def test_two_dynamic_functions_same_value_stay_distinct(self, toy_db):
        engine = LMFAO(toy_db)

        def batch_for(t1, t2):
            d1 = Delta("price", "<=", t1, dynamic=True)
            d2 = Delta("units", "<=", t2, dynamic=True)
            return QueryBatch(
                [
                    Query("q1", [], [Aggregate.of(d1, name="v")]),
                    Query("q2", [], [Aggregate.of(d2, name="v")]),
                ]
            )

        got = engine.run(batch_for(50.0, 50.0))
        got2 = engine.run(batch_for(40.0, 12.0))
        reference = MaterializedEngine(toy_db)
        expected2 = reference.run(batch_for(40.0, 12.0))
        assert np.isclose(
            got2["q1"].column("v")[0], expected2["q1"].column("v")[0]
        )
        assert np.isclose(
            got2["q2"].column("v")[0], expected2["q2"].column("v")[0]
        )


class TestValidation:
    def test_unknown_attribute_rejected(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch(
            [Query("bad", ["nonexistent"], [Aggregate.count()])]
        )
        with pytest.raises(ValueError, match="unknown attribute"):
            engine.run(batch)

    def test_result_schema_follows_query(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch(
            [
                Query(
                    "q",
                    ["city", "store"],
                    [Aggregate.of("units", name="total")],
                )
            ]
        )
        result = engine.run(batch)["q"]
        assert result.attribute_names == ("city", "store", "total")

    def test_timings_populated(self, toy_db):
        result = LMFAO(toy_db).run(standard_batch())
        assert result.plan_seconds >= 0.0
        assert result.execute_seconds > 0.0
