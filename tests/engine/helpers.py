"""Shared helpers for engine tests: result comparison + toy workloads."""

import numpy as np

from repro import Aggregate, Delta, Power, Product, Query, QueryBatch


def _counts_batch():
    return QueryBatch(
        [
            Query("count", [], [Aggregate.count()]),
            Query("per_store", ["store"], [Aggregate.count(name="n")]),
            Query("per_city", ["city"], [Aggregate.count(name="n")]),
        ]
    )


def _groupby_batch():
    return QueryBatch(
        [
            Query("by_city", ["city"], [Aggregate.of("units", name="u")]),
            Query("by_date", ["date"], [Aggregate.of("price", name="p")]),
            Query(
                "by_city_store",
                ["city", "store"],
                [Aggregate.of("units", name="u"), Aggregate.count(name="n")],
            ),
        ]
    )


def _covar_style_batch():
    # degree-2 interactions over the continuous attributes, the shape of
    # one covar-matrix strip
    return QueryBatch(
        [
            Query("s_u", [], [Aggregate.of("units", name="s")]),
            Query("s_uu", [], [Aggregate.of(Power("units", 2), name="s")]),
            Query("s_up", [], [Aggregate.of("units", "price", name="s")]),
            Query("s_us", [], [Aggregate.of("units", "size", name="s")]),
            Query(
                "mix",
                [],
                [
                    Aggregate(
                        [
                            Product(["units"], coefficient=2.0),
                            Product(["price"], coefficient=-1.0),
                        ],
                        name="mix",
                    )
                ],
            ),
        ]
    )


def _conditional_batch():
    return QueryBatch(
        [
            Query(
                "cheap_units",
                [],
                [Aggregate.of(Delta("price", "<=", 50.0), "units", name="cu")],
            ),
            Query(
                "cheap_by_city",
                ["city"],
                [Aggregate.of(Delta("price", "<=", 50.0), name="n")],
            ),
        ]
    )


#: name -> QueryBatch factory over the ``toy_db`` star schema; the
#: backend-differential tests assert every backend agrees on all of them
WORKLOADS = {
    "counts": _counts_batch,
    "groupbys": _groupby_batch,
    "covar_style": _covar_style_batch,
    "conditional": _conditional_batch,
}


def relation_to_table(relation, group_by, agg_names):
    """Normalize a result relation to {group tuple: (agg values...)}."""
    if group_by:
        keys = list(zip(*(relation.column(g).tolist() for g in group_by)))
    else:
        keys = [()] * relation.n_rows
    values = list(
        zip(*(relation.column(a).tolist() for a in agg_names))
    )
    return dict(zip(keys, values))


def assert_results_equal(got, expected, batch, rtol=1e-9, atol=1e-9):
    """Compare two engines' results for an entire batch."""
    for query in batch:
        agg_names = _agg_names(query)
        table_got = relation_to_table(
            got[query.name], query.group_by, agg_names
        )
        table_expected = relation_to_table(
            expected[query.name], query.group_by, agg_names
        )
        assert set(table_got) == set(table_expected), (
            f"{query.name}: group keys differ "
            f"({len(table_got)} vs {len(table_expected)})"
        )
        for group_key, expected_values in table_expected.items():
            got_values = table_got[group_key]
            assert np.allclose(
                got_values, expected_values, rtol=rtol, atol=atol
            ), (
                f"{query.name}{group_key}: {got_values} != "
                f"{expected_values}"
            )


def _agg_names(query):
    names = []
    used = {}
    for aggregate in query.aggregates:
        name = aggregate.name or "agg"
        if name in used:
            used[name] += 1
            name = f"{name}_{used[name]}"
        else:
            used[name] = 0
        names.append(name)
    return names
