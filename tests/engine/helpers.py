"""Shared helpers for engine tests: result comparison utilities."""

import numpy as np


def relation_to_table(relation, group_by, agg_names):
    """Normalize a result relation to {group tuple: (agg values...)}."""
    if group_by:
        keys = list(zip(*(relation.column(g).tolist() for g in group_by)))
    else:
        keys = [()] * relation.n_rows
    values = list(
        zip(*(relation.column(a).tolist() for a in agg_names))
    )
    return dict(zip(keys, values))


def assert_results_equal(got, expected, batch, rtol=1e-9, atol=1e-9):
    """Compare two engines' results for an entire batch."""
    for query in batch:
        agg_names = _agg_names(query)
        table_got = relation_to_table(
            got[query.name], query.group_by, agg_names
        )
        table_expected = relation_to_table(
            expected[query.name], query.group_by, agg_names
        )
        assert set(table_got) == set(table_expected), (
            f"{query.name}: group keys differ "
            f"({len(table_got)} vs {len(table_expected)})"
        )
        for group_key, expected_values in table_expected.items():
            got_values = table_got[group_key]
            assert np.allclose(
                got_values, expected_values, rtol=rtol, atol=atol
            ), (
                f"{query.name}{group_key}: {got_values} != "
                f"{expected_values}"
            )


def _agg_names(query):
    names = []
    used = {}
    for aggregate in query.aggregates:
        name = aggregate.name or "agg"
        if name in used:
            used[name] += 1
            name = f"{name}_{used[name]}"
        else:
            used[name] = 0
        names.append(name)
    return names
