"""Step-by-step codegen: each IR step renders to code that matches the
interpreter's semantics exactly."""

import numpy as np
import pytest

from repro.data import ops
from repro.engine.codegen import _render_gather, _render_group_sum, _render_step
from repro.engine.plan import (
    EmitStep,
    FactorStep,
    Gather,
    GroupKeyStep,
    GroupSumStep,
    IndexStep,
    JoinStep,
    MulStep,
    ScalarViewStep,
)
from repro.query.functions import Delta, Identity


def run_lines(lines, env):
    namespace = {"np": np, "ops": ops, "out": {}}
    namespace.update(env)
    exec("\n".join(lines), namespace)
    return namespace


class TestGatherRendering:
    def test_relation_column_direct(self):
        step = Gather("c1", ("rel", "price"), None)
        env = run_lines([_render_gather(step)], {"rel_cols": {"price": np.array([1.0, 2.0])}})
        assert env["c1"].tolist() == [1.0, 2.0]

    def test_relation_column_indexed(self):
        step = Gather("c1", ("rel", "price"), "ix")
        env = run_lines(
            [_render_gather(step)],
            {
                "rel_cols": {"price": np.array([1.0, 2.0, 3.0])},
                "ix": np.array([2, 0]),
            },
        )
        assert env["c1"].tolist() == [3.0, 1.0]

    def test_view_key_column(self):
        step = Gather("k1", ("viewkey", 7, 0), None)
        env = run_lines(
            [_render_gather(step)], {"key_cols": {7: [np.array([5, 6])]}}
        )
        assert env["k1"].tolist() == [5, 6]

    def test_view_agg_column_indexed(self):
        step = Gather("a1", ("viewagg", 3, 1), "ri")
        env = run_lines(
            [_render_gather(step)],
            {
                "agg_cols": {3: [np.zeros(2), np.array([1.5, 2.5])]},
                "ri": np.array([1, 1, 0]),
            },
        )
        assert env["a1"].tolist() == [2.5, 2.5, 1.5]


class TestJoinAndIndexRendering:
    def test_join_step(self):
        step = JoinStep("li", "ri", ("lk",), ("rk",))
        env = run_lines(
            _render_step(step),
            {"lk": np.array([1, 2, 2]), "rk": np.array([2, 3])},
        )
        assert (env["lk"][env["li"]] == env["rk"][env["ri"]]).all()
        assert len(env["li"]) == 2

    def test_index_step(self):
        step = IndexStep("out", "arr", "idx")
        env = run_lines(
            _render_step(step),
            {"arr": np.array([10, 20, 30]), "idx": np.array([2, 2])},
        )
        assert env["out"].tolist() == [30, 30]


class TestFactorRendering:
    def test_static_inline(self):
        step = FactorStep(
            "f1", Delta("x", "<=", 2.0), (("x", "cx"),), None
        )
        env = run_lines(
            _render_step(step), {"cx": np.array([1.0, 3.0])}
        )
        assert env["f1"].tolist() == [1.0, 0.0]

    def test_dynamic_through_table(self):
        function = Delta("x", ">", 1.5, dynamic=True)
        step = FactorStep("f1", function, (("x", "cx"),), 0)
        env = run_lines(
            _render_step(step),
            {"cx": np.array([1.0, 3.0]), "dyn": [function]},
        )
        assert env["f1"].tolist() == [0.0, 1.0]

    def test_mul(self):
        step = MulStep("p", "a", "b")
        env = run_lines(
            _render_step(step),
            {"a": np.array([2.0, 3.0]), "b": np.array([4.0, 5.0])},
        )
        assert env["p"].tolist() == [8.0, 15.0]


class TestGroupSumRendering:
    def test_grouped_sum(self):
        key_step = GroupKeyStep("codes", "keys", ("g",))
        sum_step = GroupSumStep(
            "agg", "codes", "keys", "vals", None, 1.0, ()
        )
        env = run_lines(
            _render_step(key_step) + _render_group_sum(sum_step),
            {
                "g": np.array([1, 0, 1]),
                "vals": np.array([5.0, 7.0, 2.0]),
            },
        )
        assert env["agg"].tolist() == [7.0, 7.0]

    def test_grouped_count_with_coefficient(self):
        key_step = GroupKeyStep("codes", "keys", ("g",))
        sum_step = GroupSumStep(
            "agg", "codes", "keys", None, None, 3.0, ()
        )
        env = run_lines(
            _render_step(key_step) + _render_group_sum(sum_step),
            {"g": np.array([0, 0, 1])},
        )
        assert env["agg"].tolist() == [6.0, 3.0]

    def test_scalar_sum_with_scalar_views(self):
        sum_step = GroupSumStep(
            "agg", None, None, "vals", "li", 2.0, ("s1",)
        )
        env = run_lines(
            _render_group_sum(sum_step),
            {"vals": np.array([1.0, 2.0]), "li": np.zeros(2), "s1": 10.0},
        )
        assert env["agg"].tolist() == [60.0]

    def test_scalar_count_from_relation_length(self):
        sum_step = GroupSumStep("agg", None, None, None, "_n_rel", 1.0, ())
        env = run_lines(_render_group_sum(sum_step), {"n_rel": 42})
        assert env["agg"].tolist() == [42.0]

    def test_scalar_view_step(self):
        step = ScalarViewStep("s1", 4, 0)
        env = run_lines(
            _render_step(step), {"agg_cols": {4: [np.array([9.5])]}}
        )
        assert env["s1"] == 9.5

    def test_emit_step(self):
        step = EmitStep(5, ("g",), "keys", ("agg",))
        env = run_lines(
            _render_step(step),
            {"keys": [np.array([0, 1])], "agg": np.array([1.0, 2.0])},
        )
        assert 5 in env["out"]
        group_by, keys, aggs = env["out"][5]
        assert group_by == ("g",)
        assert aggs[0].tolist() == [1.0, 2.0]
