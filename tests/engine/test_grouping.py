"""Group Views: ranks, groups, dependency DAG, execution levels."""

from repro import Aggregate, Query, QueryBatch
from repro.engine.grouping import group_views
from repro.engine.pushdown import Decomposer
from repro.engine.roots import assign_roots
from repro.jointree.join_tree import join_tree_from_database


def grouped_for(db, batch, group_enabled=True, multi_root=True):
    tree = join_tree_from_database(db)
    roots = assign_roots(batch, tree, db, multi_root=multi_root)
    decomposed = Decomposer(tree).decompose(batch, roots)
    return decomposed, group_views(decomposed, group_enabled=group_enabled)


class TestGrouping:
    def test_groups_cover_all_views(self, toy_db):
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.count()]),
                Query("b", [], [Aggregate.of("units", name="u")]),
            ]
        )
        decomposed, grouped = grouped_for(toy_db, batch)
        grouped_ids = sorted(
            vid for group in grouped.groups for vid in group.view_ids
        )
        assert grouped_ids == sorted(v.id for v in decomposed.views)

    def test_group_views_share_source_node(self, toy_db):
        batch = QueryBatch(
            [Query("a", ["city"], [Aggregate.count()])]
        )
        decomposed, grouped = grouped_for(toy_db, batch)
        for group in grouped.groups:
            for vid in group.view_ids:
                assert decomposed.views[vid].source == group.node

    def test_no_intragroup_dependencies(self, toy_db):
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.of("units", name="u")]),
                Query("b", ["date"], [Aggregate.of("units", name="u")]),
                Query("c", [], [Aggregate.count()]),
            ]
        )
        decomposed, grouped = grouped_for(toy_db, batch)
        reachable = {}

        def deps_of(vid):
            if vid not in reachable:
                direct = set(decomposed.views[vid].referenced_view_ids())
                closure = set(direct)
                for d in direct:
                    closure |= deps_of(d)
                reachable[vid] = closure
            return reachable[vid]

        for group in grouped.groups:
            ids = set(group.view_ids)
            for vid in ids:
                assert not (deps_of(vid) & ids), (
                    f"view {vid} depends on a view in its own group"
                )

    def test_dependency_graph_respects_refs(self, toy_db):
        batch = QueryBatch([Query("a", ["city"], [Aggregate.count()])])
        decomposed, grouped = grouped_for(toy_db, batch)
        for group in grouped.groups:
            for vid in group.view_ids:
                for ref in decomposed.views[vid].referenced_view_ids():
                    dep_group = grouped.group_of[ref]
                    if dep_group != group.id:
                        assert dep_group in group.depends_on

    def test_groups_listed_topologically(self, toy_db):
        """``grouped.groups`` is a valid execution order by itself —
        every dependency appears before its consumer (the contract the
        dataflow scheduler and hand-rolled test loops rely on)."""
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.count()]),
                Query("b", ["price"], [Aggregate.count()]),
            ]
        )
        _, grouped = grouped_for(toy_db, batch)
        position = {
            group.id: index for index, group in enumerate(grouped.groups)
        }
        for group in grouped.groups:
            for dep in group.depends_on:
                assert position[dep] < position[group.id]

    def test_grouping_disabled_gives_singletons(self, toy_db):
        batch = QueryBatch([Query("a", ["city"], [Aggregate.count()])])
        decomposed, grouped = grouped_for(toy_db, batch, group_enabled=False)
        assert grouped.n_groups == decomposed.n_views
        for group in grouped.groups:
            assert len(group.view_ids) == 1

    def test_grouping_reduces_group_count(self, tiny_favorita):
        from repro.ml import CovarBatch

        ds = tiny_favorita
        batch = CovarBatch(["txns"], ["stype", "family"], "units").batch
        decomposed, grouped = grouped_for(ds.database, batch)
        _, ungrouped = grouped_for(ds.database, batch, group_enabled=False)
        assert grouped.n_groups < ungrouped.n_groups
