"""Join-attribute orders and input sorting (paper §3.5)."""

import numpy as np

from repro.engine.attribute_order import (
    attribute_order,
    join_attributes,
    sort_database,
)
from repro.jointree.join_tree import join_tree_from_database


class TestJoinAttributes:
    def test_fact_table_join_attrs(self, toy_db):
        tree = join_tree_from_database(toy_db)
        assert set(join_attributes(tree, "Sales")) == {"date", "store"}

    def test_leaf_join_attrs(self, toy_db):
        tree = join_tree_from_database(toy_db)
        assert join_attributes(tree, "Oil") == ("date",)

    def test_non_join_attrs_excluded(self, toy_db):
        tree = join_tree_from_database(toy_db)
        assert "units" not in join_attributes(tree, "Sales")


class TestAttributeOrder:
    def test_ascending_domain_size(self, toy_db):
        tree = join_tree_from_database(toy_db)
        order = attribute_order(toy_db, tree, "Sales")
        sizes = [toy_db.domain_size("Sales", a) for a in order]
        assert sizes == sorted(sizes)

    def test_store_before_date(self, toy_db):
        # 6 stores < 25 dates
        tree = join_tree_from_database(toy_db)
        assert attribute_order(toy_db, tree, "Sales") == ("store", "date")


class TestSortDatabase:
    def test_relations_sorted_by_order(self, toy_db):
        tree = join_tree_from_database(toy_db)
        sorted_db = sort_database(toy_db, tree)
        sales = sorted_db.relation("Sales")
        order = attribute_order(toy_db, tree, "Sales")
        keys = list(zip(*(sales.column(a).tolist() for a in order)))
        assert keys == sorted(keys)

    def test_row_multiset_preserved(self, toy_db):
        tree = join_tree_from_database(toy_db)
        sorted_db = sort_database(toy_db, tree)
        for name in toy_db.relation_names:
            before = sorted(toy_db.relation(name).to_rows())
            after = sorted(sorted_db.relation(name).to_rows())
            assert before == after
