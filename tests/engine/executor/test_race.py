"""Stress test for the same-level concurrency race the executor fixed.

The old ``LMFAO._execute`` dict-updated a shared ``view_data`` while
same-level futures were still reading it.  The executor publishes
results through the scheduler's completion loop into a locked
:class:`ViewStore`, and workers snapshot their inputs — so a wide batch
run with many threads must match serial execution bit-for-bit, every
time.
"""

import numpy as np

from repro import LMFAO, Aggregate, Query, QueryBatch

from ..helpers import assert_results_equal


def wide_batch():
    """Many independent same-level queries -> a wide group DAG."""
    queries = [Query("total", [], [Aggregate.count()])]
    for i, (group_by, attr) in enumerate(
        [
            (["city"], "units"),
            (["date"], "price"),
            (["store"], "units"),
            (["city", "store"], "units"),
            (["date"], "units"),
            (["store"], "size"),
            (["city"], "size"),
        ]
    ):
        queries.append(
            Query(f"q{i}", group_by, [Aggregate.of(attr, name="a")])
        )
    return QueryBatch(queries)


def test_wide_batch_threaded_matches_serial_repeatedly(toy_db):
    batch = wide_batch()
    serial = LMFAO(toy_db, n_threads=1).run(batch)
    with LMFAO(
        toy_db, n_threads=4, partition_threshold=32
    ) as engine:
        for _ in range(20):
            assert_results_equal(engine.run(batch), serial, batch)


def test_threaded_interpreter_matches_serial_repeatedly(toy_db):
    batch = wide_batch()
    serial = LMFAO(toy_db, compile=False).run(batch)
    with LMFAO(
        toy_db, compile=False, n_threads=4, partition_threshold=32
    ) as engine:
        for _ in range(10):
            assert_results_equal(engine.run(batch), serial, batch)


def test_threaded_run_with_views_retains_everything(toy_db):
    batch = wide_batch()
    with LMFAO(toy_db, n_threads=4) as engine:
        _, plan, store = engine.run_with_views(batch)
    assert set(store) >= {v.id for v in plan.decomposed.views}
    assert not store.evicted
