"""ViewStore: mapping protocol, ref-counted eviction, pinning, merging."""

import numpy as np
import pytest

from repro.engine.executor import ViewStore, merge_partials, retire_dead_keys
from repro.engine.interpreter import ViewData


def scalar_view(value, support=None):
    return ViewData(
        (),
        [],
        [np.array([float(value)])],
        support=None if support is None else np.asarray(support, float),
    )


def grouped_view(keys, values, support=None):
    return ViewData(
        ("g",),
        [np.asarray(keys)],
        [np.asarray(values, dtype=np.float64)],
        support=None if support is None else np.asarray(support, float),
    )


class TestMappingProtocol:
    def test_put_get_contains_len_iter(self):
        store = ViewStore()
        store[3] = scalar_view(1.0)
        store.put(5, scalar_view(2.0))
        assert 3 in store and 5 in store and 4 not in store
        assert len(store) == 2
        assert sorted(store) == [3, 5]
        assert store[5].agg_cols[0].tolist() == [2.0]
        assert dict(store.items()).keys() == {3, 5}
        assert store.get(4) is None

    def test_missing_view_raises_plain_keyerror(self):
        with pytest.raises(KeyError):
            ViewStore()[7]

    def test_views_returns_plain_dict_copy(self):
        store = ViewStore()
        store[1] = scalar_view(1.0)
        views = store.views()
        views[2] = scalar_view(2.0)
        assert 2 not in store


class TestEviction:
    def test_evicts_only_after_last_consumer(self):
        store = ViewStore(consumers={1: 2})
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store, "one of two consumers left — must survive"
        store.group_finished([1])
        assert 1 not in store
        assert store.evicted == {1}

    def test_evicted_keyerror_explains(self):
        store = ViewStore(consumers={1: 1})
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        with pytest.raises(KeyError, match="evicted"):
            store[1]

    def test_pinned_views_survive(self):
        store = ViewStore(consumers={1: 1}, pinned=[1])
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store
        assert store.is_pinned(1)

    def test_pin_after_construction(self):
        store = ViewStore(consumers={1: 1})
        store[1] = scalar_view(1.0)
        store.pin(1)
        store.group_finished([1])
        assert 1 in store

    def test_retain_all_disables_eviction(self):
        store = ViewStore(consumers={1: 1}, retain_all=True)
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store

    def test_views_without_consumer_entry_never_evicted(self):
        store = ViewStore(consumers={1: 1})
        store[2] = scalar_view(2.0)
        store.group_finished([2])  # no refcount entry: a no-op
        assert 2 in store

    def test_snapshot_unaffected_by_later_eviction(self):
        store = ViewStore(consumers={1: 1})
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        snap = store.snapshot([1])
        store.group_finished([1])
        assert 1 not in store
        assert snap[1].agg_cols[0].tolist() == [1.0, 2.0]


class TestMergeParts:
    def test_merge_parts_stores_merged_views(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        store.merge_parts(
            [store.snapshot([1]), {1: grouped_view([1, 2], [10.0, 20.0])}]
        )
        table = dict(
            zip(store[1].key_cols[0].tolist(), store[1].agg_cols[0].tolist())
        )
        assert table == {0: 1.0, 1: 12.0, 2: 20.0}

    def test_merge_parts_retires_dead_keys(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0], support=[1.0, 1.0])
        store.merge_parts(
            [
                store.snapshot([1]),
                {1: grouped_view([1], [-2.0], support=[-1.0])},
            ],
            retire_dead=True,
        )
        assert store[1].key_cols[0].tolist() == [0]
        assert store[1].agg_cols[0].tolist() == [1.0]

    def test_merge_parts_without_retire_keeps_zero_support_keys(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0], support=[1.0, 1.0])
        store.merge_parts(
            [
                store.snapshot([1]),
                {1: grouped_view([1], [-2.0], support=[-1.0])},
            ],
        )
        assert store[1].key_cols[0].tolist() == [0, 1]


class TestMergePrimitives:
    """merge_partials / retire_dead_keys at their new home."""

    def test_merge_partials_reexported(self):
        from repro.engine.parallel import merge_partials as legacy

        assert legacy is merge_partials

    def test_retire_dead_keys_exact_zero(self):
        view = grouped_view([0, 1, 2], [1.0, 0.0, 3.0],
                            support=[2.0, 0.0, 1.0])
        retired = retire_dead_keys(view)
        assert retired.key_cols[0].tolist() == [0, 2]
        assert retired.agg_cols[0].tolist() == [1.0, 3.0]
        assert retired.support.tolist() == [2.0, 1.0]

    def test_retire_dead_keys_noop_without_support(self):
        view = grouped_view([0, 1], [1.0, 2.0])
        assert retire_dead_keys(view) is view
