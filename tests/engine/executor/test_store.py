"""ViewStore: mapping protocol, ref-counted eviction, pinning, merging."""

import numpy as np
import pytest

from repro.engine.executor import ViewStore, merge_partials, retire_dead_keys
from repro.engine.interpreter import ViewData


def scalar_view(value, support=None):
    return ViewData(
        (),
        [],
        [np.array([float(value)])],
        support=None if support is None else np.asarray(support, float),
    )


def grouped_view(keys, values, support=None):
    return ViewData(
        ("g",),
        [np.asarray(keys)],
        [np.asarray(values, dtype=np.float64)],
        support=None if support is None else np.asarray(support, float),
    )


class TestMappingProtocol:
    def test_put_get_contains_len_iter(self):
        store = ViewStore()
        store[3] = scalar_view(1.0)
        store.put(5, scalar_view(2.0))
        assert 3 in store and 5 in store and 4 not in store
        assert len(store) == 2
        assert sorted(store) == [3, 5]
        assert store[5].agg_cols[0].tolist() == [2.0]
        assert dict(store.items()).keys() == {3, 5}
        assert store.get(4) is None

    def test_missing_view_raises_plain_keyerror(self):
        with pytest.raises(KeyError):
            ViewStore()[7]

    def test_views_returns_plain_dict_copy(self):
        store = ViewStore()
        store[1] = scalar_view(1.0)
        views = store.views()
        views[2] = scalar_view(2.0)
        assert 2 not in store


class TestEviction:
    def test_evicts_only_after_last_consumer(self):
        store = ViewStore(consumers={1: 2})
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store, "one of two consumers left — must survive"
        store.group_finished([1])
        assert 1 not in store
        assert store.evicted == {1}

    def test_evicted_keyerror_explains(self):
        store = ViewStore(consumers={1: 1})
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        with pytest.raises(KeyError, match="evicted"):
            store[1]

    def test_pinned_views_survive(self):
        store = ViewStore(consumers={1: 1}, pinned=[1])
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store
        assert store.is_pinned(1)

    def test_pin_after_construction(self):
        store = ViewStore(consumers={1: 1})
        store[1] = scalar_view(1.0)
        store.pin(1)
        store.group_finished([1])
        assert 1 in store

    def test_retain_all_disables_eviction(self):
        store = ViewStore(consumers={1: 1}, retain_all=True)
        store[1] = scalar_view(1.0)
        store.group_finished([1])
        assert 1 in store

    def test_views_without_consumer_entry_never_evicted(self):
        store = ViewStore(consumers={1: 1})
        store[2] = scalar_view(2.0)
        store.group_finished([2])  # no refcount entry: a no-op
        assert 2 in store

    def test_snapshot_unaffected_by_later_eviction(self):
        store = ViewStore(consumers={1: 1})
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        snap = store.snapshot([1])
        store.group_finished([1])
        assert 1 not in store
        assert snap[1].agg_cols[0].tolist() == [1.0, 2.0]

    def test_two_consumers_pin_same_interior_view(self):
        """Both consumers of one interior view pin it: exhausting the
        ref count must not evict, and a late unpin only takes effect on
        the next consumer-finished notification."""
        store = ViewStore(consumers={1: 2})
        store[1] = scalar_view(7.0)
        store.pin(1)  # consumer A wants it after the batch
        store.pin(1)  # consumer B too (idempotent)
        store.group_finished([1])
        store.group_finished([1])
        assert 1 in store, "pinned view evicted at refcount zero"
        assert store.evicted == set()
        assert store.is_pinned(1)
        store.unpin(1)
        assert 1 in store, "unpin alone must not drop the view"
        store.group_finished([1])  # a straggler consumer finishes
        assert 1 not in store
        assert store.evicted == {1}


class TestEvictionHandoff:
    def test_on_evict_receives_evicted_views(self):
        received = {}
        store = ViewStore(
            consumers={1: 1},
            on_evict=lambda vid, data: received.__setitem__(vid, data),
        )
        store[1] = grouped_view([0, 1], [3.0, 4.0])
        store.group_finished([1])
        assert 1 not in store
        assert received[1].agg_cols[0].tolist() == [3.0, 4.0]

    def test_on_evict_skips_pinned_and_surviving_views(self):
        received = {}
        store = ViewStore(
            consumers={1: 2, 2: 1},
            pinned=[2],
            on_evict=lambda vid, data: received.__setitem__(vid, data),
        )
        store[1] = scalar_view(1.0)
        store[2] = scalar_view(2.0)
        store.group_finished([1, 2])  # 1 has another consumer; 2 pinned
        assert received == {}
        store.group_finished([1])
        assert set(received) == {1}


class TestMergeParts:
    def test_merge_parts_stores_merged_views(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        store.merge_parts(
            [store.snapshot([1]), {1: grouped_view([1, 2], [10.0, 20.0])}]
        )
        table = dict(
            zip(store[1].key_cols[0].tolist(), store[1].agg_cols[0].tolist())
        )
        assert table == {0: 1.0, 1: 12.0, 2: 20.0}

    def test_merge_parts_retires_dead_keys(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0], support=[1.0, 1.0])
        store.merge_parts(
            [
                store.snapshot([1]),
                {1: grouped_view([1], [-2.0], support=[-1.0])},
            ],
            retire_dead=True,
        )
        assert store[1].key_cols[0].tolist() == [0]
        assert store[1].agg_cols[0].tolist() == [1.0]

    def test_merge_parts_without_retire_keeps_zero_support_keys(self):
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0], support=[1.0, 1.0])
        store.merge_parts(
            [
                store.snapshot([1]),
                {1: grouped_view([1], [-2.0], support=[-1.0])},
            ],
        )
        assert store[1].key_cols[0].tolist() == [0, 1]

    def test_merge_parts_with_empty_delta_partition(self):
        """An empty delta partition (no view entries at all) is a no-op
        merge — the IVM layer skips empty deltas, but the primitive must
        still be safe against them."""
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        merged = store.merge_parts([store.snapshot([1]), {}])
        assert merged[1].key_cols[0].tolist() == [0, 1]
        assert merged[1].agg_cols[0].tolist() == [1.0, 2.0]

    def test_merge_parts_with_zero_row_delta_views(self):
        """A delta partition whose views carry zero rows merges cleanly."""
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0])
        empty = grouped_view(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64)
        )
        merged = store.merge_parts([store.snapshot([1]), {1: empty}])
        assert merged[1].key_cols[0].tolist() == [0, 1]
        assert merged[1].agg_cols[0].tolist() == [1.0, 2.0]

    def test_merge_parts_all_retracted_partition(self):
        """Retracting every contributing row retires every group key:
        the maintained view is empty, exactly like a from-scratch run
        over the emptied relation."""
        store = ViewStore()
        store[1] = grouped_view([0, 1], [1.0, 2.0], support=[1.0, 1.0])
        retract_all = grouped_view(
            [0, 1], [-1.0, -2.0], support=[-1.0, -1.0]
        )
        merged = store.merge_parts(
            [store.snapshot([1]), {1: retract_all}], retire_dead=True
        )
        assert merged[1].key_cols[0].tolist() == []
        assert merged[1].agg_cols[0].tolist() == []
        assert merged[1].support.tolist() == []
        assert store[1].n_rows == 0


class TestMergePrimitives:
    """merge_partials / retire_dead_keys at their executor home."""

    def test_legacy_parallel_module_is_gone(self):
        # the deprecated repro.engine.parallel shim was removed; the
        # one import path for the merge primitive is the executor
        with pytest.raises(ModuleNotFoundError):
            import repro.engine.parallel  # noqa: F401

    def test_retire_dead_keys_exact_zero(self):
        view = grouped_view([0, 1, 2], [1.0, 0.0, 3.0],
                            support=[2.0, 0.0, 1.0])
        retired = retire_dead_keys(view)
        assert retired.key_cols[0].tolist() == [0, 2]
        assert retired.agg_cols[0].tolist() == [1.0, 3.0]
        assert retired.support.tolist() == [2.0, 1.0]

    def test_retire_dead_keys_noop_without_support(self):
        view = grouped_view([0, 1], [1.0, 2.0])
        assert retire_dead_keys(view) is view
