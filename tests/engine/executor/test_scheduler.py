"""Dataflow scheduler: readiness ordering, diamonds, errors, parallelism."""

import threading
import time

import pytest

from repro.engine.executor import DataflowScheduler

DIAMOND = {"a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"]}


def run_recording(dependencies, n_workers=1, task=None):
    """Run a DAG recording completion order; returns (order, results)."""
    order = []
    scheduler = DataflowScheduler(n_workers=n_workers)
    results = scheduler.run(
        dependencies,
        task or (lambda node: node),
        lambda node, result: order.append(node),
    )
    return order, results


def assert_topological(order, dependencies):
    position = {node: i for i, node in enumerate(order)}
    for node, deps in dependencies.items():
        for dep in deps:
            assert position[dep] < position[node], (
                f"{dep!r} must complete before {node!r}; order={order}"
            )


class TestSerial:
    def test_diamond_order(self):
        order, results = run_recording(DIAMOND)
        assert set(order) == set(DIAMOND)
        assert_topological(order, DIAMOND)
        assert order[-1] == "d"
        assert results == {n: n for n in DIAMOND}

    def test_deterministic(self):
        orders = {tuple(run_recording(DIAMOND)[0]) for _ in range(5)}
        assert len(orders) == 1

    def test_chain_and_independent(self):
        deps = {0: [], 1: [0], 2: [1], 3: []}
        order, _ = run_recording(deps)
        assert_topological(order, deps)

    def test_empty_dag(self):
        assert DataflowScheduler().run({}, lambda n: n) == {}

    def test_results_returned(self):
        deps = {1: [], 2: [1]}
        results = DataflowScheduler().run(deps, lambda n: n * 10)
        assert results == {1: 10, 2: 20}

    def test_on_result_called_before_dependents_start(self):
        published = set()

        def task(node):
            for dep in DIAMOND[node]:
                assert dep in published, (
                    f"{node} started before {dep} was published"
                )
            return node

        DataflowScheduler().run(
            DIAMOND, task, lambda node, result: published.add(node)
        )
        assert published == set(DIAMOND)


class TestErrors:
    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_cycle_detected(self, n_workers):
        with pytest.raises(ValueError, match="cycle"):
            DataflowScheduler(n_workers=n_workers).run(
                {"a": ["b"], "b": ["a"], "c": []}, lambda n: n
            )

    def test_unknown_dependency(self):
        with pytest.raises(ValueError, match="unknown"):
            DataflowScheduler().run({"a": ["ghost"]}, lambda n: n)

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_task_error_propagates(self, n_workers):
        def task(node):
            if node == "b":
                raise RuntimeError("boom")
            return node

        with pytest.raises(RuntimeError, match="boom"):
            DataflowScheduler(n_workers=n_workers).run(
                {"a": [], "b": ["a"], "c": ["b"]}, task
            )


class TestParallel:
    def test_diamond_order(self):
        order, results = run_recording(DIAMOND, n_workers=4)
        assert_topological(order, DIAMOND)
        assert results == {n: n for n in DIAMOND}

    def test_no_level_barrier(self):
        """A deep chain must not wait for a slow sibling at level 0.

        Under the old level schedule, c2 (level 2) could never start
        before `slow` (level 0) finished.  The dataflow scheduler lets
        the chain run through while `slow` is still executing.
        """
        deps = {"slow": [], "c0": [], "c1": ["c0"], "c2": ["c1"]}
        finished = {}
        release = threading.Event()

        def task(node):
            if node == "slow":
                release.wait(timeout=10)
            finished[node] = time.perf_counter()
            return node

        def on_result(node, _):
            if node == "c2":
                release.set()  # only unblock `slow` once the chain is done

        DataflowScheduler(n_workers=2).run(deps, task, on_result)
        assert finished["c2"] < finished["slow"]

    def test_independent_nodes_overlap(self):
        running = []
        peak = []
        lock = threading.Lock()
        barrier = threading.Barrier(3, timeout=10)

        def task(node):
            with lock:
                running.append(node)
                peak.append(len(running))
            barrier.wait()  # all three must be in flight at once
            with lock:
                running.remove(node)
            return node

        DataflowScheduler(n_workers=3).run(
            {"a": [], "b": [], "c": []}, task
        )
        assert max(peak) == 3

    def test_wide_dag_many_workers(self):
        deps = {i: [] for i in range(20)}
        deps.update({100 + i: [i, (i + 1) % 20] for i in range(20)})
        order, results = run_recording(deps, n_workers=8)
        assert len(results) == 40
        assert_topological(order, deps)
