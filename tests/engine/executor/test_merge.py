"""The distributive-SUM merge primitive and threaded domain parallelism.

Moved from ``tests/engine/test_parallel.py`` when the deprecated
``repro.engine.parallel`` shim was removed; :func:`merge_partials` lives
in :mod:`repro.engine.executor.store`.
"""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch
from repro.baselines import MaterializedEngine
from repro.engine.executor import merge_partials
from repro.engine.interpreter import ViewData

from ..helpers import assert_results_equal


class TestMergePartials:
    def test_scalar_views_add(self):
        part1 = {0: ViewData((), [], [np.array([2.0]), np.array([5.0])])}
        part2 = {0: ViewData((), [], [np.array([3.0]), np.array([-1.0])])}
        merged = merge_partials([part1, part2])
        assert merged[0].agg_cols[0].tolist() == [5.0]
        assert merged[0].agg_cols[1].tolist() == [4.0]

    def test_grouped_views_reaggregate(self):
        part1 = {
            1: ViewData(
                ("g",), [np.array([0, 1])], [np.array([1.0, 2.0])]
            )
        }
        part2 = {
            1: ViewData(
                ("g",), [np.array([1, 2])], [np.array([10.0, 20.0])]
            )
        }
        merged = merge_partials([part1, part2])
        table = dict(
            zip(merged[1].key_cols[0].tolist(), merged[1].agg_cols[0].tolist())
        )
        assert table == {0: 1.0, 1: 12.0, 2: 20.0}

    def test_view_missing_from_one_partition(self):
        part1 = {0: ViewData((), [], [np.array([1.0])])}
        part2 = {}
        merged = merge_partials([part1, part2])
        assert merged[0].agg_cols[0].tolist() == [1.0]

    def test_merged_keys_sorted(self):
        part1 = {1: ViewData(("g",), [np.array([5, 1])], [np.array([1.0, 1.0])])}
        part2 = {1: ViewData(("g",), [np.array([3])], [np.array([1.0])])}
        merged = merge_partials([part1, part2])
        assert merged[1].key_cols[0].tolist() == [1, 3, 5]


class TestMergePartialsEdgeCases:
    """The merge primitive IVM relies on: degenerate partition shapes."""

    def test_no_partitions(self):
        assert merge_partials([]) == {}

    def test_all_partitions_empty(self):
        assert merge_partials([{}, {}, {}]) == {}

    def test_single_partition_grouped_reaggregates_to_itself(self):
        part = {
            2: ViewData(
                ("g",), [np.array([1, 4])], [np.array([3.0, 9.0])]
            )
        }
        merged = merge_partials([part])
        assert merged[2].key_cols[0].tolist() == [1, 4]
        assert merged[2].agg_cols[0].tolist() == [3.0, 9.0]

    def test_single_partition_scalar(self):
        part = {0: ViewData((), [], [np.array([4.5])])}
        merged = merge_partials([part])
        assert merged[0].agg_cols[0].tolist() == [4.5]

    def test_disjoint_group_keys_concatenate(self):
        part1 = {1: ViewData(("g",), [np.array([0, 1])], [np.array([1.0, 2.0])])}
        part2 = {1: ViewData(("g",), [np.array([5, 9])], [np.array([3.0, 4.0])])}
        merged = merge_partials([part1, part2])
        assert merged[1].key_cols[0].tolist() == [0, 1, 5, 9]
        assert merged[1].agg_cols[0].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_fully_overlapping_group_keys_sum(self):
        part1 = {1: ViewData(("g",), [np.array([0, 1])], [np.array([1.0, 2.0])])}
        part2 = {1: ViewData(("g",), [np.array([0, 1])], [np.array([10.0, 20.0])])}
        merged = merge_partials([part1, part2])
        assert merged[1].key_cols[0].tolist() == [0, 1]
        assert merged[1].agg_cols[0].tolist() == [11.0, 22.0]

    def test_composite_keys_align_by_tuple(self):
        part1 = {
            1: ViewData(
                ("a", "b"),
                [np.array([0, 0]), np.array([0, 1])],
                [np.array([1.0, 2.0])],
            )
        }
        part2 = {
            1: ViewData(
                ("a", "b"),
                [np.array([0, 1]), np.array([1, 0])],
                [np.array([5.0, 7.0])],
            )
        }
        merged = merge_partials([part1, part2])
        table = dict(
            zip(
                zip(
                    merged[1].key_cols[0].tolist(),
                    merged[1].key_cols[1].tolist(),
                ),
                merged[1].agg_cols[0].tolist(),
            )
        )
        assert table == {(0, 0): 1.0, (0, 1): 7.0, (1, 0): 7.0}

    def test_support_merges_like_a_sum_column(self):
        part1 = {
            1: ViewData(
                ("g",),
                [np.array([0, 1])],
                [np.array([1.0, 2.0])],
                support=np.array([2.0, 1.0]),
            )
        }
        part2 = {
            1: ViewData(
                ("g",),
                [np.array([1])],
                [np.array([-2.0])],
                support=np.array([-1.0]),
            )
        }
        merged = merge_partials([part1, part2])
        assert merged[1].support.tolist() == [2.0, 0.0]
        assert merged[1].agg_cols[0].tolist() == [1.0, 0.0]

    def test_support_dropped_when_any_piece_lacks_it(self):
        part1 = {
            1: ViewData(
                ("g",),
                [np.array([0])],
                [np.array([1.0])],
                support=np.array([1.0]),
            )
        }
        part2 = {1: ViewData(("g",), [np.array([0])], [np.array([1.0])])}
        merged = merge_partials([part1, part2])
        assert merged[1].support is None
        assert merged[1].agg_cols[0].tolist() == [2.0]


class TestThreadedEngine:
    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_agrees_with_serial(self, toy_db, n_threads):
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["city"], [Aggregate.of("units", name="u")]),
                Query("h", ["date"], [Aggregate.of("price", name="p")]),
            ]
        )
        serial = LMFAO(toy_db, n_threads=1).run(batch)
        threaded = LMFAO(
            toy_db, n_threads=n_threads, partition_threshold=10
        ).run(batch)
        assert_results_equal(threaded, serial, batch)

    def test_partitioned_on_datasets(self, tiny_favorita):
        ds = tiny_favorita
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query(
                    "g", ["family"], [Aggregate.of("units", name="u")]
                ),
            ]
        )
        threaded = LMFAO(
            ds.database, ds.join_tree, n_threads=4, partition_threshold=100
        ).run(batch)
        expected = MaterializedEngine(ds.database).run(batch)
        assert_results_equal(threaded, expected, batch, rtol=1e-8)
