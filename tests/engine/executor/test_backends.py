"""Execution backends: differential equivalence + backend-specific paths."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Query, QueryBatch
from repro.engine.executor import (
    CompiledBackend,
    GroupTask,
    InterpreterBackend,
    ProcessBackend,
    make_backend,
    partition_bounds,
    views_from_raw,
)

from ..helpers import WORKLOADS, assert_results_equal

BACKENDS = ["interpret", "compiled", "process"]


class TestDifferential:
    """All three backends produce identical BatchResults on every workload."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_backends_agree(self, toy_db, workload):
        batch = WORKLOADS[workload]()
        expected = LMFAO(toy_db, compile=False).run(batch)
        for backend in BACKENDS:
            with LMFAO(
                toy_db,
                backend=backend,
                n_threads=2,
                partition_threshold=50,  # force partitioning on 300 rows
            ) as engine:
                got = engine.run(batch)
            assert_results_equal(got, expected, batch)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_on_dataset(self, tiny_favorita, backend):
        ds = tiny_favorita
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["family"], [Aggregate.of("units", name="u")]),
            ]
        )
        expected = LMFAO(ds.database, ds.join_tree).run(batch)
        with LMFAO(
            ds.database,
            ds.join_tree,
            backend=backend,
            n_threads=2,
            partition_threshold=100,
        ) as engine:
            got = engine.run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-8)


class TestMakeBackend:
    def test_default_follows_compile_knob(self):
        assert isinstance(
            make_backend(None, compile_enabled=True), CompiledBackend
        )
        backend = make_backend(None, compile_enabled=False)
        assert isinstance(backend, InterpreterBackend)
        assert not isinstance(backend, CompiledBackend)

    def test_names(self):
        assert make_backend("interpret").name == "interpret"
        assert make_backend("compiled").name == "compiled"
        assert make_backend("process").name == "process"

    def test_instance_passthrough(self):
        backend = InterpreterBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_process_worker_count(self):
        assert make_backend("process", n_threads=3).n_procs == 3

    def test_engine_accepts_backend_instance(self, toy_db):
        batch = WORKLOADS["counts"]()
        engine = LMFAO(toy_db, backend=InterpreterBackend())
        expected = LMFAO(toy_db).run(batch)
        assert_results_equal(engine.run(batch), expected, batch)


class TestCompiledFallback:
    def test_compiled_backend_interprets_uncompiled_plans(self, toy_db):
        # compile=False plans carry no compiled fns; the compiled
        # backend must fall back to interpretation, not crash
        batch = WORKLOADS["groupbys"]()
        engine = LMFAO(toy_db, compile=False, backend=CompiledBackend())
        expected = LMFAO(toy_db, compile=False).run(batch)
        assert_results_equal(engine.run(batch), expected, batch)


class TestProcessBackend:
    def test_small_relations_run_in_process(self, toy_db):
        backend = ProcessBackend(n_procs=2, partition_threshold=10**9)
        engine = LMFAO(toy_db, backend=backend)
        batch = WORKLOADS["counts"]()
        expected = LMFAO(toy_db).run(batch)
        assert_results_equal(engine.run(batch), expected, batch)
        assert backend._pool is None, "threshold not reached: no pool"
        engine.close()

    def test_close_is_idempotent(self, toy_db):
        engine = LMFAO(
            toy_db, backend="process", n_threads=2, partition_threshold=50
        )
        engine.run(WORKLOADS["counts"]())
        engine.close()
        engine.close()

    def test_non_picklable_udf_falls_back_in_process(self, toy_db):
        # closures don't pickle; the process backend must run such
        # groups in-process instead of crashing in the pool
        from repro.query.functions import Udf

        def double(units):
            return 2.0 * units

        batch = QueryBatch(
            [
                Query(
                    "udf_sum",
                    ["city"],
                    [Aggregate.of(Udf(["units"], double, name="dbl"))],
                ),
                Query("n", [], [Aggregate.count()]),
            ]
        )
        expected = LMFAO(toy_db).run(batch)
        with LMFAO(
            toy_db, backend="process", n_threads=2, partition_threshold=50
        ) as engine:
            got = engine.run(batch)
        assert_results_equal(got, expected, batch)

    def test_process_spec_forces_codegen(self, toy_db):
        # the process backend executes generated source, so compile=False
        # must not leave the plan uncompiled
        engine = LMFAO(toy_db, compile=False, backend="process")
        plan = engine.plan(WORKLOADS["counts"]())
        assert all(fn is not None for fn in plan.compiled_fns)


class TestEngineEviction:
    def test_plain_run_evicts_interior_views(self, toy_db):
        engine = LMFAO(toy_db)
        batch = WORKLOADS["groupbys"]()
        plan = engine.plan(batch)
        store = engine.execute(plan, [], retain_interior=False)
        outputs = plan.output_view_ids()
        interior = set(plan.view_consumers()) - outputs
        assert interior, "workload should produce interior views"
        assert store.evicted == interior
        for vid in outputs:
            assert vid in store

    def test_retain_interior_keeps_everything(self, toy_db):
        engine = LMFAO(toy_db)
        batch = WORKLOADS["groupbys"]()
        plan = engine.plan(batch)
        store = engine.execute(plan, [], retain_interior=True)
        assert set(store) == {v.id for v in plan.decomposed.views}
        assert not store.evicted


class TestPartitioning:
    def test_partition_bounds_cover_all_rows(self):
        for n_rows, n_parts in [(10, 3), (2, 5), (0, 4), (100, 1)]:
            bounds = partition_bounds(n_rows, n_parts)
            assert sum(hi - lo for lo, hi in bounds) == n_rows
            assert all(lo < hi for lo, hi in bounds)
            for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
                assert prev_hi == lo

    def test_views_from_raw_three_and_four_tuples(self):
        raw = {
            0: ((), [], [np.array([1.0])]),
            1: (
                ("g",),
                [np.array([0, 1])],
                [np.array([1.0, 2.0])],
                np.array([2.0, 1.0]),
            ),
        }
        views = views_from_raw(raw)
        assert views[0].support is None
        assert views[1].support.tolist() == [2.0, 1.0]
        assert views[1].agg_cols[0].dtype == np.float64
