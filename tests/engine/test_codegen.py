"""The Compilation layer: generated source properties and equivalence."""

import numpy as np

from repro import LMFAO, Aggregate, Delta, Query, QueryBatch, Udf
from repro.baselines import MaterializedEngine

from .helpers import assert_results_equal


def batch_with_everything():
    return QueryBatch(
        [
            Query("count", [], [Aggregate.count()]),
            Query(
                "static_delta",
                ["city"],
                [Aggregate.of(Delta("price", "<=", 50.0), name="d")],
            ),
            Query(
                "dynamic_delta",
                [],
                [
                    Aggregate.of(
                        Delta("units", "<=", 10.0, dynamic=True), name="v"
                    )
                ],
            ),
            Query("grouped", ["store"], [Aggregate.of("units", name="u")]),
        ]
    )


class TestGeneratedSource:
    def test_source_compiles_per_group(self, toy_db):
        engine = LMFAO(toy_db)
        plan = engine.plan(batch_with_everything())
        source = plan.generated_source()
        for group_plan in plan.group_plans:
            assert f"group_fn_{group_plan.group.id}" in source
        compile(source, "<test>", "exec")

    def test_static_functions_inlined(self, toy_db):
        engine = LMFAO(toy_db)
        plan = engine.plan(batch_with_everything())
        source = plan.generated_source()
        assert "<= 50.0" in source  # static delta inlined as expression

    def test_dynamic_functions_called_through_table(self, toy_db):
        engine = LMFAO(toy_db)
        plan = engine.plan(batch_with_everything())
        source = plan.generated_source()
        assert "dyn[0].evaluate(" in source
        assert "<= 10.0" not in source  # dynamic value NOT inlined

    def test_udf_goes_through_dyn_table(self, toy_db):
        f = Udf(["units"], lambda u: u * 2.0, name="double")
        batch = QueryBatch([Query("q", [], [Aggregate.of(f, name="v")])])
        engine = LMFAO(toy_db)
        source = engine.plan(batch).generated_source()
        assert "dyn[0].evaluate(" in source

    def test_shared_products_are_single_assignments(self, toy_db):
        # two aggregates sharing the factor units*price: the product must
        # appear as one local variable, reused
        batch = QueryBatch(
            [
                Query(
                    "q",
                    ["store"],
                    [
                        Aggregate.of("units", "price", name="a1"),
                        Aggregate.of("units", "price", "price", name="a2"),
                    ],
                )
            ]
        )
        engine = LMFAO(toy_db)
        plan = engine.plan(batch)
        # within each group function, every variable is assigned exactly
        # once (SSA style); variable names restart per function
        from repro.engine import codegen

        for group_plan in plan.group_plans:
            source = codegen.render_source(group_plan)
            assignments = [
                line.strip().split(" = ")[0]
                for line in source.splitlines()
                if " = " in line and not line.strip().startswith("#")
            ]
            single_assign = [
                a for a in assignments if "," not in a and a != "out"
            ]
            assert len(single_assign) == len(set(single_assign))

    def test_describe_is_readable(self, toy_db):
        engine = LMFAO(toy_db)
        plan = engine.plan(batch_with_everything())
        text = plan.describe()
        assert "group" in text and "@" in text


class TestEquivalence:
    def test_compiled_equals_interpreted(self, toy_db):
        batch = batch_with_everything()
        compiled = LMFAO(toy_db, compile=True).run(batch)
        interpreted = LMFAO(toy_db, compile=False).run(batch)
        assert_results_equal(compiled, interpreted, batch)

    def test_compiled_equals_materialized_on_datasets(self, tiny_yelp):
        ds = tiny_yelp
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query(
                    "g",
                    ["category"],
                    [Aggregate.of("stars", name="s")],
                ),
            ]
        )
        got = LMFAO(ds.database, ds.join_tree, compile=True).run(batch)
        expected = MaterializedEngine(ds.database).run(batch)
        assert_results_equal(got, expected, batch)

    def test_recompilation_not_needed_for_dynamic_change(self, toy_db):
        engine = LMFAO(toy_db)

        def make(threshold):
            return QueryBatch(
                [
                    Query(
                        "q",
                        [],
                        [
                            Aggregate.of(
                                Delta("units", "<=", threshold, dynamic=True),
                                name="v",
                            )
                        ],
                    )
                ]
            )

        plan_a = engine.plan(make(5.0))
        plan_b = engine.plan(make(15.0))
        assert plan_a is plan_b  # same compiled code object reused
        r5 = engine.run(make(5.0))["q"].column("v")[0]
        r15 = engine.run(make(15.0))["q"].column("v")[0]
        assert r5 < r15
