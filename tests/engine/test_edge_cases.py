"""Edge cases and failure injection for the engine."""

import numpy as np
import pytest

from repro import (
    LMFAO,
    Aggregate,
    Database,
    Delta,
    Product,
    Query,
    QueryBatch,
    Relation,
)
from repro.baselines import MaterializedEngine
from repro.data.schema import Schema, categorical, continuous, key

from .helpers import assert_results_equal


def single_relation_db():
    rng = np.random.default_rng(9)
    rel = Relation(
        "Only",
        Schema([key("k"), categorical("c"), continuous("x")]),
        {
            "k": np.arange(50),
            "c": rng.integers(0, 3, 50),
            "x": rng.normal(0, 1, 50),
        },
    )
    return Database([rel])


class TestDegenerateShapes:
    def test_single_relation_database(self):
        db = single_relation_db()
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["c"], [Aggregate.of("x", name="sx")]),
            ]
        )
        got = LMFAO(db).run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_single_row_relations(self):
        left = Relation(
            "L",
            Schema([key("k"), continuous("x")]),
            {"k": np.array([1]), "x": np.array([2.0])},
        )
        right = Relation(
            "R",
            Schema([key("k"), continuous("y")]),
            {"k": np.array([1]), "y": np.array([3.0])},
        )
        db = Database([left, right])
        result = LMFAO(db).run(
            QueryBatch([Query("p", [], [Aggregate.of("x", "y", name="xy")])])
        )
        assert result["p"].column("xy")[0] == 6.0

    def test_all_rows_same_key(self):
        n = 40
        left = Relation(
            "L",
            Schema([key("k"), continuous("x")]),
            {"k": np.zeros(n, dtype=np.int64), "x": np.ones(n)},
        )
        right = Relation(
            "R",
            Schema([key("k")]),
            {"k": np.zeros(n, dtype=np.int64)},
        )
        db = Database([left, right])
        result = LMFAO(db).run(
            QueryBatch([Query("n", [], [Aggregate.count()])])
        )
        assert result["n"].column("count")[0] == n * n  # full fan-out

    def test_empty_join_result(self):
        left = Relation(
            "L",
            Schema([key("k")]),
            {"k": np.array([1, 2])},
        )
        right = Relation(
            "R",
            Schema([key("k")]),
            {"k": np.array([3, 4])},
        )
        db = Database([left, right])
        batch = QueryBatch(
            [
                Query("n", [], [Aggregate.count()]),
                Query("g", ["k"], [Aggregate.count(name="n")]),
            ]
        )
        result = LMFAO(db).run(batch)
        assert result["n"].column("count")[0] == 0.0
        assert result["g"].n_rows == 0

    def test_deep_chain(self):
        rng = np.random.default_rng(5)
        relations = []
        # keep the chain's fan-out moderate: 30 rows over domain 10 grows
        # the join to ~tens of thousands of rows, not millions
        for i in range(6):
            relations.append(
                Relation(
                    f"C{i}",
                    Schema([key(f"a{i}"), key(f"a{i+1}")]),
                    {
                        f"a{i}": rng.integers(0, 10, 30),
                        f"a{i+1}": rng.integers(0, 10, 30),
                    },
                )
            )
        db = Database(relations)
        batch = QueryBatch(
            [
                Query("ends", ["a0", "a6"], [Aggregate.count(name="n")]),
                Query("mid", ["a3"], [Aggregate.count(name="n")]),
            ]
        )
        got = LMFAO(db).run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch)


class TestAggregateEdgeCases:
    def test_zero_coefficient_term(self, toy_db):
        agg = Aggregate([Product(["units"], coefficient=0.0)], name="z")
        result = LMFAO(toy_db).run(QueryBatch([Query("q", [], [agg])]))
        assert result["q"].column("z")[0] == 0.0

    def test_negative_coefficients(self, toy_db):
        agg = Aggregate(
            [
                Product(["units"], coefficient=1.0),
                Product(["units"], coefficient=-1.0),
            ],
            name="cancel",
        )
        result = LMFAO(toy_db).run(QueryBatch([Query("q", [], [agg])]))
        assert np.isclose(result["q"].column("cancel")[0], 0.0, atol=1e-9)

    def test_repeated_identical_aggregates(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "q",
                    ["city"],
                    [Aggregate.of("units", name="u") for _ in range(4)],
                )
            ]
        )
        result = LMFAO(toy_db).run(batch)
        base = result["q"].column("u")
        for suffix in ("u_1", "u_2", "u_3"):
            assert np.allclose(result["q"].column(suffix), base)

    def test_delta_never_true(self, toy_db):
        agg = Aggregate.of(Delta("units", ">", 1e12), name="none")
        result = LMFAO(toy_db).run(QueryBatch([Query("q", [], [agg])]))
        assert result["q"].column("none")[0] == 0.0

    def test_high_power(self, toy_db):
        from repro.query.functions import Power

        agg = Aggregate.of(Power("price", 5), name="p5")
        got = LMFAO(toy_db).run(QueryBatch([Query("q", [], [agg])]))
        flat = MaterializedEngine(toy_db).materialize()
        expected = (flat.column("price") ** 5).sum()
        assert np.isclose(got["q"].column("p5")[0], expected, rtol=1e-12)

    def test_large_batch_of_queries(self, toy_db):
        batch = QueryBatch(
            [
                Query(f"q{i}", ["city"], [Aggregate.of("units", name="u")])
                for i in range(100)
            ]
            + [Query("n", [], [Aggregate.count()])]
        )
        engine = LMFAO(toy_db)
        result = engine.run(batch)
        assert len(result) == 101
        # merging collapses the 100 identical queries to one output column
        stats = engine.plan(batch).statistics
        assert stats.n_views < 10


class TestGroupByEdgeCases:
    def test_group_by_join_key(self, toy_db):
        batch = QueryBatch(
            [Query("g", ["store"], [Aggregate.of("units", name="u")])]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_group_by_all_attrs_of_a_dimension(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "g",
                    ["store", "city", "size"],
                    [Aggregate.count(name="n")],
                )
            ]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)

    def test_group_by_attrs_from_three_relations(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "g",
                    ["city", "date", "price"],
                    [Aggregate.of("units", name="u")],
                )
            ]
        )
        got = LMFAO(toy_db).run(batch)
        expected = MaterializedEngine(toy_db).run(batch)
        assert_results_equal(got, expected, batch)


class TestNumericalRobustness:
    def test_large_values_no_overflow(self):
        left = Relation(
            "L",
            Schema([key("k"), continuous("x")]),
            {"k": np.arange(100), "x": np.full(100, 1e12)},
        )
        right = Relation(
            "R",
            Schema([key("k")]),
            {"k": np.arange(100)},
        )
        db = Database([left, right])
        result = LMFAO(db).run(
            QueryBatch([Query("s", [], [Aggregate.of("x", "x", name="xx")])])
        )
        assert np.isclose(result["s"].column("xx")[0], 100 * 1e24)

    def test_many_distinct_keys(self):
        n = 5_000
        left = Relation(
            "L",
            Schema([key("k"), continuous("x")]),
            {"k": np.arange(n), "x": np.ones(n)},
        )
        right = Relation(
            "R",
            Schema([key("k")]),
            {"k": np.arange(n)},
        )
        db = Database([left, right])
        result = LMFAO(db).run(
            QueryBatch([Query("g", ["k"], [Aggregate.count(name="n")])])
        )
        assert result["g"].n_rows == n
        assert (result["g"].column("n") == 1.0).all()
