"""Property-based differential tests: random batches over random data.

The core invariant: for any acyclic database and any aggregate batch, all
engine configurations and the materialized-join baseline agree tuple-for-
tuple.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LMFAO,
    Aggregate,
    Database,
    Delta,
    Identity,
    Power,
    Product,
    Query,
    QueryBatch,
    Relation,
)
from repro.baselines import MaterializedEngine
from repro.data.schema import Schema, continuous, key

from .helpers import assert_results_equal

ATTRS = {
    "Sales": ["date", "store", "units"],
    "Stores": ["store", "size"],
    "Oil": ["date", "price"],
}
NUMERIC = ["units", "size", "price"]
GROUPABLE = ["date", "store"]


@st.composite
def databases(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_sales = draw(st.integers(1, 80))
    n_stores = draw(st.integers(1, 6))
    n_dates = draw(st.integers(1, 8))
    sales = Relation(
        "Sales",
        Schema([key("date"), key("store"), continuous("units")]),
        {
            "date": rng.integers(0, n_dates, n_sales),
            "store": rng.integers(0, n_stores, n_sales),
            "units": np.round(rng.normal(5, 2, n_sales), 2),
        },
    )
    # dimension tables may be partial (dangling fact rows!)
    store_keys = rng.choice(
        n_stores, size=max(1, n_stores - draw(st.integers(0, 1))), replace=False
    )
    stores = Relation(
        "Stores",
        Schema([key("store"), continuous("size")]),
        {
            "store": store_keys,
            "size": np.round(rng.normal(10, 3, len(store_keys)), 2),
        },
    )
    date_keys = rng.choice(
        n_dates, size=max(1, n_dates - draw(st.integers(0, 1))), replace=False
    )
    oil = Relation(
        "Oil",
        Schema([key("date"), continuous("price")]),
        {
            "date": date_keys,
            "price": np.round(rng.normal(50, 5, len(date_keys)), 2),
        },
    )
    return Database([sales, stores, oil], name=f"prop{seed}")


@st.composite
def factors(draw):
    kind = draw(st.sampled_from(["identity", "power", "delta"]))
    attr = draw(st.sampled_from(NUMERIC))
    if kind == "identity":
        return Identity(attr)
    if kind == "power":
        return Power(attr, draw(st.integers(1, 3)))
    op = draw(st.sampled_from(["<=", ">", "=="]))
    value = draw(
        st.floats(-10, 60, allow_nan=False, allow_infinity=False)
    )
    return Delta(attr, op, value)


@st.composite
def aggregates(draw, index):
    n_terms = draw(st.integers(1, 2))
    terms = []
    for _ in range(n_terms):
        n_factors = draw(st.integers(0, 3))
        coefficient = draw(
            st.floats(-3, 3, allow_nan=False, allow_infinity=False)
        )
        terms.append(
            Product([draw(factors()) for _ in range(n_factors)], coefficient)
        )
    return Aggregate(terms, name=f"agg{index}")


@st.composite
def batches(draw):
    n_queries = draw(st.integers(1, 4))
    queries = []
    for qi in range(n_queries):
        group_by = draw(
            st.lists(st.sampled_from(GROUPABLE), unique=True, max_size=2)
        )
        n_aggs = draw(st.integers(1, 3))
        aggs = [draw(aggregates(i)) for i in range(n_aggs)]
        queries.append(Query(f"q{qi}", group_by, aggs))
    return QueryBatch(queries)


class TestDifferentialProperty:
    @given(databases(), batches())
    @settings(max_examples=40, deadline=None)
    def test_compiled_matches_materialized(self, db, batch):
        got = LMFAO(db).run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-7, atol=1e-7)

    @given(databases(), batches())
    @settings(max_examples=20, deadline=None)
    def test_interpreted_matches_materialized(self, db, batch):
        got = LMFAO(db, compile=False).run(batch)
        expected = MaterializedEngine(db).run(batch)
        assert_results_equal(got, expected, batch, rtol=1e-7, atol=1e-7)

    @given(databases(), batches())
    @settings(max_examples=20, deadline=None)
    def test_single_root_matches_multi_root(self, db, batch):
        multi = LMFAO(db, multi_root=True).run(batch)
        single = LMFAO(db, multi_root=False).run(batch)
        assert_results_equal(multi, single, batch, rtol=1e-7, atol=1e-7)

    @given(databases(), batches())
    @settings(max_examples=20, deadline=None)
    def test_merge_modes_agree(self, db, batch):
        full = LMFAO(db, merge_mode="full").run(batch)
        none = LMFAO(db, merge_mode="none").run(batch)
        assert_results_equal(full, none, batch, rtol=1e-7, atol=1e-7)
