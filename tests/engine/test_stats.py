"""Plan statistics (Table 2's A / I / V / G)."""

from repro import LMFAO, Aggregate, Query, QueryBatch


class TestStatistics:
    def test_application_aggregate_count(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch(
            [
                Query("a", [], [Aggregate.count(), Aggregate.of("units")]),
                Query("b", ["city"], [Aggregate.count()]),
            ]
        )
        stats = engine.plan(batch).statistics
        assert stats.n_application_aggregates == 3
        assert stats.n_queries == 2

    def test_intermediates_nonnegative(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch([Query("n", [], [Aggregate.count()])])
        stats = engine.plan(batch).statistics
        assert stats.n_intermediate_aggregates >= 0
        assert stats.n_total_aggregates >= stats.n_application_aggregates

    def test_views_per_node_sums_to_views(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch(
            [
                Query("a", ["city"], [Aggregate.count()]),
                Query("b", ["date"], [Aggregate.count()]),
            ]
        )
        stats = engine.plan(batch).statistics
        assert sum(stats.views_per_node.values()) == stats.n_views

    def test_groups_at_most_views(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch(
            [Query("a", ["city"], [Aggregate.of("units", name="u")])]
        )
        stats = engine.plan(batch).statistics
        assert 1 <= stats.n_groups <= stats.n_views

    def test_roots_recorded(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch([Query("a", ["city"], [Aggregate.count()])])
        stats = engine.plan(batch).statistics
        assert stats.roots == {"a": "Stores"}

    def test_table2_row_format(self, toy_db):
        engine = LMFAO(toy_db)
        batch = QueryBatch([Query("a", [], [Aggregate.count()])])
        row = engine.plan(batch).statistics.table2_row()
        assert "A+I" in row and "V:" in row and "G:" in row

    def test_merging_reduces_view_statistic(self, tiny_favorita):
        from repro.ml import CovarBatch

        ds = tiny_favorita
        batch = CovarBatch(
            ["txns", "price"], ["stype", "family"], "units"
        ).batch
        full = LMFAO(ds.database, ds.join_tree, merge_mode="full")
        none = LMFAO(ds.database, ds.join_tree, merge_mode="none")
        assert (
            full.plan(batch).statistics.n_views
            < none.plan(batch).statistics.n_views
        )
