"""ViewCache mechanics: LRU byte budget, stats, pinning, invalidation."""

import numpy as np
import pytest

from repro.engine.interpreter import ViewData
from repro.engine.viewcache.cache import ViewCache, view_nbytes
from repro.engine.viewcache.signature import ViewSignature


def view(n_rows=4, value=1.0):
    return ViewData(
        ("g",),
        [np.arange(n_rows)],
        [np.full(n_rows, float(value))],
    )


def sig(digest, relations=("R",), cacheable=True):
    return ViewSignature(
        digest=digest,
        relations=frozenset(relations),
        cacheable=cacheable,
    )


class TestGetPut:
    def test_miss_then_hit(self):
        cache = ViewCache()
        assert cache.get("a") is None
        assert cache.put(sig("a"), view())
        got = cache.get("a")
        assert got is not None and got.agg_cols[0][0] == 1.0
        assert cache.stats().hits == 1
        assert cache.stats().misses == 1
        assert cache.stats().puts == 1

    def test_uncacheable_signature_rejected(self):
        cache = ViewCache()
        assert not cache.put(sig("a", cacheable=False), view())
        assert "a" not in cache

    def test_oversized_view_rejected(self):
        small = ViewCache(budget_bytes=64)
        assert not small.put(sig("a"), view(n_rows=1000))
        assert small.stats().rejects == 1
        assert len(small) == 0

    def test_peek_does_not_touch_stats(self):
        cache = ViewCache()
        cache.put(sig("a"), view())
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert cache.stats().hits == 0 and cache.stats().misses == 0


class TestLruBudget:
    def test_lru_evicts_oldest_first(self):
        one = view_nbytes(view())
        cache = ViewCache(budget_bytes=2 * one)
        cache.put(sig("a"), view())
        cache.put(sig("b"), view())
        cache.get("a")  # a is now most recently used
        cache.put(sig("c"), view())
        assert "b" not in cache, "LRU victim should be b"
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_total_bytes_tracks_contents(self):
        cache = ViewCache()
        cache.put(sig("a"), view(n_rows=8))
        cache.put(sig("b"), view(n_rows=8))
        assert cache.total_bytes == 2 * view_nbytes(view(n_rows=8))
        cache.invalidate("R")
        assert cache.total_bytes == 0

    def test_overwrite_same_digest_replaces_bytes(self):
        cache = ViewCache()
        cache.put(sig("a"), view(n_rows=4))
        cache.put(sig("a"), view(n_rows=16))
        assert len(cache) == 1
        assert cache.total_bytes == view_nbytes(view(n_rows=16))


class TestPinning:
    def test_pinned_entries_survive_budget_pressure(self):
        one = view_nbytes(view())
        cache = ViewCache(budget_bytes=2 * one)
        cache.put(sig("a"), view())
        cache.pin("a")
        cache.put(sig("b"), view())
        cache.put(sig("c"), view())
        assert "a" in cache, "pinned entry evicted under pressure"
        assert "b" not in cache

    def test_unpin_makes_evictable_again(self):
        one = view_nbytes(view())
        cache = ViewCache(budget_bytes=2 * one)
        cache.put(sig("a"), view())
        cache.pin("a")
        cache.put(sig("b"), view())
        cache.unpin("a")
        cache.put(sig("c"), view())  # pressure: LRU unpinned is now a
        assert "a" not in cache
        assert "b" in cache and "c" in cache


class TestInvalidate:
    def test_invalidate_by_relation_footprint(self):
        cache = ViewCache()
        cache.put(sig("a", relations=("R", "S")), view())
        cache.put(sig("b", relations=("T",)), view())
        assert cache.invalidate("S") == 1
        assert "a" not in cache and "b" in cache
        assert cache.stats().invalidations == 1

    def test_entries_containing(self):
        cache = ViewCache()
        cache.put(sig("a", relations=("R", "S")), view())
        cache.put(sig("b", relations=("T",)), view())
        assert cache.entries_containing("R") == ["a"]
        assert cache.entries_containing("T") == ["b"]
        assert cache.entries_containing("X") == []

    def test_clear(self):
        cache = ViewCache()
        cache.put(sig("a"), view())
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes == 0


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ViewCache(budget_bytes=0)
