"""Delta-driven cache invalidation: footprint-exact, patch-or-evict.

The acceptance property: after an IVM ``DeltaBatch`` on a relation,
only cached views whose subtree contains that relation are evicted or
delta-patched — everything else keeps its content address — and a
subsequent cache-served run matches a cold recomputation.
"""

import numpy as np
import pytest

from repro import (
    LMFAO,
    Aggregate,
    DeltaBatch,
    IncrementalEngine,
    Query,
    QueryBatch,
    ViewCache,
)

from ..helpers import assert_results_equal


def mixed_batch():
    """Queries whose views span all three toy relations."""
    return QueryBatch(
        [
            Query("n", [], [Aggregate.count()]),
            Query("by_city", ["city"], [Aggregate.of("units", name="u")]),
            Query("by_date", ["date"], [Aggregate.of("price", name="p")]),
            Query(
                "by_store",
                ["store"],
                [Aggregate.of("units", "size", name="us")],
            ),
        ]
    )


def stores_insert():
    return DeltaBatch.insert(
        "Stores",
        {
            "store": np.array([6]),
            "city": np.array([2]),
            "size": np.array([88.0]),
        },
    )


@pytest.fixture
def warm_engine(toy_db):
    """An IncrementalEngine + shared cache with one materialized batch."""
    cache = ViewCache()
    engine = IncrementalEngine(toy_db, view_cache=cache)
    batch = mixed_batch()
    engine.run(batch)
    return engine, cache, batch


def footprints(engine, batch):
    """digest -> relation footprint for the batch's cacheable views."""
    plan = engine.engine.plan(batch)
    sigs = engine.engine.view_signatures_for(plan)
    return {
        sig.digest: sig.relations
        for sig in sigs.values()
        if sig.cacheable
    }


class TestFootprintExactness:
    def test_delta_touches_only_containing_views(self, warm_engine):
        engine, cache, batch = warm_engine
        by_digest = footprints(engine, batch)
        before = set(cache.digests())
        assert before, "warm-up cached nothing"

        report = engine.apply_delta(stores_insert())
        assert report.n_changes == 1
        after = set(cache.digests())

        for digest in before:
            relations = by_digest[digest]
            if "Stores" in relations:
                assert digest not in after, (
                    f"stale entry with footprint {sorted(relations)} "
                    "survived a Stores delta"
                )
            else:
                assert digest in after, (
                    f"entry with footprint {sorted(relations)} was "
                    "dropped although Stores is not in it"
                )

    def test_leaf_views_are_patched_not_just_evicted(self, warm_engine):
        engine, cache, batch = warm_engine
        engine.apply_delta(stores_insert())
        assert cache.stats().patches > 0, (
            "insert-only delta on a leaf relation should patch, "
            "not evict, its leaf views"
        )
        # the patched entries are re-keyed to the *updated* relation
        # content, so the next run's signatures find them immediately
        by_digest = footprints(engine, batch)  # new database fingerprints
        rekeyed = [
            digest
            for digest, relations in by_digest.items()
            if relations == frozenset({"Stores"})
        ]
        assert rekeyed
        for digest in rekeyed:
            assert digest in cache

    def test_retraction_without_support_repairs_in_place(self, warm_engine):
        """Leaf views carry no support counts, so a delete delta cannot
        be merged exactly — those entries are repaired by re-running
        their group plan over the full updated relation and re-keyed
        under the new content addresses (never evicted wholesale)."""
        engine, cache, batch = warm_engine
        stale = set(cache.entries_containing("Stores"))
        patches_before = cache.stats().patches
        engine.apply_delta(DeltaBatch.delete("Stores", np.array([0])))
        assert cache.stats().patches >= patches_before + len(stale) > 0
        assert cache.stats().invalidations == 0
        assert stale.isdisjoint(cache.digests())
        # the repaired entries answer exactly like a cold engine
        warm = LMFAO(engine.database, sort_inputs=False, view_cache=cache)
        served = warm.run(batch)
        cold = LMFAO(engine.database, sort_inputs=False).run(batch)
        assert_results_equal(served, cold, batch, rtol=1e-9)


class TestInteriorRekey:
    """Interior DAG entries are repaired + re-keyed, never evicted."""

    def interior(self, engine, batch, relation):
        """Digests of cacheable views whose subtree spans ``relation``
        plus at least one other relation (i.e. interior, not leaf)."""
        return {
            digest
            for digest, rels in footprints(engine, batch).items()
            if relation in rels and len(rels) > 1
        }

    def test_interior_entries_rekey_not_evict(self, warm_engine):
        engine, cache, batch = warm_engine
        before = self.interior(engine, batch, "Stores")
        assert before, "the toy batch must cache interior views"
        assert before <= set(cache.digests())
        engine.apply_delta(stores_insert())
        # old addresses gone, repaired data present under exactly the
        # digests the next run's signatures will compute
        assert before.isdisjoint(cache.digests())
        after = self.interior(engine, batch, "Stores")
        for digest in after:
            assert digest in cache
        assert cache.stats().invalidations == 0
        assert cache.stats().patches >= len(after)

    def test_rekeyed_interior_entries_serve_exact_results(
        self, warm_engine
    ):
        engine, cache, batch = warm_engine
        engine.apply_delta(stores_insert())
        # the repair re-keyed every entry to exactly the digest the
        # owning engine's next run computes — a 100% hit, no misses
        plan = engine.engine.plan(batch)
        sigs = engine.engine.view_signatures_for(plan)
        for sig in sigs.values():
            if sig.cacheable:
                assert sig.digest in cache
        warm = LMFAO(engine.database, sort_inputs=False, view_cache=cache)
        served = warm.run(batch)
        cold = LMFAO(engine.database, sort_inputs=False).run(batch)
        assert_results_equal(served, cold, batch, rtol=1e-9)

    def test_interior_rekey_after_retraction(self, warm_engine):
        engine, cache, batch = warm_engine
        engine.apply_delta(DeltaBatch.delete("Stores", np.array([2])))
        assert cache.stats().invalidations == 0
        after = self.interior(engine, batch, "Stores")
        for digest in after:
            assert digest in cache


class TestStaleEpochEntries:
    def test_old_epoch_admission_is_rejected_not_patched(self, toy_db):
        """An entry offered by a reader pinned to an older database
        version must never be patched forward: it predates deltas the
        patch would skip, so "patching" it would publish wrong data
        under a current content address.  Admission gating rejects the
        offer outright (``stale_rejects``) instead of admitting an
        entry the next delta could only evict."""
        cache = ViewCache()
        engine = IncrementalEngine(toy_db, view_cache=cache)
        batch = mixed_batch()
        engine.run(batch)
        # epoch 1: a *duplicate* of store 2 — its id has Sales rows, so
        # the join fans out and every downstream answer really changes
        # (an unmatched store id would hide a mis-patch from the final
        # results)
        engine.apply_delta(
            DeltaBatch.insert(
                "Stores",
                {
                    "store": np.array([2]),
                    "city": np.array([1]),
                    "size": np.array([70.0]),
                },
            )
        )
        # a reader still pinned to the epoch-0 database finishes now
        # and offers its (stale-fingerprint) views to the shared cache:
        # every Stores-footprint offer is rejected at admission
        digests_before = set(cache.digests())
        old_reader = LMFAO(toy_db, sort_inputs=False, view_cache=cache)
        old_reader.run(batch)
        assert cache.stats().stale_rejects > 0
        old_sigs = old_reader.view_signatures_for(old_reader.plan(batch))
        stale = {
            sig.digest
            for sig in old_sigs.values()
            if sig.cacheable and "Stores" in sig.relations
        }
        assert stale.isdisjoint(cache.digests())
        # epoch-0 views whose footprint excludes Stores are still
        # current (their relations never changed) and admissible
        assert digests_before <= set(cache.digests())
        # the next delta sees only current entries: everything patches
        invalidations_before = cache.stats().invalidations
        engine.apply_delta(
            DeltaBatch.insert(
                "Stores",
                {
                    "store": np.array([3]),
                    "city": np.array([0]),
                    "size": np.array([50.0]),
                },
            )
        )
        assert cache.stats().invalidations == invalidations_before
        # a cache-served run at the new epoch must match a cold engine
        # bit for bit; a mis-patched stale entry would poison it
        warm = LMFAO(engine.database, sort_inputs=False, view_cache=cache)
        served = warm.run(batch)
        cold = LMFAO(engine.database, sort_inputs=False).run(batch)
        assert_results_equal(served, cold, batch, rtol=1e-9)


class TestCachedRunMatchesCold:
    @pytest.mark.parametrize(
        "delta",
        [
            stores_insert(),
            DeltaBatch.delete("Stores", np.array([1, 3])),
            DeltaBatch.insert(
                "Oil",
                {"date": np.array([25, 26]),
                 "price": np.array([61.0, 59.5])},
            ),
        ],
        ids=["stores-insert", "stores-delete", "oil-insert"],
    )
    def test_cache_served_run_equals_cold_recompute(self, toy_db, delta):
        cache = ViewCache()
        engine = IncrementalEngine(toy_db, view_cache=cache)
        batch = mixed_batch()
        engine.run(batch)
        engine.apply_delta(delta)

        # a fresh engine over the updated database, sharing the cache:
        # it must serve whatever survived/was patched and still agree
        # with a completely cold engine bit for bit
        warm = LMFAO(engine.database, sort_inputs=False, view_cache=cache)
        served = warm.run(batch)
        cold = LMFAO(engine.database, sort_inputs=False).run(batch)
        assert_results_equal(served, cold, batch, rtol=1e-9)

    def test_incremental_engine_results_track_deltas(self, toy_db):
        cache = ViewCache()
        engine = IncrementalEngine(toy_db, view_cache=cache)
        batch = mixed_batch()
        engine.run(batch)
        engine.apply_delta(stores_insert())
        maintained = engine.run(batch)
        cold = IncrementalEngine(engine.database).run(batch)
        assert_results_equal(maintained, cold, batch, rtol=1e-8)
