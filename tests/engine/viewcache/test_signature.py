"""Content signatures: canonical across plans, sensitive to data."""

import numpy as np
import pytest

from repro import LMFAO, Aggregate, Delta, Query, QueryBatch, Udf, ViewCache
from repro.data.database import DeltaBatch
from repro.engine.views import AggregateSpec, View, ViewRef
from repro.engine.viewcache.signature import (
    database_fingerprint,
    structure_digest,
    relation_fingerprint,
    view_signatures,
)


def count_batch():
    return QueryBatch(
        [
            Query("n", [], [Aggregate.count()]),
            Query("by_city", ["city"], [Aggregate.of("units", name="u")]),
            Query("by_date", ["date"], [Aggregate.of("price", name="p")]),
        ]
    )


def signatures_for(engine, batch):
    plan = engine.plan(batch)
    return plan, engine.view_signatures_for(plan, batch.dynamic_functions())


def threshold_batch(threshold):
    return QueryBatch(
        [
            Query(
                "cheap",
                [],
                [
                    Aggregate.of(
                        Delta("price", "<=", threshold, dynamic=True),
                        name="n",
                    )
                ],
            )
        ]
    )


class TestRelationFingerprint:
    def test_equal_content_different_objects(self, toy_db):
        copy = toy_db.relation("Sales").take(
            np.arange(toy_db.relation("Sales").n_rows)
        )
        assert relation_fingerprint(copy) == relation_fingerprint(
            toy_db.relation("Sales")
        )

    def test_changed_content_changes_fingerprint(self, toy_db):
        sales = toy_db.relation("Sales")
        changed = sales.append_rows(
            {"date": np.array([0]), "store": np.array([0]),
             "units": np.array([1.0])}
        )
        assert relation_fingerprint(changed) != relation_fingerprint(sales)

    def test_database_fingerprint_tracks_any_relation(self, toy_db):
        step = toy_db.apply_delta(
            DeltaBatch.insert(
                "Oil", {"date": np.array([99]), "price": np.array([1.0])}
            )
        )
        assert database_fingerprint(step.database) != database_fingerprint(
            toy_db
        )


class TestCanonicalAcrossPlans:
    def test_independent_engines_agree(self, toy_db):
        """Two engines planning independently built (but structurally
        equal) batches produce the same digests — the property that
        makes the cache shareable across batches and sessions."""
        _, sigs_a = signatures_for(LMFAO(toy_db), count_batch())
        _, sigs_b = signatures_for(LMFAO(toy_db), count_batch())
        digests_a = sorted(s.digest for s in sigs_a.values())
        digests_b = sorted(s.digest for s in sigs_b.values())
        assert digests_a == digests_b

    def test_distinct_batches_share_structurally_equal_views(self, toy_db):
        """Views that come out structurally identical in two different
        batches (here: the Stores-side leaf view, untouched by the
        extra by_date query) carry the same digest — cross-batch
        sharing needs no coordination between the plans."""
        by_city = Query("by_city", ["city"], [Aggregate.of("units", name="u")])
        by_date = Query("by_date", ["date"], [Aggregate.of("price", name="p")])
        _, sub_sigs = signatures_for(
            LMFAO(toy_db, root="Sales"), QueryBatch([by_city])
        )
        _, full_sigs = signatures_for(
            LMFAO(toy_db, root="Sales"), QueryBatch([by_city, by_date])
        )
        full_digests = {s.digest for s in full_sigs.values()}
        shared = [
            s for s in sub_sigs.values() if s.digest in full_digests
        ]
        assert shared, "no view shared between the two batches' plans"

    def test_footprint_covers_subtree_relations(self, toy_db):
        plan, sigs = signatures_for(LMFAO(toy_db), count_batch())
        for view in plan.decomposed.views:
            sig = sigs[view.id]
            assert view.source in sig.relations
            for ref_vid in view.referenced_view_ids():
                assert sigs[ref_vid].relations <= sig.relations
        # output views at the root cover the whole database
        outputs = [v for v in plan.decomposed.views if v.is_output]
        assert any(
            sigs[v.id].relations == {"Sales", "Stores", "Oil"}
            for v in outputs
        )


class TestDataSensitivity:
    def test_delta_changes_exactly_containing_views(self, toy_db):
        engine_before = LMFAO(toy_db, sort_inputs=False)
        plan, before = signatures_for(engine_before, count_batch())
        step = toy_db.apply_delta(
            DeltaBatch.insert(
                "Oil", {"date": np.array([99]), "price": np.array([2.0])}
            )
        )
        engine_after = LMFAO(step.database, sort_inputs=False)
        _, after = signatures_for(engine_after, count_batch())
        for view in plan.decomposed.views:
            if "Oil" in before[view.id].relations:
                assert before[view.id].digest != after[view.id].digest
            else:
                assert before[view.id].digest == after[view.id].digest

    def test_delta_value_is_part_of_the_signature(self, toy_db):
        """Dynamic functions are value-inclusive for caching: the plan
        cache may share slots, the view cache must not share data."""
        _, sigs_5 = signatures_for(LMFAO(toy_db), threshold_batch(5.0))
        _, sigs_7 = signatures_for(LMFAO(toy_db), threshold_batch(7.0))
        assert {s.digest for s in sigs_5.values()} != {
            s.digest for s in sigs_7.values()
        }


class TestDynamicRebinding:
    """Dynamic functions hash through the *runtime* dyn table: a plan
    shared by the plan cache and re-bound to new values (the CART
    per-node pattern) must never alias onto the old values' digests."""

    def test_shared_plan_rebinding_gets_fresh_digests(self, toy_db):
        engine = LMFAO(toy_db)
        lo, hi = threshold_batch(0.0), threshold_batch(1e9)
        plan_lo, plan_hi = engine.plan(lo), engine.plan(hi)
        assert plan_lo is plan_hi, "expected plan-cache sharing"
        sigs_lo = engine.view_signatures_for(
            plan_lo, lo.dynamic_functions()
        )
        sigs_hi = engine.view_signatures_for(
            plan_hi, hi.dynamic_functions()
        )
        assert all(s.cacheable for s in sigs_lo.values())
        assert {s.digest for s in sigs_lo.values()} != {
            s.digest for s in sigs_hi.values()
        }

    def test_unbound_dynamic_functions_poison_cacheability(self, toy_db):
        engine = LMFAO(toy_db)
        plan = engine.plan(threshold_batch(5.0))
        sigs = engine.view_signatures_for(plan)  # no binding given
        assert any(not s.cacheable for s in sigs.values())

    def test_no_false_hit_across_rebindings(self, toy_db):
        """End-to-end: with a cache attached, re-running the shared
        plan under a new threshold must recompute, not serve the old
        threshold's data."""
        cache = ViewCache()
        engine = LMFAO(toy_db, view_cache=cache)
        none = engine.run(threshold_batch(0.0))["cheap"].column("n")[0]
        every = engine.run(threshold_batch(1e9))["cheap"].column("n")[0]
        truth = LMFAO(toy_db).run(threshold_batch(1e9))["cheap"]
        assert every == truth.column("n")[0]
        assert every != none


class TestRefOrderCanonicality:
    def test_flipped_child_ids_hash_identically(self, toy_db):
        """Plan-local view ids must not leak into digests: two plans
        assigning flipped ids to the same children agree on the
        parent's digest."""

        def make_views(first, second):
            # first/second: (source, group_by) of the two leaf children
            children = [
                View(
                    id=i,
                    source=source,
                    target="Sales",
                    group_by=group_by,
                    aggregates=[AggregateSpec(1.0, (), ())],
                )
                for i, (source, group_by) in enumerate([first, second])
            ]
            parent = View(
                id=2,
                source="Sales",
                target=None,
                group_by=(),
                aggregates=[
                    AggregateSpec(
                        1.0, (), (ViewRef(0, 0), ViewRef(1, 0))
                    )
                ],
            )
            return children + [parent]

        stores = ("Stores", ("store",))
        oil = ("Oil", ("date",))
        sigs_a = view_signatures(make_views(stores, oil), toy_db)
        sigs_b = view_signatures(make_views(oil, stores), toy_db)
        assert sigs_a[2].digest == sigs_b[2].digest


class TestCacheability:
    def test_udf_views_are_uncacheable(self, toy_db):
        batch = QueryBatch(
            [
                Query(
                    "u",
                    [],
                    [
                        Aggregate.of(
                            Udf(["units"], lambda u: u * 2, "double"),
                            name="s",
                        )
                    ],
                )
            ]
        )
        plan, sigs = signatures_for(LMFAO(toy_db), batch)
        assert any(not s.cacheable for s in sigs.values())
        # the contamination is transitive: the output view is poisoned
        outputs = [v.id for v in plan.decomposed.views if v.is_output]
        assert all(not sigs[vid].cacheable for vid in outputs)

    def test_plain_views_are_cacheable(self, toy_db):
        _, sigs = signatures_for(LMFAO(toy_db), count_batch())
        assert all(s.cacheable for s in sigs.values())


class TestStructure:
    def test_every_view_exposes_rekey_structure(self, toy_db):
        plan, sigs = signatures_for(
            LMFAO(toy_db, sort_inputs=False), count_batch()
        )
        for view in plan.decomposed.views:
            sig = sigs[view.id]
            assert sig.structure is not None
            fp = relation_fingerprint(toy_db.relation(view.source))
            assert structure_digest(sig.structure, fp) == sig.digest
