"""WorkloadSession: fused execution matches independent runs exactly.

The acceptance differential: a fused covar + linreg + trees session
returns results ``allclose``-identical to three independent
``LMFAO.run`` calls, on both the interpreter and compiled backends.
"""

import pytest

from repro import LMFAO, ViewCache, WorkloadSession
from repro.ml import CovarBatch
from repro.ml.trees import CARTLearner

from ..helpers import assert_results_equal


def regression_label(ds):
    if ds.database.attribute_kind(ds.label) == "continuous":
        return ds.label
    return ds.continuous_features[0]


def build_workloads(ds):
    """covar + linreg + trees over a restricted feature set (kept small
    so both backends compile quickly in the fast lane)."""
    label = regression_label(ds)
    continuous = [f for f in ds.continuous_features if f != label][:3]
    categorical = list(ds.categorical_features)[:2]
    learner = CARTLearner(
        LMFAO(ds.database, ds.join_tree, compile=False),
        continuous[:2],
        categorical[:1],
        label,
        "regression",
        n_buckets=6,
    )
    return {
        "covar": CovarBatch(continuous, categorical, label).batch,
        "linreg": CovarBatch(continuous, [], label).batch,
        "trees": learner.node_batch([]),
    }


@pytest.fixture(scope="module")
def workloads(tiny_retailer):
    return build_workloads(tiny_retailer)


class TestFusedMatchesIndependent:
    @pytest.mark.parametrize("backend", ["interpret", "compiled"])
    def test_differential(self, tiny_retailer, workloads, backend):
        ds = tiny_retailer
        independent = {}
        for name, batch in workloads.items():
            with LMFAO(ds.database, ds.join_tree, backend=backend) as eng:
                independent[name] = eng.run(batch)
        with WorkloadSession(
            ds.database, ds.join_tree, backend=backend
        ) as session:
            for name, batch in workloads.items():
                session.add_workload(name, batch)
            fused = session.run()
        for name, batch in workloads.items():
            assert_results_equal(
                fused[name], independent[name], batch, rtol=1e-9
            )

    def test_fusion_dedupes_views(self, tiny_retailer, workloads):
        with WorkloadSession(
            tiny_retailer.database, tiny_retailer.join_tree, compile=False
        ) as session:
            for name, batch in workloads.items():
                session.add_workload(name, batch)
            report = session.fusion_report()
        assert report.views_fused < report.views_independent
        assert report.views_saved > 0
        assert report.n_workloads == 3


class TestSessionWithCache:
    def test_warm_rerun_matches_cold(self, tiny_retailer, workloads):
        ds = tiny_retailer
        with WorkloadSession(
            ds.database, ds.join_tree, cache=ViewCache()
        ) as session:
            for name, batch in workloads.items():
                session.add_workload(name, batch)
            cold = session.run()
            assert cold.cache_report.n_hits == 0
            warm = session.run()
        assert warm.cache_report.n_misses == 0
        assert (
            warm.cache_report.skipped_groups
            == warm.cache_report.total_groups
        )
        for name, batch in workloads.items():
            assert_results_equal(warm[name], cold[name], batch, rtol=0)

    def test_independent_runs_share_through_cache(
        self, tiny_retailer, workloads
    ):
        """covar's views serve linreg even without DAG fusion — the
        cross-batch sharing is carried by the content-addressed cache."""
        ds = tiny_retailer
        with WorkloadSession(
            ds.database, ds.join_tree, cache=ViewCache()
        ) as session:
            session.add_workload("covar", workloads["covar"])
            session.add_workload("linreg", workloads["linreg"])
            results = session.run_independent()
        assert results["linreg"].cache_report.n_hits > 0
        # and the shared-cache results are still correct
        with LMFAO(ds.database, ds.join_tree) as eng:
            expected = eng.run(workloads["linreg"])
        assert_results_equal(
            results["linreg"], expected, workloads["linreg"], rtol=1e-9
        )


class TestSessionValidation:
    def test_rejects_separator_in_name(self, toy_db):
        session = WorkloadSession(toy_db)
        with pytest.raises(ValueError, match="::"):
            session.add_workload("a::b", None)

    def test_rejects_duplicate_names(self, toy_db, workloads):
        session = WorkloadSession(toy_db)
        session.add_workload("a", workloads["linreg"])
        with pytest.raises(ValueError, match="duplicate"):
            session.add_workload("a", workloads["linreg"])

    def test_run_without_workloads_fails(self, toy_db):
        with pytest.raises(ValueError, match="no workloads"):
            WorkloadSession(toy_db).run()
