"""Test package."""
