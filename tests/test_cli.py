"""The ``python -m repro`` command-line interface."""

import re

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_all(self, capsys):
        assert main(["--scale", "0.05", "info"]) == 0
        out = capsys.readouterr().out
        for name in ("retailer", "favorita", "yelp", "tpcds"):
            assert name in out

    def test_info_single(self, capsys):
        assert main(["--scale", "0.05", "info", "favorita"]) == 0
        out = capsys.readouterr().out
        assert "favorita" in out and "retailer" not in out

    def test_info_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["info", "nonexistent"])

    def test_run_covar(self, capsys):
        assert main(["--scale", "0.05", "run", "favorita", "covar"]) == 0
        out = capsys.readouterr().out
        assert "covar on favorita" in out
        assert "A+I" in out

    def test_run_cube(self, capsys):
        assert main(["--scale", "0.05", "run", "yelp", "cube"]) == 0
        assert "cube on yelp" in capsys.readouterr().out

    def test_run_backend_all(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "favorita", "covar",
                "--backend", "all", "--threads", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        for name in ("interpret", "compiled", "process"):
            assert name in out
        assert "x vs interpret" in out

    def test_run_backend_process(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "favorita", "covar",
                "--backend", "process",
            ]
        ) == 0
        assert "process" in capsys.readouterr().out

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "favorita", "covar", "--backend", "gpu"])

    def test_run_needs_some_workload(self):
        with pytest.raises(SystemExit, match="workload"):
            main(["--scale", "0.05", "run", "favorita"])

    def test_run_workloads_fused_with_cache(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "retailer",
                "--workloads", "covar,linreg,trees",
                "--fuse", "--cache-mb", "32",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fused DAG:" in out and "views shared" in out
        for name in ("covar", "linreg", "trees"):
            assert name in out
        assert "view cache:" in out
        # a cold fused run misses every cacheable view
        match = re.search(r"per-view report \(fused\): 0 hits, (\d+) misses", out)
        assert match and int(match.group(1)) > 0
        assert re.search(r"^\s+miss\s+V\d+\[", out, re.MULTILINE)

    def test_run_workloads_independent_shares_through_cache(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "retailer",
                "--workloads", "covar,linreg",
                "--cache-mb", "32",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "independent execution" in out
        # linreg's report must show hits served from covar's views
        match = re.search(r"per-view report linreg: (\d+) hits", out)
        assert match, out
        assert int(match.group(1)) > 0, "linreg served no views from covar"

    def test_run_workloads_without_cache(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "favorita",
                "--workloads", "covar,linreg", "--fuse",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fused DAG:" in out
        assert "view cache:" not in out

    def test_run_workloads_rejects_backend_all(self):
        with pytest.raises(SystemExit, match="backend"):
            main(
                [
                    "--scale", "0.05",
                    "run", "favorita",
                    "--workloads", "covar,linreg",
                    "--backend", "all",
                ]
            )

    def test_run_workloads_rejects_both_forms(self):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "--scale", "0.05",
                    "run", "favorita", "covar",
                    "--workloads", "covar,linreg",
                ]
            )

    def test_run_workloads_rejects_incremental(self):
        with pytest.raises(SystemExit, match="single workload"):
            main(
                [
                    "--scale", "0.05",
                    "run", "favorita",
                    "--workloads", "covar,linreg", "--incremental",
                ]
            )

    def test_run_single_linreg_workload(self, capsys):
        assert main(["--scale", "0.05", "run", "favorita", "linreg"]) == 0
        assert "linreg on favorita" in capsys.readouterr().out

    def test_plan_mi(self, capsys):
        assert main(["--scale", "0.05", "plan", "favorita", "mi"]) == 0
        out = capsys.readouterr().out
        assert "join tree:" in out and "Table 2 row:" in out

    def test_sql_covar(self, capsys):
        assert main(["--scale", "0.05", "sql", "favorita", "covar"]) == 0
        out = capsys.readouterr().out
        assert "CREATE VIEW" in out and "GROUP BY" in out

    def test_run_rt_node(self, capsys):
        assert main(["--scale", "0.05", "run", "tpcds", "rt_node"]) == 0
        assert "rt_node on tpcds" in capsys.readouterr().out


class TestServeCli:
    def test_serve_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["serve", "nonexistent"])

    def test_client_query_needs_dataset_and_workloads(self):
        with pytest.raises(SystemExit, match="client query needs"):
            main(["client", "query"])

    def test_client_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            main(["client", "reboot"])

    def test_serve_and_client_round_trip(self, capsys):
        """The serve command's service, driven through the HTTP client."""
        import threading

        from repro.datasets import ALL_DATASETS
        from repro.__main__ import build_service
        from repro.server.http import make_http_server

        class Args:
            dataset = "favorita"
            scale = 0.05
            coalesce_ms = 2.0
            max_batch = 16
            max_queue = 64
            cache_mb = 8.0
            backend = "compiled"
            threads = 1

        dataset = ALL_DATASETS["favorita"](scale=0.05)
        service = build_service(Args, dataset)
        server = make_http_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            port = str(server.server_address[1])
            assert main(["client", "health", "--port", port]) == 0
            assert '"status": "ok"' in capsys.readouterr().out
            assert main(
                ["client", "query", "favorita", "covar", "--port", port]
            ) == 0
            out = capsys.readouterr().out
            assert '"epoch": 0' in out and '"covar"' in out
            assert main(["client", "stats", "--port", port]) == 0
            assert '"coalescer"' in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()
            service.close()
