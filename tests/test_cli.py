"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_all(self, capsys):
        assert main(["--scale", "0.05", "info"]) == 0
        out = capsys.readouterr().out
        for name in ("retailer", "favorita", "yelp", "tpcds"):
            assert name in out

    def test_info_single(self, capsys):
        assert main(["--scale", "0.05", "info", "favorita"]) == 0
        out = capsys.readouterr().out
        assert "favorita" in out and "retailer" not in out

    def test_info_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["info", "nonexistent"])

    def test_run_covar(self, capsys):
        assert main(["--scale", "0.05", "run", "favorita", "covar"]) == 0
        out = capsys.readouterr().out
        assert "covar on favorita" in out
        assert "A+I" in out

    def test_run_cube(self, capsys):
        assert main(["--scale", "0.05", "run", "yelp", "cube"]) == 0
        assert "cube on yelp" in capsys.readouterr().out

    def test_run_backend_all(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "favorita", "covar",
                "--backend", "all", "--threads", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        for name in ("interpret", "compiled", "process"):
            assert name in out
        assert "x vs interpret" in out

    def test_run_backend_process(self, capsys):
        assert main(
            [
                "--scale", "0.05",
                "run", "favorita", "covar",
                "--backend", "process",
            ]
        ) == 0
        assert "process" in capsys.readouterr().out

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "favorita", "covar", "--backend", "gpu"])

    def test_plan_mi(self, capsys):
        assert main(["--scale", "0.05", "plan", "favorita", "mi"]) == 0
        out = capsys.readouterr().out
        assert "join tree:" in out and "Table 2 row:" in out

    def test_sql_covar(self, capsys):
        assert main(["--scale", "0.05", "sql", "favorita", "covar"]) == 0
        out = capsys.readouterr().out
        assert "CREATE VIEW" in out and "GROUP BY" in out

    def test_run_rt_node(self, capsys):
        assert main(["--scale", "0.05", "run", "tpcds", "rt_node"]) == 0
        assert "rt_node on tpcds" in capsys.readouterr().out
