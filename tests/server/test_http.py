"""The HTTP front-end and blocking client, over an ephemeral port."""

import numpy as np
import pytest

from repro import AnalyticsService
from repro.server import AnalyticsClient, ClientError, serve_in_background

from ..engine.helpers import WORKLOADS

pytestmark = pytest.mark.timeout(120)


@pytest.fixture()
def served(toy_db):
    service = AnalyticsService(coalesce_ms=2, cache_mb=8)
    service.register_dataset("toy", toy_db)
    for name, factory in WORKLOADS.items():
        service.register_workload("toy", name, factory())
    server, _thread = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    client = AnalyticsClient(host, port)
    client.wait_ready(timeout=10)
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


class TestEndpoints:
    def test_healthz(self, served):
        _service, client = served
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["datasets"] == {"toy": 0}

    def test_query_round_trip_with_data(self, served):
        service, client = served
        payload = client.query("toy", ["counts"], include_data=True)
        assert payload["epoch"] == 0
        assert payload["batch_size"] >= 1
        # the wire payload carries the same values the in-process
        # service answers
        direct = service.query("toy", ["counts"], timeout=60)
        for query_name, wire in payload["results"]["counts"].items():
            relation = direct.results["counts"][query_name]
            assert wire["n_rows"] == relation.n_rows
            assert wire["columns"] == list(relation.schema.names)
            for column in wire["columns"]:
                assert np.allclose(
                    wire["data"][column], relation.column(column)
                )

    def test_query_without_data_is_counts_only(self, served):
        _service, client = served
        payload = client.query("toy", ["groupbys"])
        some = next(iter(payload["results"]["groupbys"].values()))
        assert "data" not in some and "n_rows" in some

    def test_delta_commits_and_next_query_sees_it(self, served, toy_db):
        service, client = served
        fact = toy_db.relation("Sales")
        row = {
            name: [fact.column(name)[0].item()]
            for name in fact.schema.names
        }
        payload = client.delta(
            "toy", "Sales", inserts=row, delete_indices=[0, 1, 2]
        )
        assert payload["epoch"] == 1
        assert payload["n_changes"] == 4
        assert payload["relations"] == ["Sales"]
        after = client.query("toy", ["counts"], include_data=True)
        assert after["epoch"] == 1
        count = after["results"]["counts"]["count"]["data"]["count"][0]
        assert count == fact.n_rows + 1 - 3

    def test_stats_reports_cache_and_coalescer(self, served):
        _service, client = served
        client.query("toy", ["counts"])
        payload = client.stats()
        assert payload["coalescer"]["submitted"] >= 1
        toy = payload["datasets"]["toy"]
        assert set(toy["cache"]) >= {"hits", "misses", "resident_bytes"}

    def test_unknown_dataset_is_404(self, served):
        _service, client = served
        with pytest.raises(ClientError) as info:
            client.query("nope", ["counts"])
        assert info.value.status == 404

    def test_unknown_workload_is_400_with_valid_names(self, served):
        service, client = served
        with pytest.raises(ClientError) as info:
            client.query("toy", ["nope"])
        assert info.value.status == 400
        # the error body names every workload that would have worked
        for name in service.workload_names("toy"):
            assert name in info.value.message

    def test_unknown_route_is_404(self, served):
        _service, client = served
        with pytest.raises(ClientError) as info:
            client._request("GET", "/nothing")
        assert info.value.status == 404

    def test_malformed_query_is_400(self, served):
        _service, client = served
        with pytest.raises(ClientError) as info:
            client._request("POST", "/query", {"dataset": "toy"})
        assert info.value.status == 400

    def test_non_numeric_timeout_is_400(self, served):
        _service, client = served
        with pytest.raises(ClientError) as info:
            client._request(
                "POST",
                "/query",
                {
                    "dataset": "toy",
                    "workloads": ["counts"],
                    "timeout": "5",
                },
            )
        assert info.value.status == 400

    def test_empty_delta_is_400(self, served):
        _service, client = served
        with pytest.raises(ClientError) as info:
            client.delta("toy", "Sales")
        assert info.value.status == 400
