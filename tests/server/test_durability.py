"""AnalyticsService durability: WAL'd epochs, restarts, warm caches."""

import numpy as np
import pytest

from repro import AnalyticsService, DatasetStorage, DeltaBatch
from repro.engine.viewcache.signature import database_fingerprint

from ..engine.helpers import WORKLOADS, assert_results_equal

pytestmark = pytest.mark.timeout(120)


def make_service(data_dir, toy_db, **kwargs):
    service = AnalyticsService(
        coalesce_ms=0, cache_mb=8, data_dir=data_dir, **kwargs
    )
    service.register_dataset("toy", toy_db)
    for name, factory in WORKLOADS.items():
        service.register_workload("toy", name, factory())
    return service


def insert_delta(db, n=3):
    sales = db.relation("Sales")
    return DeltaBatch.insert(
        "Sales",
        {name: sales.column(name)[:n] for name in sales.schema.names},
    )


def dimension_delta(db, n=2):
    """Insert + retract rows on the Stores *dimension* relation."""
    stores = db.relation("Stores")
    return DeltaBatch(
        "Stores",
        inserts={
            name: stores.column(name)[:n] for name in stores.schema.names
        },
        delete_indices=np.array([0]),
    )


class TestServiceDurability:
    def test_restart_restores_epoch_and_data(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.apply_delta("toy", insert_delta(toy_db))
            service.apply_delta(
                "toy", DeltaBatch.delete("Sales", np.array([0]))
            )
            assert service.epoch("toy") == 2
            live_db = service.snapshot("toy").database
            before = service.query("toy", ["groupbys"], timeout=60)

        # "restart": a brand-new service over the same data dir; the
        # (stale) generator database passed in is replaced by recovery
        with make_service(data_dir, toy_db) as revived:
            assert revived.epoch("toy") == 2
            recovery = revived.recovery("toy")
            assert recovery is not None
            assert recovery.replayed_commits == 2
            assert database_fingerprint(
                revived.snapshot("toy").database
            ) == database_fingerprint(live_db)
            after = revived.query("toy", ["groupbys"], timeout=60)
        assert after.epoch == before.epoch == 2
        assert_results_equal(
            after.results["groupbys"],
            before.results["groupbys"],
            WORKLOADS["groupbys"](),
        )

    def test_warm_cache_served_from_disk_on_restart(
        self, toy_db, tmp_path
    ):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.query("toy", ["covar_style"], timeout=60)
            spilled = service.stats()["datasets"]["toy"]["storage"][
                "spilled_entries"
            ]
            assert spilled > 0

        with make_service(data_dir, toy_db) as revived:
            revived.query("toy", ["covar_style"], timeout=60)
            stats = revived.stats()["datasets"]["toy"]
            assert stats["cache"]["warm_hits"] > 0
            assert stats["cache"]["misses"] == 0
            assert stats["storage"]["warm_hits"] == (
                stats["cache"]["warm_hits"]
            )

    def test_wal_written_before_epoch_swap(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.apply_delta("toy", insert_delta(toy_db))
            storage_stats = service.stats()["datasets"]["toy"]["storage"]
            assert storage_stats["wal_len"] == 1
            # an empty delta commits nothing and logs nothing
            service.apply_delta(
                "toy", DeltaBatch.insert("Sales", {})
            )
            assert service.epoch("toy") == 1
            storage_stats = service.stats()["datasets"]["toy"]["storage"]
            assert storage_stats["wal_len"] == 1

    def test_auto_compaction_bounds_the_wal(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db, compact_wal=2) as service:
            for _ in range(5):
                service.apply_delta("toy", insert_delta(toy_db, n=1))
            stats = service.stats()["datasets"]["toy"]["storage"]
            assert stats["wal_len"] < 2
            assert stats["last_compaction"] is not None
            assert stats["snapshot_epoch"] >= 2
            live_db = service.snapshot("toy").database
            epoch = service.epoch("toy")

        with make_service(data_dir, toy_db) as revived:
            assert revived.epoch("toy") == epoch
            assert database_fingerprint(
                revived.snapshot("toy").database
            ) == database_fingerprint(live_db)

    def test_manual_compact(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.apply_delta("toy", insert_delta(toy_db))
            service.compact("toy")
            stats = service.stats()["datasets"]["toy"]["storage"]
            assert stats["wal_len"] == 0
            assert stats["snapshot_epoch"] == 1

    def test_stats_storage_section_shape(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.query("toy", ["counts"], timeout=60)
            service.apply_delta("toy", insert_delta(toy_db))
            storage = service.stats()["datasets"]["toy"]["storage"]
        for field in (
            "wal_len",
            "wal_bytes",
            "snapshot_epoch",
            "last_compaction",
            "spilled_bytes",
            "spilled_entries",
            "warm_hits",
            "recovery",
        ):
            assert field in storage
        assert storage["recovery"] is None  # first boot

    def test_without_data_dir_storage_is_none(self, toy_db):
        service = AnalyticsService(coalesce_ms=0, cache_mb=8)
        service.register_dataset("toy", toy_db)
        try:
            assert service.recovery("toy") is None
            assert (
                service.stats()["datasets"]["toy"]["storage"] is None
            )
        finally:
            service.close()

    def test_sync_flushes_wal(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.apply_delta("toy", insert_delta(toy_db))
            service.sync()  # must not raise; WAL already durable

    def test_failed_wal_append_rolls_the_commit_back(
        self, toy_db, tmp_path
    ):
        """A commit that cannot be made durable must not be served:
        memory is rolled back to the published epoch, so recovery and
        the live service never diverge."""
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.apply_delta("toy", insert_delta(toy_db))
            before = service.query("toy", ["groupbys"], timeout=60)
            state = service._state("toy")

            def broken(epoch, deltas):
                raise OSError("disk full")

            original = state.storage.log_commit
            state.storage.log_commit = broken
            try:
                with pytest.raises(OSError, match="disk full"):
                    service.apply_delta("toy", insert_delta(toy_db))
            finally:
                state.storage.log_commit = original
            # epoch unchanged, and the served data matches it
            assert service.epoch("toy") == 1
            after = service.query("toy", ["groupbys"], timeout=60)
            assert after.epoch == 1
            assert_results_equal(
                after.results["groupbys"],
                before.results["groupbys"],
                WORKLOADS["groupbys"](),
            )
            # the WAL can still take the next commit normally
            response = service.apply_delta("toy", insert_delta(toy_db))
            assert response.epoch == 2
            live_db = service.snapshot("toy").database

        with make_service(data_dir, toy_db) as revived:
            assert revived.epoch("toy") == 2
            assert database_fingerprint(
                revived.snapshot("toy").database
            ) == database_fingerprint(live_db)

    def test_recovery_replays_dimension_deltas_through_ivm(
        self, toy_db, tmp_path
    ):
        """A crash-restart over a WAL holding *dimension-table* deltas
        (the case the old database-level fold handled but the serving
        engine could not maintain) recovers through the propagation
        path and answers exactly like the pre-crash service."""
        from repro import IncrementalEngine

        data_dir = str(tmp_path / "data")
        deltas = [
            insert_delta(toy_db, n=2),
            dimension_delta(toy_db),
            DeltaBatch.delete("Oil", np.array([1, 3])),
        ]
        with make_service(data_dir, toy_db) as service:
            for delta in deltas:
                service.apply_delta("toy", delta)
            assert service.epoch("toy") == 3
            live_db = service.snapshot("toy").database
            before = service.query("toy", ["groupbys"], timeout=60)

        with make_service(data_dir, toy_db) as revived:
            assert revived.epoch("toy") == 3
            recovery = revived.recovery("toy")
            assert recovery is not None
            assert recovery.replayed_commits == 3
            assert database_fingerprint(
                revived.snapshot("toy").database
            ) == database_fingerprint(live_db)
            # replay went through the IVM engine, not a bare fold:
            # every replayed commit shows up in its maintenance stats
            ivm = revived.stats()["datasets"]["toy"]["ivm"]
            assert ivm["deltas"] == 3
            after = revived.query("toy", ["groupbys"], timeout=60)
        assert_results_equal(
            after.results["groupbys"],
            before.results["groupbys"],
            WORKLOADS["groupbys"](),
        )

        # offline ground truth over the same delta sequence
        ground = IncrementalEngine(toy_db)
        batch = WORKLOADS["groupbys"]()
        ground.run(batch)
        for delta in deltas:
            ground.apply_delta(delta)
        expected = ground.run(batch)
        assert_results_equal(after.results["groupbys"], expected, batch)

    def test_stats_has_ivm_section(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        with make_service(data_dir, toy_db) as service:
            service.query("toy", ["groupbys"], timeout=60)
            service.apply_delta("toy", insert_delta(toy_db))
            service.apply_delta("toy", dimension_delta(toy_db))
            ivm = service.stats()["datasets"]["toy"]["ivm"]
        assert ivm["deltas"] == 2
        assert ivm["fallbacks"] == 0
        # served queries run outside the IVM batch cache, so the
        # per-batch counters exist but stay zero in pure serving
        for field in ("incremental", "propagated", "last_fallback_reason"):
            assert field in ivm

    def test_spill_budget_prunes_stale_entries(self, toy_db, tmp_path):
        data_dir = str(tmp_path / "data")
        # a tiny disk budget: the tier must prune rather than grow
        with make_service(data_dir, toy_db, spill_mb=0.01) as service:
            service.query("toy", ["covar_style"], timeout=60)
            service.apply_delta("toy", insert_delta(toy_db))
            service.query("toy", ["covar_style"], timeout=60)
            storage = service.stats()["datasets"]["toy"]["storage"]
            assert storage["spilled_bytes"] <= int(0.01 * (1 << 20))

    def test_recovered_equals_offline_ground_truth(
        self, toy_db, tmp_path
    ):
        """The isolation-test invariant, extended across a restart:
        the recovered epoch answers exactly what an offline engine
        computes over the same delta sequence."""
        from repro import IncrementalEngine

        data_dir = str(tmp_path / "data")
        deltas = [insert_delta(toy_db, n=2) for _ in range(3)]
        with make_service(data_dir, toy_db) as service:
            for delta in deltas:
                service.apply_delta("toy", delta)

        with make_service(data_dir, toy_db) as revived:
            served = revived.query("toy", ["groupbys"], timeout=60)

        ground = IncrementalEngine(toy_db)
        batch = WORKLOADS["groupbys"]()
        ground.run(batch)
        for delta in deltas:
            ground.apply_delta(delta)
        expected = ground.run(batch)
        assert_results_equal(served.results["groupbys"], expected, batch)
