"""RequestCoalescer: batching windows, fan-out, shedding, errors."""

import threading
import time

import pytest

from repro.server.coalescer import (
    CoalescerStats,
    RequestCoalescer,
    ServiceOverloaded,
)

pytestmark = pytest.mark.timeout(60)


class Recorder:
    """An execute callback that records every drained batch."""

    def __init__(self, block: bool = False):
        self.batches = []
        self.block = block
        self.started = threading.Event()  # first execute entered
        self.release = threading.Event()  # let the first execute finish
        self._first = True

    def __call__(self, key, payloads):
        self.batches.append((key, list(payloads)))
        if self.block and self._first:
            self._first = False
            self.started.set()
            assert self.release.wait(30), "test never released the worker"
        return [f"{key}:{payload}" for payload in payloads]


class TestBasics:
    def test_single_request_round_trip(self):
        recorder = Recorder()
        with RequestCoalescer(recorder, window_ms=1) as coalescer:
            assert coalescer.submit("ds", "covar", timeout=30) == "ds:covar"
        assert recorder.batches == [("ds", ["covar"])]
        stats = coalescer.stats()
        assert stats.submitted == stats.completed == stats.batches == 1

    def test_window_zero_disables_coalescing(self):
        coalescer = RequestCoalescer(Recorder(), window_ms=0, max_batch=16)
        assert coalescer.max_batch == 1
        coalescer.close()

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            RequestCoalescer(Recorder(), max_batch=0)
        with pytest.raises(ValueError):
            RequestCoalescer(Recorder(), max_queue=0)

    def test_submit_after_close_raises(self):
        coalescer = RequestCoalescer(Recorder())
        coalescer.close()
        with pytest.raises(RuntimeError, match="closed"):
            coalescer.submit("ds", "covar")


class TestCoalescing:
    def test_concurrent_requests_share_one_batch(self):
        # block the worker on a sacrificial first request, queue five
        # more, then release: the five must drain as one batch
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(
            recorder, window_ms=50, max_batch=8, max_queue=64
        )
        threads = [
            threading.Thread(
                target=coalescer.submit, args=("ds", "first"),
            )
        ]
        threads[0].start()
        assert recorder.started.wait(10)
        results = {}

        def submit(i):
            results[i] = coalescer.submit("ds", f"req{i}", timeout=30)

        for i in range(5):
            thread = threading.Thread(target=submit, args=(i,))
            threads.append(thread)
            thread.start()
        while coalescer.stats().queue_depth < 5:
            time.sleep(0.005)
        recorder.release.set()
        for thread in threads:
            thread.join(30)
        assert results == {i: f"ds:req{i}" for i in range(5)}
        assert len(recorder.batches) == 2
        assert sorted(recorder.batches[1][1]) == [
            f"req{i}" for i in range(5)
        ]
        assert coalescer.stats().max_batch == 5
        coalescer.close()

    def test_batches_never_mix_keys(self):
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(
            recorder, window_ms=50, max_batch=8, max_queue=64
        )
        first = threading.Thread(target=coalescer.submit, args=("a", "x"))
        first.start()
        assert recorder.started.wait(10)
        threads = [
            threading.Thread(target=coalescer.submit, args=(key, key))
            for key in ("a", "b", "a", "b")
        ]
        for thread in threads:
            thread.start()
        while coalescer.stats().queue_depth < 4:
            time.sleep(0.005)
        recorder.release.set()
        for thread in [first] + threads:
            thread.join(30)
        for key, payloads in recorder.batches:
            assert set(payloads) <= {key, "x"}, (
                f"batch for {key!r} mixed keys: {payloads}"
            )
        coalescer.close()

    def test_max_batch_caps_a_drain(self):
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(
            recorder, window_ms=20, max_batch=2, max_queue=64
        )
        threads = [
            threading.Thread(target=coalescer.submit, args=("ds", i))
            for i in range(5)
        ]
        threads[0].start()
        assert recorder.started.wait(10)
        for thread in threads[1:]:
            thread.start()
        while coalescer.stats().queue_depth < 4:
            time.sleep(0.005)
        recorder.release.set()
        for thread in threads:
            thread.join(30)
        assert all(
            len(payloads) <= 2 for _, payloads in recorder.batches
        )
        coalescer.close()


class TestAdmissionControl:
    def test_sheds_when_queue_full(self):
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(
            recorder, window_ms=50, max_batch=8, max_queue=2
        )
        first = threading.Thread(target=coalescer.submit, args=("ds", 0))
        first.start()
        assert recorder.started.wait(10)
        fillers = [
            threading.Thread(target=coalescer.submit, args=("ds", i))
            for i in (1, 2)
        ]
        for thread in fillers:
            thread.start()
        while coalescer.stats().queue_depth < 2:
            time.sleep(0.005)
        with pytest.raises(ServiceOverloaded, match="queue full"):
            coalescer.submit("ds", 3)
        assert coalescer.stats().shed == 1
        recorder.release.set()
        for thread in [first] + fillers:
            thread.join(30)
        coalescer.close()


class TestErrors:
    def test_execute_error_fans_out_to_every_waiter(self):
        def explode(key, payloads):
            raise ValueError("boom")

        coalescer = RequestCoalescer(explode, window_ms=1)
        with pytest.raises(ValueError, match="boom"):
            coalescer.submit("ds", "x", timeout=30)
        assert coalescer.stats().failed == 1
        coalescer.close()

    def test_timeout_raises(self):
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(recorder, window_ms=1)
        first = threading.Thread(target=coalescer.submit, args=("ds", 0))
        first.start()
        assert recorder.started.wait(10)
        with pytest.raises(TimeoutError):
            coalescer.submit("ds", 1, timeout=0.05)
        recorder.release.set()
        first.join(30)
        coalescer.close()

    def test_timed_out_request_is_withdrawn_and_never_executed(self):
        recorder = Recorder(block=True)
        coalescer = RequestCoalescer(recorder, window_ms=1)
        first = threading.Thread(
            target=coalescer.submit, args=("ds", "first")
        )
        first.start()
        assert recorder.started.wait(10)
        with pytest.raises(TimeoutError):
            coalescer.submit("ds", "ghost", timeout=0.05)
        stats = coalescer.stats()
        assert stats.timed_out == 1
        assert stats.queue_depth == 0, (
            "abandoned request still occupies an admission slot"
        )
        recorder.release.set()
        first.join(30)
        coalescer.close()
        executed = [
            payload
            for _key, payloads in recorder.batches
            for payload in payloads
        ]
        assert "ghost" not in executed, (
            "worker burned an execution for an abandoned request"
        )


class TestStats:
    def test_stats_is_a_snapshot_copy(self):
        coalescer = RequestCoalescer(Recorder(), window_ms=1)
        coalescer.submit("ds", "x", timeout=30)
        stats = coalescer.stats()
        assert isinstance(stats, CoalescerStats)
        stats.submitted = 999  # mutating the copy must not leak back
        assert coalescer.stats().submitted == 1
        payload = coalescer.stats().as_dict()
        assert payload["mean_batch"] == 1.0
        assert payload["queue_depth"] == 0
        coalescer.close()
