"""Epoch-snapshot isolation: concurrent reads under a delta stream.

The black-box check (in the spirit of Huang et al.'s snapshot-isolation
checking): run queries on N threads while a writer commits a stream of
delta epochs, record which epoch each response claims to answer, then
recompute every epoch's ground truth offline with a one-shot engine
over that epoch's database snapshot.  **Every** response must equal its
claimed epoch's ground truth exactly — a torn read (some views from
epoch k, others from k+1) cannot match any committed snapshot.

Parametrized over the interpreter and compiled backends: the two
execute through different code paths (step-IR walk vs generated
functions), so both must honor the pinned-database epoch hook.
"""

import threading
import time

import numpy as np
import pytest

from repro import LMFAO, AnalyticsService, DeltaBatch

from ..engine.helpers import WORKLOADS, assert_results_equal

N_READERS = 4
QUERIES_PER_READER = 8
N_DELTAS = 6
WORKLOAD_NAMES = ("counts", "groupbys")


def sales_delta(database, rng, n=6):
    fact = database.relation("Sales")
    idx = rng.integers(0, fact.n_rows, n)
    inserts = {a: fact.column(a)[idx] for a in fact.schema.names}
    deletes = rng.choice(fact.n_rows, n, replace=False)
    return DeltaBatch("Sales", inserts=inserts, delete_indices=deletes)


@pytest.mark.timeout(300)
@pytest.mark.parametrize("backend", ["interpret", "compiled"])
def test_reads_under_writes_match_committed_epochs(toy_db, backend):
    service = AnalyticsService(
        coalesce_ms=2,
        max_batch=8,
        max_queue=256,
        cache_mb=8,
        backend=backend,
    )
    service.register_dataset("toy", toy_db)
    batches = {name: WORKLOADS[name]() for name in WORKLOAD_NAMES}
    for name, batch in batches.items():
        service.register_workload("toy", name, batch)

    snapshots = {0: service.snapshot("toy").database}
    responses = [[] for _ in range(N_READERS)]
    errors = []

    def writer():
        rng = np.random.default_rng(3)
        try:
            for _ in range(N_DELTAS):
                delta = sales_delta(
                    service.snapshot("toy").database, rng
                )
                committed = service.apply_delta("toy", delta)
                snapshots[committed.epoch] = service.snapshot(
                    "toy"
                ).database
                time.sleep(0.01)  # spread commits across the read storm
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    def reader(slot):
        rng = np.random.default_rng(100 + slot)
        try:
            for _ in range(QUERIES_PER_READER):
                k = int(rng.integers(1, len(WORKLOAD_NAMES) + 1))
                names = list(
                    rng.choice(WORKLOAD_NAMES, size=k, replace=False)
                )
                responses[slot].append(
                    service.query("toy", names, timeout=120)
                )
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(N_READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(240)
    service.close()
    assert not errors, errors
    assert service.epoch("toy") == N_DELTAS
    assert len(snapshots) == N_DELTAS + 1

    # offline ground truth: one fresh single-shot engine per epoch
    ground = {
        epoch: {
            name: LMFAO(database).run(batch)
            for name, batch in batches.items()
        }
        for epoch, database in snapshots.items()
    }

    observed_epochs = set()
    n_checked = 0
    for reader_responses in responses:
        assert len(reader_responses) == QUERIES_PER_READER
        for response in reader_responses:
            assert response.epoch in ground, (
                f"response claims uncommitted epoch {response.epoch}"
            )
            observed_epochs.add(response.epoch)
            for name, result in response.results.items():
                assert_results_equal(
                    result,
                    ground[response.epoch][name],
                    batches[name],
                    rtol=1e-8,
                )
                n_checked += 1
    assert n_checked >= N_READERS * QUERIES_PER_READER
    # the stream must actually have interleaved: reads landed on more
    # than one committed version
    assert len(observed_epochs) >= 2, (
        f"stress saw only epochs {observed_epochs}; writer/readers "
        "never overlapped"
    )
