"""AnalyticsService: registry, queries, epochs, delta commits, stats."""

import threading

import numpy as np
import pytest

from repro import LMFAO, AnalyticsService, DeltaBatch
from repro.server.service import Epoch, QueryResponse

from ..engine.helpers import WORKLOADS, assert_results_equal


@pytest.fixture()
def service(toy_db):
    svc = AnalyticsService(coalesce_ms=2, cache_mb=8)
    svc.register_dataset("toy", toy_db)
    for name, factory in WORKLOADS.items():
        svc.register_workload("toy", name, factory())
    yield svc
    svc.close()


def sales_delta(database, rng, n=5):
    """A small insert+retract batch against the toy fact relation."""
    fact = database.relation("Sales")
    idx = rng.integers(0, fact.n_rows, n)
    inserts = {a: fact.column(a)[idx] for a in fact.schema.names}
    deletes = rng.choice(fact.n_rows, n, replace=False)
    return DeltaBatch("Sales", inserts=inserts, delete_indices=deletes)


class TestRegistry:
    def test_duplicate_dataset_rejected(self, service, toy_db):
        with pytest.raises(ValueError, match="already registered"):
            service.register_dataset("toy", toy_db)

    def test_duplicate_workload_rejected(self, service):
        with pytest.raises(ValueError, match="already registered"):
            service.register_workload("toy", "counts", WORKLOADS["counts"]())

    def test_unknown_dataset_raises(self, service):
        with pytest.raises(KeyError, match="no dataset"):
            service.query("nope", ["counts"])

    def test_unknown_workload_raises(self, service):
        from repro.server.service import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError, match="no workload") as e:
            service.query("toy", ["nope"])
        assert e.value.valid == service.workload_names("toy")

    def test_empty_workloads_raises(self, service):
        with pytest.raises(ValueError, match="at least one"):
            service.query("toy", [])

    def test_catalog(self, service):
        assert service.datasets() == ["toy"]
        assert service.workload_names("toy") == list(WORKLOADS)
        assert service.epoch("toy") == 0
        snapshot = service.snapshot("toy")
        assert isinstance(snapshot, Epoch) and snapshot.number == 0


@pytest.mark.timeout(120)
class TestQueries:
    def test_results_match_oneshot_engine(self, service, toy_db):
        response = service.query("toy", ["counts", "groupbys"], timeout=60)
        assert isinstance(response, QueryResponse)
        assert response.epoch == 0
        assert set(response.results) == {"counts", "groupbys"}
        for name in ("counts", "groupbys"):
            batch = service._state("toy").workloads[name]
            expected = LMFAO(toy_db).run(batch)
            assert_results_equal(
                response.results[name], expected, batch, rtol=1e-8
            )

    def test_concurrent_requests_coalesce_onto_one_epoch(self, toy_db):
        # a generous window so even a slow CI machine gets every thread
        # submitted before the first batch drains
        with AnalyticsService(coalesce_ms=250, max_batch=6) as svc:
            svc.register_dataset("toy", toy_db)
            for name in ("counts", "covar_style"):
                svc.register_workload("toy", name, WORKLOADS[name]())
            responses = [None] * 6

            def go(i):
                names = ["counts"] if i % 2 else ["counts", "covar_style"]
                responses[i] = svc.query("toy", names, timeout=60)

            threads = [
                threading.Thread(target=go, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert all(r is not None for r in responses)
            # every coalesced answer names one committed epoch
            assert {r.epoch for r in responses} == {0}
            assert max(r.batch_size for r in responses) >= 2

    def test_requested_subset_is_what_comes_back(self, service):
        response = service.query("toy", ["conditional"], timeout=60)
        assert list(response.results) == ["conditional"]


@pytest.mark.timeout(120)
class TestDeltas:
    def test_delta_commits_new_epoch_and_updates_answers(
        self, service, toy_db
    ):
        rng = np.random.default_rng(7)
        before = service.query("toy", ["counts"], timeout=60)
        delta = sales_delta(toy_db, rng)
        committed = service.apply_delta("toy", delta)
        assert committed.epoch == 1
        assert service.epoch("toy") == 1
        after = service.query("toy", ["counts"], timeout=60)
        assert after.epoch == 1
        batch = service._state("toy").workloads["counts"]
        expected = LMFAO(service.snapshot("toy").database).run(batch)
        assert_results_equal(after.results["counts"], expected, batch,
                             rtol=1e-8)
        # the pre-delta response is untouched: it answered epoch 0
        assert before.epoch == 0

    def test_empty_delta_does_not_bump_the_epoch(self, service):
        response = service.apply_delta(
            "toy", DeltaBatch("Sales", inserts=None, delete_indices=None)
        )
        assert response.epoch == 0
        assert response.report.n_changes == 0

    def test_epoch_snapshot_survives_later_commits(self, service, toy_db):
        rng = np.random.default_rng(11)
        old = service.snapshot("toy")
        service.apply_delta("toy", sales_delta(toy_db, rng))
        new = service.snapshot("toy")
        assert old.number == 0 and new.number == 1
        assert old.database is not new.database
        # the captured epoch still reads the pre-delta row count
        assert old.database.relation("Sales").n_rows == 300


class TestStats:
    def test_stats_shape(self, service):
        service.query("toy", ["counts"], timeout=60)
        stats = service.stats()
        assert stats["coalescer"]["submitted"] == 1
        toy = stats["datasets"]["toy"]
        assert toy["epoch"] == 0
        assert toy["relations"]["Sales"] == 300
        assert toy["workloads"] == list(WORKLOADS)
        assert toy["queries"] == 1 and toy["deltas"] == 0
        assert toy["cache"]["budget_bytes"] == 8 << 20
        assert set(toy["cache"]) >= {
            "hits", "misses", "evictions", "resident_bytes", "entries",
        }

    def test_cache_disabled(self, toy_db):
        with AnalyticsService(coalesce_ms=0, cache_mb=0) as svc:
            svc.register_dataset("toy", toy_db)
            svc.register_workload("toy", "counts", WORKLOADS["counts"]())
            response = svc.query("toy", ["counts"], timeout=60)
            assert response.epoch == 0
            assert svc.stats()["datasets"]["toy"]["cache"] is None
