"""AnalyticsClient bounded retry on 503 + Retry-After."""

import json
import threading
import time
import urllib.error
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server import AnalyticsClient, ClientError

pytestmark = pytest.mark.timeout(60)


class FlakyHandler(BaseHTTPRequestHandler):
    """Sheds the first ``shed_count`` requests with 503, then answers."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: A002
        pass

    def _respond(self, status, payload, retry_after=None):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        state = self.server.state  # type: ignore[attr-defined]
        with state["lock"]:
            state["requests"] += 1
            drop = state["requests"] <= state.get("drop_count", 0)
            shed = state["requests"] <= state["shed_count"]
        if drop:
            # slam the connection shut without a response: the client
            # sees a transport failure, not an HTTP error
            self.close_connection = True
            self.connection.close()
            return
        if self.path != "/healthz":
            self._respond(404, {"error": f"no route {self.path!r}"})
        elif shed:
            self._respond(
                503,
                {"error": "queue full; retry later"},
                retry_after=state["retry_after"],
            )
        else:
            self._respond(200, {"status": "ok"})


@pytest.fixture(scope="module")
def shared_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), FlakyHandler)
    server.state = {}
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture()
def flaky_server(shared_server):
    shared_server.state.clear()
    shared_server.state.update(
        {
            "lock": threading.Lock(),
            "requests": 0,
            "shed_count": 0,
            "drop_count": 0,
            "retry_after": "0.01",
        }
    )
    return shared_server


def client_for(server, **kwargs):
    _host, port = server.server_address[:2]
    return AnalyticsClient("127.0.0.1", port, **kwargs)


class TestRetryAfter:
    def test_default_fails_immediately_on_503(self, flaky_server):
        flaky_server.state["shed_count"] = 1
        client = client_for(flaky_server)
        with pytest.raises(ClientError) as info:
            client.healthz()
        assert info.value.status == 503
        assert info.value.retry_after == pytest.approx(0.01)
        assert flaky_server.state["requests"] == 1

    def test_bounded_retries_then_success(self, flaky_server):
        flaky_server.state["shed_count"] = 2
        client = client_for(flaky_server, retries=3)
        assert client.healthz() == {"status": "ok"}
        assert flaky_server.state["requests"] == 3

    def test_retries_exhausted_reraises_503(self, flaky_server):
        flaky_server.state["shed_count"] = 10
        client = client_for(flaky_server, retries=2)
        with pytest.raises(ClientError) as info:
            client.healthz()
        assert info.value.status == 503
        assert flaky_server.state["requests"] == 3  # 1 try + 2 retries

    def test_retry_after_header_is_honored(self, flaky_server):
        flaky_server.state["shed_count"] = 1
        flaky_server.state["retry_after"] = "0.2"
        client = client_for(flaky_server, retries=1)
        start = time.monotonic()
        client.healthz()
        assert time.monotonic() - start >= 0.2

    def test_retry_after_clamped_to_cap(self, flaky_server):
        flaky_server.state["shed_count"] = 1
        flaky_server.state["retry_after"] = "3600"
        client = client_for(
            flaky_server, retries=1, max_retry_after=0.05
        )
        start = time.monotonic()
        client.healthz()
        assert time.monotonic() - start < 2.0

    def test_unparsable_retry_after_defaults(self, flaky_server):
        flaky_server.state["shed_count"] = 1
        flaky_server.state["retry_after"] = "later"
        client = client_for(
            flaky_server, retries=1, max_retry_after=0.05
        )
        assert client.healthz() == {"status": "ok"}

    def test_non_503_errors_never_retry(self, flaky_server):
        client = client_for(flaky_server, retries=5)
        with pytest.raises(ClientError) as info:
            client._request("GET", "/not-a-route")
        assert info.value.status == 404
        assert flaky_server.state["requests"] == 1


class TestConnectionErrorRetry:
    """Transport failures retry under the same bounded budget as 503."""

    def test_dropped_connection_retries_then_success(self, flaky_server):
        flaky_server.state["drop_count"] = 2
        client = client_for(
            flaky_server, retries=3, max_retry_after=0.01
        )
        assert client.healthz() == {"status": "ok"}
        assert flaky_server.state["requests"] == 3

    def test_default_fails_immediately_on_drop(self, flaky_server):
        flaky_server.state["drop_count"] = 1
        client = client_for(flaky_server)
        with pytest.raises((ConnectionError, urllib.error.URLError)):
            client.healthz()
        assert flaky_server.state["requests"] == 1
        # the connection error was transient; the next call succeeds
        assert client.healthz() == {"status": "ok"}

    def test_exhausted_budget_reraises_transport_error(
        self, flaky_server
    ):
        flaky_server.state["drop_count"] = 10
        client = client_for(
            flaky_server, retries=2, max_retry_after=0.01
        )
        with pytest.raises((ConnectionError, urllib.error.URLError)):
            client.healthz()
        assert flaky_server.state["requests"] == 3  # 1 try + 2 retries

    def test_connection_refused_is_retryable(self, flaky_server):
        # bind-then-close leaves a port nothing listens on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = AnalyticsClient(
            "127.0.0.1", port, retries=1, max_retry_after=0.01
        )
        with pytest.raises((ConnectionError, urllib.error.URLError)):
            client.healthz()

    def test_budget_is_shared_across_failure_kinds(self, flaky_server):
        # request 1 drops the connection, request 2 sheds with 503,
        # request 3 succeeds — one budget covers the mix
        flaky_server.state["drop_count"] = 1
        flaky_server.state["shed_count"] = 2
        client = client_for(
            flaky_server, retries=2, max_retry_after=0.01
        )
        assert client.healthz() == {"status": "ok"}
        assert flaky_server.state["requests"] == 3

    def test_http_errors_still_map_to_client_error(self, flaky_server):
        # HTTPError subclasses URLError: the transport clause must not
        # swallow real HTTP responses
        client = client_for(flaky_server, retries=1, max_retry_after=0.01)
        with pytest.raises(ClientError) as info:
            client._request("GET", "/not-a-route")
        assert info.value.status == 404
        assert flaky_server.state["requests"] == 1
