"""Figure 5 — the optimization ladder ablation for the covar matrix.

Starting from the AC/DC proxy (no optimizations) the layers are enabled
one by one: compilation, multi-output (merging+grouping), multi-root,
and parallelization with 4 threads.  The paper's shape: every step adds
speedup >= ~1x on every dataset, with compilation and multi-output
contributing most.  ``results/figure5.txt`` holds the ladder.
"""

import pytest

from repro import LMFAO
from repro.baselines import FIGURE5_LADDER

from .common import DATASET_NAMES, PAPER_FIGURE5, Report, covar_workload, dataset

pytestmark = pytest.mark.slow

_measured = {}


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("step", range(len(FIGURE5_LADDER)))
def test_ladder_step(benchmark, name, step):
    ds = dataset(name)
    config_name, kwargs = FIGURE5_LADDER[step]
    engine = LMFAO(ds.database, ds.join_tree, **kwargs)
    batch = covar_workload(ds)
    engine.plan(batch)  # exclude planning/compilation from the timing
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(result) == len(batch)
    _measured[(name, step)] = benchmark.stats["mean"]


def test_zz_figure5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "figure5",
        f"{'dataset':10}{'configuration':32}{'seconds':>9}"
        f"{'step speedup':>13}{'paper step':>11}",
    )
    for name in DATASET_NAMES:
        previous = None
        for step, (config_name, _) in enumerate(FIGURE5_LADDER):
            seconds = _measured.get((name, step))
            if seconds is None:
                continue
            step_speedup = (previous / seconds) if previous else 1.0
            paper_step = PAPER_FIGURE5[name][step]
            report.add(
                f"{name:10}{config_name:32}{seconds:>9.4f}"
                f"{step_speedup:>12.2f}x{paper_step:>10.1f}x"
            )
            previous = seconds
        # shape check: the fully optimized engine beats the proxy
        first = _measured.get((name, 0))
        # compare against the best serial configuration; thread overhead
        # can dominate at laptop scale, exactly as the paper's 4-core
        # numbers are its smallest factor
        best = min(
            _measured.get((name, s), float("inf"))
            for s in range(len(FIGURE5_LADDER))
        )
        if first is not None and best != float("inf"):
            assert best <= first, f"no optimization gain on {name}"
    path = report.write()
    print(f"\nwrote {path}")
