"""Table 1 — dataset characteristics, paper vs this reproduction.

Benchmarks the join materialization per dataset (the quantity behind the
"size of join result" row that two-step solutions must pay for) and
writes ``results/table1.txt`` with the side-by-side characteristics.
"""

import pytest

from repro import materialize_join

from .common import DATASET_NAMES, PAPER_TABLE1, Report, dataset

pytestmark = pytest.mark.slow

_measured = {}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_join_materialization(benchmark, name):
    ds = dataset(name)
    flat = benchmark.pedantic(
        lambda: materialize_join(ds.database),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    summary = ds.summary()
    summary["join_tuples"] = flat.n_rows
    summary["join_mb"] = flat.nbytes() / 1e6
    _measured[name] = summary
    # Table 1's Yelp signature: the join result exceeds the database
    if name == "yelp":
        assert flat.n_rows > ds.database.total_tuples()


def test_zz_table1_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "table1",
        f"{'':14}{'paper tuples':>14}{'ours':>10}{'paper join':>12}"
        f"{'ours':>10}{'rel':>5}{'attrs':>7}{'cat':>5}",
    )
    for name in DATASET_NAMES:
        paper = PAPER_TABLE1[name]
        ours = _measured.get(name)
        if ours is None:
            continue
        report.add(
            f"{name:14}{paper['tuples']:>14}{ours['tuples']:>10}"
            f"{paper['join_tuples']:>12}{ours['join_tuples']:>10}"
            f"{ours['relations']:>5}{ours['attributes']:>7}"
            f"{ours['categorical']:>5}"
        )
        assert ours["relations"] == paper["relations"]
    path = report.write()
    print(f"\nwrote {path}")
