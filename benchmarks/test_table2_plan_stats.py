"""Table 2 — aggregates (A+I), views (V) and groups (G) per workload.

These statistics are pure plan-shape quantities: they depend on schema
and workload, not on data scale, so this is the most directly comparable
table of the reproduction.  Benchmarks the planning (optimization) time
and writes ``results/table2.txt``.
"""

import pytest

from .common import (
    DATASET_NAMES,
    PAPER_TABLE2,
    Report,
    covar_workload,
    cube_workload,
    dataset,
    mi_workload,
    rt_node_workload,
)

pytestmark = pytest.mark.slow

WORKLOADS = ["covar", "rt_node", "mi", "cube"]

_measured = {}


def build_batch(workload, name, engine):
    ds = dataset(name)
    if workload == "covar":
        return covar_workload(ds)
    if workload == "rt_node":
        return rt_node_workload(ds, engine)
    if workload == "mi":
        return mi_workload(ds)
    return cube_workload(ds)


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_planning(benchmark, workload, name, lmfao_engine):
    engine = lmfao_engine(name)
    batch = build_batch(workload, name, engine)

    def plan_fresh():
        engine._plan_cache.clear()
        return engine.plan(batch)

    plan = benchmark.pedantic(plan_fresh, rounds=2, iterations=1)
    stats = plan.statistics
    _measured[(workload, name)] = stats
    # invariants that must hold at any scale
    assert stats.n_views >= 1
    assert stats.n_groups >= 1
    assert stats.n_application_aggregates == batch.n_application_aggregates


def test_zz_table2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "table2",
        f"{'workload':10}{'dataset':10}{'paper A+I':>14}{'ours A+I':>14}"
        f"{'paper V':>9}{'ours V':>8}{'paper G':>9}{'ours G':>8}",
    )
    for workload in WORKLOADS:
        for name in DATASET_NAMES:
            stats = _measured.get((workload, name))
            if stats is None:
                continue
            a, i, v, g = PAPER_TABLE2[(workload, name)]
            report.add(
                f"{workload:10}{name:10}"
                f"{f'{a}+{i}':>14}"
                f"{f'{stats.n_application_aggregates}+{stats.n_intermediate_aggregates}':>14}"
                f"{v:>9}{stats.n_views:>8}{g:>9}{stats.n_groups:>8}"
            )
    path = report.write()
    print(f"\nwrote {path}")
