"""Incremental maintenance vs full re-evaluation (the IVM micro-benchmark).

For each bundled dataset this applies insert deltas of 1%/10%/50% of the
fact relation against a materialized covar workload and compares

* ``IncrementalEngine.apply_delta`` (delta run over the delta partition
  + distributive merge into the cached views), against
* full re-evaluation of the same plan over the updated database
  (planning/compilation excluded from both sides).

Expected shape: maintenance cost scales with the delta, not the
database, so the speedup is largest at 1% and decays toward parity as
the delta approaches the relation size.  The hard acceptance bar is a
>=5x speedup at 1% on the largest bundled dataset; ``results/ivm.txt``
holds the full grid.
"""

import time

import numpy as np
import pytest

from repro import DeltaBatch, IncrementalEngine

from .common import DATASET_NAMES, Report, covar_workload, dataset

pytestmark = pytest.mark.slow

DELTA_FRACTIONS = [0.01, 0.10, 0.50]

_measured = {}


def largest_dataset_name() -> str:
    return max(
        DATASET_NAMES, key=lambda n: dataset(n).database.total_tuples()
    )


def sample_inserts(rng, relation, n):
    idx = rng.integers(0, relation.n_rows, n)
    return {a: relation.column(a)[idx] for a in relation.schema.names}


@pytest.mark.parametrize("fraction", DELTA_FRACTIONS)
@pytest.mark.parametrize("name", DATASET_NAMES)
def test_delta_vs_full(name, fraction):
    ds = dataset(name)
    engine = IncrementalEngine(ds.database, ds.join_tree)
    batch = covar_workload(ds)
    engine.run(batch)  # materialize views; plan+compile cached

    rng = np.random.default_rng(42)
    t_incremental = []
    for _ in range(3):
        fact = engine.database.relation(engine.root)
        n_delta = max(1, int(fact.n_rows * fraction))
        report = engine.apply_delta(
            DeltaBatch.insert(
                engine.root, sample_inserts(rng, fact, n_delta)
            )
        )
        assert report.all_incremental, report
        t_incremental.append(report.batches[0].seconds)

    t_full = []
    for _ in range(3):
        # refresh() re-executes the cached plan from scratch — the exact
        # work apply_delta avoids (planning/compilation cached on both
        # sides)
        t0 = time.perf_counter()
        engine.refresh()
        t_full.append(time.perf_counter() - t0)

    incremental_s = min(t_incremental)
    full_s = min(t_full)
    speedup = full_s / incremental_s
    _measured[(name, fraction)] = (incremental_s, full_s, speedup)
    # maintenance must never cost meaningfully more than recomputation
    assert speedup > 0.5, (
        f"{name} @ {fraction:.0%}: incremental {incremental_s:.4f}s vs "
        f"full {full_s:.4f}s"
    )


def test_zz_speedup_floor_and_report():
    report = Report(
        "ivm",
        f"{'dataset':10}{'delta':>7}{'incremental s':>15}{'full s':>10}"
        f"{'speedup':>9}",
    )
    for name in DATASET_NAMES:
        for fraction in DELTA_FRACTIONS:
            if (name, fraction) not in _measured:
                continue
            inc_s, full_s, speedup = _measured[(name, fraction)]
            report.add(
                f"{name:10}{fraction:>6.0%}{inc_s:>15.5f}{full_s:>10.5f}"
                f"{speedup:>8.1f}x"
            )
    path = report.write()
    print(f"\nwrote {path}")
    largest = largest_dataset_name()
    if (largest, 0.01) in _measured:
        _, _, speedup = _measured[(largest, 0.01)]
        assert speedup >= 5.0, (
            f"1% delta on {largest} only {speedup:.1f}x faster than full "
            "re-evaluation"
        )
