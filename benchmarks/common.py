"""Shared benchmark infrastructure.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Section 4).  Paper reference numbers are embedded below so
every report shows *paper vs measured* side by side.  Absolute times are
not comparable (the paper ran a C++ engine on 87-125M row datasets; we
run NumPy kernels on synthetic data at laptop scale) — the reproduction
target is the *shape*: who wins, by roughly what factor, and where the
layers contribute.

Scale via ``REPRO_BENCH_SCALE`` (default 0.3).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.datasets import favorita, retailer, tpcds, yelp
from repro.ml import CovarBatch, build_cube_batch, build_mi_batch
from repro.ml.trees import CARTLearner
from repro.query.aggregates import Aggregate
from repro.query.query import Query, QueryBatch

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
DATASET_NAMES = ["retailer", "favorita", "yelp", "tpcds"]

_GENERATORS = {
    "retailer": retailer,
    "favorita": favorita,
    "yelp": yelp,
    "tpcds": tpcds,
}
_CACHE: Dict[str, object] = {}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def dataset(name: str):
    """Session-cached dataset instance at benchmark scale."""
    if name not in _CACHE:
        _CACHE[name] = _GENERATORS[name](scale=BENCH_SCALE)
    return _CACHE[name]


def regression_label(ds) -> str:
    """A continuous label for covar/RT workloads on every dataset."""
    if ds.database.attribute_kind(ds.label) == "continuous":
        return ds.label
    return ds.continuous_features[0]


# ---------------------------------------------------------------------------
# The Table 2 / Table 3 workload batches
# ---------------------------------------------------------------------------


def count_batch() -> QueryBatch:
    return QueryBatch([Query("count", [], [Aggregate.count()])])


def covar_workload(ds) -> QueryBatch:
    label = regression_label(ds)
    continuous = [f for f in ds.continuous_features if f != label]
    return CovarBatch(continuous, ds.categorical_features, label).batch


def rt_node_workload(ds, engine) -> QueryBatch:
    """The regression-tree-node batch (root node, all split candidates)."""
    label = regression_label(ds)
    continuous = [f for f in ds.continuous_features if f != label]
    learner = CARTLearner(
        engine,
        continuous,
        ds.categorical_features,
        label,
        "regression",
        n_buckets=20,
    )
    return learner.node_batch([])


def mi_workload(ds) -> QueryBatch:
    return build_mi_batch(ds.discrete_attrs)


def cube_workload(ds) -> QueryBatch:
    return build_cube_batch(ds.cube_dimensions, ds.cube_measures)


# ---------------------------------------------------------------------------
# Paper reference numbers (for paper-vs-measured reports)
# ---------------------------------------------------------------------------

#: Table 1 — dataset characteristics as published
PAPER_TABLE1 = {
    "retailer": dict(tuples="87M", size="1.5GB", join_tuples="86M",
                     join_size="18GB", relations=5, attributes=43,
                     categorical=5),
    "favorita": dict(tuples="125M", size="2.5GB", join_tuples="127M",
                     join_size="7GB", relations=6, attributes=18,
                     categorical=15),
    "yelp": dict(tuples="8.7M", size="0.2GB", join_tuples="360M",
                 join_size="40GB", relations=5, attributes=37,
                 categorical=11),
    "tpcds": dict(tuples="30M", size="3.4GB", join_tuples="28M",
                  join_size="9GB", relations=10, attributes=85,
                  categorical=26),
}

#: Table 2 — (A, I, V, G) per workload x dataset as published
PAPER_TABLE2 = {
    ("covar", "retailer"): (814, 654, 34, 7),
    ("covar", "favorita"): (140, 46, 125, 9),
    ("covar", "yelp"): (730, 309, 99, 8),
    ("covar", "tpcds"): (3061, 590, 286, 14),
    ("rt_node", "retailer"): (3141, 16, 19, 9),
    ("rt_node", "favorita"): (270, 20, 26, 11),
    ("rt_node", "yelp"): (1392, 16, 22, 9),
    ("rt_node", "tpcds"): (4299, 138, 52, 17),
    ("mi", "retailer"): (56, 22, 78, 8),
    ("mi", "favorita"): (106, 35, 141, 9),
    ("mi", "yelp"): (172, 64, 236, 9),
    ("mi", "tpcds"): (301, 95, 396, 15),
    ("cube", "retailer"): (40, 8, 12, 5),
    ("cube", "favorita"): (40, 7, 13, 6),
    ("cube", "yelp"): (40, 7, 13, 5),
    ("cube", "tpcds"): (40, 12, 17, 10),
}

#: Table 3 — seconds for (LMFAO, DBX, MonetDB) as published
PAPER_TABLE3 = {
    ("count", "retailer"): (0.80, 2.38, 3.75),
    ("count", "favorita"): (0.97, 4.04, 8.11),
    ("count", "yelp"): (0.68, 2.53, 4.37),
    ("count", "tpcds"): (5.01, 2.84, 2.84),
    ("covar", "retailer"): (11.87, 2647.36, 3081.02),
    ("covar", "favorita"): (38.11, 773.46, 1354.47),
    ("covar", "yelp"): (108.81, 2971.88, 5840.18),
    ("covar", "tpcds"): (274.55, 9454.31, 9234.01),
    ("rt_node", "retailer"): (1.80, 3134.67, 3395.00),
    ("rt_node", "favorita"): (3.49, 431.11, 674.06),
    ("rt_node", "yelp"): (8.83, 2409.59, 13489.20),
    ("rt_node", "tpcds"): (105.66, 2480.49, 3085.60),
    ("mi", "retailer"): (30.05, 178.03, 297.30),
    ("mi", "favorita"): (111.68, 596.01, 1088.31),
    ("mi", "yelp"): (345.35, 794.00, 1952.02),
    ("mi", "tpcds"): (252.96, 1002.84, 1032.17),
    ("cube", "retailer"): (15.47, 100.08, 111.08),
    ("cube", "favorita"): (22.85, 273.10, 561.03),
    ("cube", "yelp"): (23.75, 156.67, 260.39),
    ("cube", "tpcds"): (15.65, 66.12, 74.38),
}

#: Figure 5 — published per-layer speedups (relative to previous bar)
PAPER_FIGURE5 = {
    "retailer": [1.0, 15.0, 7.0, 1.0, 2.0],
    "favorita": [1.0, 1.4, 4.0, 1.4, 2.0],
    "yelp": [1.0, 2.0, 5.0, 2.0, 3.0],
    "tpcds": [1.0, 2.0, 4.0, 2.0, 1.4],
}

#: Table 4 — published seconds
PAPER_TABLE4 = {
    "retailer": dict(join=152.06, shuffle=5488.73, export=351.76,
                     lr_tf=7249.58, lr_madlib=5423.05, lr_acdc=110.88,
                     lr_lmfao=6.08, rt_tf=7773.80, rt_madlib=13639.84,
                     rt_lmfao=21.28),
    "favorita": dict(join=129.32, shuffle=1720.02, export=241.03,
                     lr_tf=4812.01, lr_madlib=19445.58, lr_acdc=364.17,
                     lr_lmfao=21.23, rt_tf=20368.73, rt_madlib=19839.12,
                     rt_lmfao=37.48),
}

#: Table 5 — published seconds
PAPER_TABLE5 = dict(join=219.04, export=350.02, ct_tf=10643.18,
                    ct_madlib=34717.63, ct_lmfao=720.86)


# ---------------------------------------------------------------------------
# Report writing
# ---------------------------------------------------------------------------


class Report:
    """Collects rows during a benchmark module and writes a text report."""

    def __init__(self, name: str, header: str):
        self.name = name
        self.lines: List[str] = [header, "-" * len(header)]

    def add(self, line: str) -> None:
        self.lines.append(line)

    def write(self) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write("\n".join(self.lines) + "\n")
        return path
