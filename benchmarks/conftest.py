"""Benchmark fixtures: cached datasets and engines."""

import pytest

from repro import LMFAO
from repro.baselines import MaterializedEngine

from .common import DATASET_NAMES, dataset


@pytest.fixture(scope="session", params=DATASET_NAMES)
def bench_dataset(request):
    return dataset(request.param)


_ENGINES = {}
_BASELINES = {}


@pytest.fixture(scope="session")
def lmfao_engine():
    def get(name):
        if name not in _ENGINES:
            ds = dataset(name)
            _ENGINES[name] = LMFAO(ds.database, ds.join_tree)
        return _ENGINES[name]

    return get


@pytest.fixture(scope="session")
def materialized_engine():
    def get(name):
        if name not in _BASELINES:
            ds = dataset(name)
            _BASELINES[name] = MaterializedEngine(
                ds.database, materialize_now=True
            )
        return _BASELINES[name]

    return get
