"""Durable storage benchmark: warm restart vs cold load + recompute.

The scenario the subsystem exists for: ``repro serve`` restarts.  A
*cold* boot pays a CSV load of the database plus a full recompute of
the workload's view DAG; a *warm* boot loads the columnar snapshot and
serves the view DAG from the persistent cache tier.  Measured on
retailer at benchmark scale:

* ``warm_restart_speedup`` — (CSV load + full compute) / (snapshot
  load + cache-served compute); acceptance bar >= 3x;
* ``snapshot_vs_csv_load`` — pure data-load ratio, recorded.

Numbers land in ``BENCH_storage.json`` at the repo root *before* the
bar asserts, so a regression still leaves the measurement behind.
Correctness rides along: warm results must equal cold results.
"""

import json
import os
import shutil
import tempfile
import time

import pytest

from repro import CacheStore, LMFAO, ViewCache, load_snapshot, write_snapshot
from repro.data.loader import load_database, save_database

from tests.engine.helpers import assert_results_equal

from .common import BENCH_SCALE, Report, covar_workload, dataset

pytestmark = pytest.mark.slow

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_storage.json")

REPEATS = 3
WARM_RESTART_BAR = 3.0
CACHE_BUDGET = 512 << 20


def best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_storage_benchmark():
    ds = dataset("retailer")
    batch = covar_workload(ds)
    workdir = tempfile.mkdtemp(prefix="repro-bench-storage-")
    csv_dir = os.path.join(workdir, "csv")
    snap_dir = os.path.join(workdir, "snap")
    cache_dir = os.path.join(workdir, "cache")
    try:
        save_database(ds.database, csv_dir)
        write_snapshot(ds.database, snap_dir)

        # -- data-load comparison: CSV vs columnar snapshot -----------
        t_csv, db_csv = best_of(
            REPEATS, lambda: load_database(csv_dir, name="retailer")
        )
        t_snap, (db_snap, _info) = best_of(
            REPEATS, lambda: load_snapshot(snap_dir)
        )

        # -- cold boot: full recompute over the CSV-loaded database ---
        engine_cold = LMFAO(db_csv, ds.join_tree)
        engine_cold.plan(batch)  # plan+compile untimed on both sides
        t_cold_exec, cold_results = best_of(
            REPEATS, lambda: engine_cold.run(batch)
        )

        # -- warm boot: snapshot + persistent cache tier ---------------
        store = CacheStore(cache_dir)
        engine_warm = LMFAO(db_snap, ds.join_tree)
        engine_warm.plan(batch)
        # populate the tier once (the previous process's lifetime)
        engine_warm.view_cache = ViewCache(
            budget_bytes=CACHE_BUDGET, store=store
        )
        engine_warm.run(batch)
        spilled_entries = len(store)
        spilled_bytes = store.spilled_bytes
        assert spilled_entries > 0

        def warm_run():
            # a restarted process: empty memory tier, populated disk
            engine_warm.view_cache = ViewCache(
                budget_bytes=CACHE_BUDGET, store=store
            )
            return engine_warm.run(batch)

        t_warm_exec, warm_results = best_of(REPEATS, warm_run)
        warm_report = warm_results.cache_report
        assert warm_report is not None
        assert warm_report.n_misses == 0, warm_report
        assert engine_warm.view_cache.stats().warm_hits > 0

        # correctness rides along
        assert_results_equal(warm_results, cold_results, batch)

        t_cold = t_csv + t_cold_exec
        t_warm = t_snap + t_warm_exec
        warm_speedup = t_cold / t_warm
        load_ratio = t_csv / t_snap

        payload = {
            "dataset": "retailer",
            "scale": BENCH_SCALE,
            "workload": "covar",
            "csv_load_s": round(t_csv, 4),
            "snapshot_load_s": round(t_snap, 4),
            "snapshot_vs_csv_load": round(load_ratio, 2),
            "cold_exec_s": round(t_cold_exec, 4),
            "warm_exec_s": round(t_warm_exec, 4),
            "cold_restart_s": round(t_cold, 4),
            "warm_restart_s": round(t_warm, 4),
            "warm_restart_speedup": round(warm_speedup, 2),
            "warm_restart_bar": WARM_RESTART_BAR,
            "spilled_entries": spilled_entries,
            "spilled_bytes": spilled_bytes,
            "warm_hits": warm_report.n_hits,
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

        report = Report(
            "storage",
            f"Durable storage: warm restart vs cold (retailer, "
            f"scale {BENCH_SCALE})",
        )
        report.add(
            f"data load: CSV {t_csv:.4f}s vs snapshot {t_snap:.4f}s "
            f"= {load_ratio:.1f}x"
        )
        report.add(
            f"cold restart (CSV + recompute): {t_cold:.4f}s"
        )
        report.add(
            f"warm restart (snapshot + cache tier): {t_warm:.4f}s "
            f"({warm_report.n_hits} warm hits, "
            f"{spilled_bytes / (1 << 20):.2f} MiB spilled)"
        )
        report.add(
            f"warm restart speedup: {warm_speedup:.1f}x "
            f"(bar >= {WARM_RESTART_BAR}x)"
        )
        path = report.write()
        print(f"\n[storage] report: {path}")
        print(json.dumps(payload, indent=2))

        assert warm_speedup >= WARM_RESTART_BAR, (
            f"warm restart only {warm_speedup:.2f}x over cold "
            f"(bar {WARM_RESTART_BAR}x): {payload}"
        )
        engine_cold.close()
        engine_warm.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
