"""Table 5 — classification trees over TPC-DS.

Benchmarks the join materialization, LMFAO's CART (Gini, depth 4) and
the brute-force CART over the materialized join.  Expected shape: LMFAO
learns the tree without materializing the join and faster than the
two-step baseline.  ``results/table5.txt`` holds paper-vs-measured.
"""

import pytest

from repro import materialize_join
from repro.baselines import brute_force_cart
from repro.ml import CARTLearner

from .common import PAPER_TABLE5, Report, dataset

pytestmark = pytest.mark.slow

TREE_PARAMS = dict(max_depth=4, min_samples_split=500, n_buckets=10)

_measured = {}


def features():
    ds = dataset("tpcds")
    continuous = ds.continuous_features[:6]
    categorical = [c for c in ds.categorical_features if c != ds.label][:6]
    return ds, continuous, categorical


def test_join_materialization(benchmark):
    ds, _, _ = features()
    flat = benchmark.pedantic(
        lambda: materialize_join(ds.database), rounds=2, iterations=1
    )
    assert flat.n_rows > 0
    _measured["join"] = benchmark.stats["mean"]


def test_classification_tree_lmfao(benchmark, lmfao_engine):
    ds, continuous, categorical = features()
    engine = lmfao_engine("tpcds")

    def train():
        learner = CARTLearner(
            engine, continuous, categorical, ds.label, "classification",
            **TREE_PARAMS,
        )
        return learner.fit()

    tree = benchmark.pedantic(train, rounds=1, iterations=1, warmup_rounds=1)
    assert tree.node_count() >= 1
    _measured["ct_lmfao"] = benchmark.stats["mean"]


def test_classification_tree_materialized(benchmark, materialized_engine):
    ds, continuous, categorical = features()
    flat = materialized_engine("tpcds").materialize()

    def train():
        return brute_force_cart(
            ds.database, continuous, categorical, ds.label,
            "classification", flat=flat, **TREE_PARAMS,
        )

    tree = benchmark.pedantic(train, rounds=1, iterations=1)
    assert tree.node_count() >= 1
    _measured["ct_materialized"] = benchmark.stats["mean"] + _measured.get(
        "join", 0.0
    )


def test_zz_table5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "table5",
        f"{'row':26}{'ours s':>10}{'paper s':>12}",
    )
    rows = [
        ("join (PSQL proxy)", "join", PAPER_TABLE5["join"]),
        ("CT materialized (MADlib)", "ct_materialized", PAPER_TABLE5["ct_madlib"]),
        ("CT LMFAO", "ct_lmfao", PAPER_TABLE5["ct_lmfao"]),
    ]
    for label, key, paper_value in rows:
        ours = _measured.get(key)
        report.add(
            f"{label:26}"
            f"{(f'{ours:.3f}' if ours is not None else '-'):>10}"
            f"{paper_value:>12.2f}"
        )
    path = report.write()
    print(f"\nwrote {path}")
    # shape: both runs complete; LMFAO never materializes the join while
    # learning (the architectural claim).  At NumPy scale the vectorized
    # flat-join CART can be faster in absolute terms — see EXPERIMENTS.md.
    assert "ct_lmfao" in _measured
