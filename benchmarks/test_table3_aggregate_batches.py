"""Table 3 — aggregate-batch computation: LMFAO vs the per-query baseline.

For each dataset and each workload (count, covar matrix, regression-tree
node, mutual information, data cube) this benchmarks

* LMFAO (all layers on), and
* the materialized-join baseline, which evaluates every query
  independently over the join — the paper's DBX/MonetDB stand-in.

The expected *shape* (paper Table 3): LMFAO wins everywhere except
possibly the bare count query (nothing to share), with the largest gaps
on covar and regression-tree batches.  ``results/table3.txt`` holds the
paper-vs-measured speedups.
"""

import time

import pytest

from .common import (
    DATASET_NAMES,
    PAPER_TABLE3,
    Report,
    count_batch,
    covar_workload,
    cube_workload,
    dataset,
    mi_workload,
    rt_node_workload,
)

pytestmark = pytest.mark.slow

WORKLOADS = ["count", "covar", "rt_node", "mi", "cube"]

_measured = {}


def build_batch(workload, name, engine):
    ds = dataset(name)
    if workload == "count":
        return count_batch()
    if workload == "covar":
        return covar_workload(ds)
    if workload == "rt_node":
        return rt_node_workload(ds, engine)
    if workload == "mi":
        return mi_workload(ds)
    return cube_workload(ds)


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_lmfao(benchmark, workload, name, lmfao_engine):
    engine = lmfao_engine(name)
    batch = build_batch(workload, name, engine)
    engine.plan(batch)  # plan+compile once, outside the timing (warm cache)
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(result) == len(batch)
    _measured[("lmfao", workload, name)] = benchmark.stats["mean"]


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_materialized_baseline(
    benchmark, workload, name, lmfao_engine, materialized_engine
):
    engine = materialized_engine(name)
    batch = build_batch(workload, name, lmfao_engine(name))
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(result) == len(batch)
    _measured[("baseline", workload, name)] = benchmark.stats["mean"]


def test_zz_table3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "table3",
        f"{'workload':10}{'dataset':10}{'lmfao s':>10}{'baseline s':>12}"
        f"{'speedup':>9}{'paper speedup (DBX)':>21}",
    )
    shape_checks = []
    for workload in WORKLOADS:
        for name in DATASET_NAMES:
            lmfao_s = _measured.get(("lmfao", workload, name))
            base_s = _measured.get(("baseline", workload, name))
            if lmfao_s is None or base_s is None:
                continue
            speedup = base_s / lmfao_s
            paper_lmfao, paper_dbx, _ = PAPER_TABLE3[(workload, name)]
            paper_speedup = paper_dbx / paper_lmfao
            report.add(
                f"{workload:10}{name:10}{lmfao_s:>10.4f}{base_s:>12.4f}"
                f"{speedup:>8.1f}x{paper_speedup:>20.1f}x"
            )
            if workload != "count":
                shape_checks.append((workload, name, speedup))
    path = report.write()
    print(f"\nwrote {path}")
    # reproduction shape: LMFAO wins each sharing-heavy workload overall
    # (geometric mean across datasets) and never loses badly on a single
    # cell (individual cells are noisy at laptop scale)
    import math

    by_workload = {}
    for workload, name, speedup in shape_checks:
        by_workload.setdefault(workload, []).append(speedup)
    for workload, speedups in by_workload.items():
        geo_mean = math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        )
        assert geo_mean > 1.0, (
            f"LMFAO loses workload {workload} overall: {speedups}"
        )
    badly_losing = [c for c in shape_checks if c[2] < 0.5]
    assert not badly_losing, f"LMFAO far behind on: {badly_losing}"
