"""Extra ablations for the design choices DESIGN.md calls out.

Beyond the paper's Figure 5 ladder, this sweeps each design dimension
independently (not cumulatively) on the covar workload:

* merge_mode: none / dedup / full   (how much view consolidation buys)
* group_views: off / on             (multi-output shared scans)
* input sorting: off / on           (attribute-order locality)
* threads: 1 / 2 / 4                (task+domain parallelism)

Writes ``results/ablation.txt``.
"""

import pytest

from repro import LMFAO

from .common import Report, covar_workload, dataset

pytestmark = pytest.mark.slow

DATASETS = ["retailer", "yelp"]

CONFIGS = [
    ("merge=none", dict(merge_mode="none")),
    ("merge=dedup", dict(merge_mode="dedup")),
    ("merge=full", dict(merge_mode="full")),
    ("groups=off", dict(group_views=False)),
    ("groups=on", dict(group_views=True)),
    ("sort=off", dict(sort_inputs=False)),
    ("sort=on", dict(sort_inputs=True)),
    ("threads=2", dict(n_threads=2)),
    ("threads=4", dict(n_threads=4)),
]

_measured = {}


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_design_choice(benchmark, name, config_index):
    ds = dataset(name)
    label, kwargs = CONFIGS[config_index]
    engine = LMFAO(ds.database, ds.join_tree, **kwargs)
    batch = covar_workload(ds)
    engine.plan(batch)
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(result) == len(batch)
    _measured[(name, label)] = {
        "seconds": benchmark.stats["mean"],
        "views": engine.plan(batch).statistics.n_views,
        "groups": engine.plan(batch).statistics.n_groups,
    }


def test_zz_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "ablation",
        f"{'dataset':10}{'configuration':16}{'seconds':>10}"
        f"{'views':>7}{'groups':>8}",
    )
    for name in DATASETS:
        for label, _ in CONFIGS:
            row = _measured.get((name, label))
            if row is None:
                continue
            report.add(
                f"{name:10}{label:16}{row['seconds']:>10.4f}"
                f"{row['views']:>7}{row['groups']:>8}"
            )
    path = report.write()
    print(f"\nwrote {path}")
    # design-choice shape: full merging produces the fewest views and is
    # not slower than no merging
    for name in DATASETS:
        full = _measured.get((name, "merge=full"))
        none = _measured.get((name, "merge=none"))
        if full and none:
            assert full["views"] < none["views"]
            assert full["seconds"] <= none["seconds"] * 1.5
