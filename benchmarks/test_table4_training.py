"""Table 4 — end-to-end model training on Retailer and Favorita.

Per dataset this benchmarks:

* the join materialization (the PSQL "Join" row — what every two-step
  solution pays before learning starts);
* ridge linear regression:
  - LMFAO: covar-matrix batch + BGD over the (tiny) matrix;
  - MADlib proxy: per-tuple UDAF accumulation over the join, the
    tuple-at-a-time executor architecture the paper measured;
  - TensorFlow proxy: one epoch of mini-batch gradient descent through a
    batch iterator (load+cast per batch), as in the paper's setup;
  - a BLAS closed-form OLS over the flat join — *stronger than anything
    the paper compared against*, included for honesty about the NumPy
    substrate;
* regression trees (depth 4): LMFAO vs vectorized CART over the join.

Expected shape (paper Table 4): LMFAO trains the linear model faster
than the two-step row-engine/iterator baselines, and TF's single epoch
does not reach LMFAO's accuracy.  ``results/table4.txt`` holds
paper-vs-measured.
"""

import pytest

from repro import materialize_join
from repro.baselines import (
    brute_force_cart,
    gradient_descent_epochs,
    ols_closed_form,
    ols_row_engine,
)
from repro.ml import CARTLearner, train_ridge
from repro.ml.trees import DecisionTree

from .common import PAPER_TABLE4, Report, dataset

pytestmark = pytest.mark.slow

DATASETS = ["retailer", "favorita"]
TREE_PARAMS = dict(max_depth=4, min_samples_split=500, n_buckets=10)

_measured = {}
_models = {}


def features_of(ds):
    label = ds.label
    continuous = [f for f in ds.continuous_features if f != label][:8]
    categorical = ds.categorical_features[:6]
    return continuous, categorical, label


@pytest.mark.parametrize("name", DATASETS)
def test_join_materialization(benchmark, name):
    ds = dataset(name)
    flat = benchmark.pedantic(
        lambda: materialize_join(ds.database), rounds=2, iterations=1
    )
    assert flat.n_rows > 0
    _measured[("join", name)] = benchmark.stats["mean"]


@pytest.mark.parametrize("name", DATASETS)
def test_linreg_lmfao(benchmark, name, lmfao_engine):
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    engine = lmfao_engine(name)

    def train():
        return train_ridge(
            ds.database, continuous, categorical, label,
            engine=engine, method="bgd", max_iterations=2_000,
        )

    model = benchmark.pedantic(train, rounds=2, iterations=1, warmup_rounds=1)
    assert model.theta.shape[0] > len(continuous)
    _measured[("lr_lmfao", name)] = benchmark.stats["mean"]
    _models[("lr_lmfao", name)] = model


@pytest.mark.parametrize("name", DATASETS)
def test_linreg_madlib_proxy(benchmark, name, materialized_engine):
    """Per-tuple UDAF accumulation over the (pre-joined) view."""
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    flat = materialized_engine(name).materialize()

    def train():
        return ols_row_engine(
            ds.database, continuous, categorical, label, flat=flat
        )

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    assert model.theta.shape[0] > len(continuous)
    _measured[("lr_madlib", name)] = benchmark.stats["mean"] + _measured.get(
        ("join", name), 0.0
    )
    _models[("lr_madlib", name)] = model


@pytest.mark.parametrize("name", DATASETS)
def test_linreg_tensorflow_proxy(benchmark, name, materialized_engine):
    """One epoch of mini-batch GD through the batch iterator."""
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    flat = materialized_engine(name).materialize()

    def train():
        return gradient_descent_epochs(
            ds.database, continuous, categorical, label,
            epochs=1, flat=flat, batch_size=500,
        )

    model = benchmark.pedantic(train, rounds=2, iterations=1)
    assert model.iterations == 1
    _measured[("lr_tf", name)] = benchmark.stats["mean"] + _measured.get(
        ("join", name), 0.0
    )
    _models[("lr_tf", name)] = model


@pytest.mark.parametrize("name", DATASETS)
def test_linreg_blas_closed_form(benchmark, name, materialized_engine):
    """The NumPy-substrate upper bound (no paper counterpart)."""
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    flat = materialized_engine(name).materialize()

    def train():
        return ols_closed_form(
            ds.database, continuous, categorical, label, flat=flat
        )

    benchmark.pedantic(train, rounds=2, iterations=1)
    _measured[("lr_blas", name)] = benchmark.stats["mean"] + _measured.get(
        ("join", name), 0.0
    )


@pytest.mark.parametrize("name", DATASETS)
def test_regression_tree_lmfao(benchmark, name, lmfao_engine):
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    engine = lmfao_engine(name)

    def train() -> DecisionTree:
        learner = CARTLearner(
            engine, continuous, categorical, label, "regression",
            **TREE_PARAMS,
        )
        return learner.fit()

    tree = benchmark.pedantic(train, rounds=1, iterations=1, warmup_rounds=1)
    assert tree.node_count() >= 1
    _measured[("rt_lmfao", name)] = benchmark.stats["mean"]


@pytest.mark.parametrize("name", DATASETS)
def test_regression_tree_materialized(
    benchmark, name, materialized_engine
):
    ds = dataset(name)
    continuous, categorical, label = features_of(ds)
    flat = materialized_engine(name).materialize()

    def train() -> DecisionTree:
        return brute_force_cart(
            ds.database, continuous, categorical, label, "regression",
            flat=flat, **TREE_PARAMS,
        )

    tree = benchmark.pedantic(train, rounds=1, iterations=1)
    assert tree.node_count() >= 1
    _measured[("rt_materialized", name)] = benchmark.stats[
        "mean"
    ] + _measured.get(("join", name), 0.0)


def test_zz_table4_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "table4",
        f"{'row':30}{'retailer s':>12}{'paper s':>12}"
        f"{'favorita s':>12}{'paper s':>12}",
    )
    rows = [
        ("join (PSQL proxy)", "join", "join"),
        ("LR TensorFlow proxy (1 epoch)", "lr_tf", "lr_tf"),
        ("LR MADlib proxy (row engine)", "lr_madlib", "lr_madlib"),
        ("LR LMFAO", "lr_lmfao", "lr_lmfao"),
        ("LR BLAS OLS (no counterpart)", "lr_blas", None),
        ("RT join+vectorized CART", "rt_materialized", "rt_madlib"),
        ("RT LMFAO", "rt_lmfao", "rt_lmfao"),
    ]
    for label, ours_key, paper_key in rows:
        r = _measured.get((ours_key, "retailer"))
        f = _measured.get((ours_key, "favorita"))
        pr = PAPER_TABLE4["retailer"].get(paper_key) if paper_key else None
        pf = PAPER_TABLE4["favorita"].get(paper_key) if paper_key else None
        report.add(
            f"{label:30}"
            f"{(f'{r:.3f}' if r is not None else '-'):>12}"
            f"{(f'{pr:.2f}' if pr is not None else '-'):>12}"
            f"{(f'{f:.3f}' if f is not None else '-'):>12}"
            f"{(f'{pf:.2f}' if pf is not None else '-'):>12}"
        )
    path = report.write()
    print(f"\nwrote {path}")
    for name in DATASETS:
        lmfao_s = _measured.get(("lr_lmfao", name))
        madlib_s = _measured.get(("lr_madlib", name))
        # shape: LMFAO beats the row-engine two-step architecture
        if lmfao_s is not None and madlib_s is not None:
            assert lmfao_s < madlib_s, name
        # shape: one TF epoch does not reach LMFAO's model quality
        lmfao_model = _models.get(("lr_lmfao", name))
        tf_model = _models.get(("lr_tf", name))
        if lmfao_model is not None and tf_model is not None:
            ds = dataset(name)
            flat = materialize_join(ds.database)
            assert lmfao_model.rmse(flat) <= tf_model.rmse(flat) + 1e-9, name
