"""Test package."""
