"""Backend comparison: interpreter / compiled / +threads / process.

Times the covar workload (the paper's regression-matrix batch) on the
largest bundled dataset under the four executor configurations and
writes ``BENCH_backends.json`` at the repo root with wall-clock seconds
and speedup ratios.

Expected shape: compilation wins over interpretation by cutting
per-step dispatch; threads add little on the compiled path (the
generated Python loops hold the GIL); processes restore the
compilation x parallelism multiplication the paper gets from C++ —
**provided the host has cores to parallelize over**.  The >=1.5x
process-vs-compiled acceptance bar therefore only binds on hosts with
at least 4 usable cores (on 1-2 core hosts — laptops, small CI runners —
the theoretical ceiling is too close to the transport overhead to
assert against); below that the measured ratio is recorded as-is and
the bar is skipped.
"""

import json
import os
import time

import pytest

from repro import LMFAO

from tests.engine.helpers import assert_results_equal

from .common import RESULTS_DIR, BENCH_SCALE, covar_workload, dataset

pytestmark = pytest.mark.slow

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_backends.json")

PARTITION_THRESHOLD = 5_000  # engage domain parallelism at bench scale


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


N_WORKERS = max(2, min(4, usable_cpus()))

#: the >=1.5x process-vs-compiled bar only binds with this many cores
BAR_MIN_CPUS = 4

CONFIGS = {
    "interpreter": dict(compile=False),
    "compiled": dict(compile=True),
    "compiled_threads": dict(
        compile=True,
        n_threads=N_WORKERS,
        partition_threshold=PARTITION_THRESHOLD,
    ),
    "process": dict(
        backend="process",
        n_threads=N_WORKERS,
        partition_threshold=PARTITION_THRESHOLD,
    ),
}


def largest_dataset_name() -> str:
    from .common import DATASET_NAMES

    return max(
        DATASET_NAMES, key=lambda n: dataset(n).database.total_tuples()
    )


def time_config(ds, batch, repeats=3, **engine_kwargs):
    with LMFAO(ds.database, ds.join_tree, **engine_kwargs) as engine:
        engine.plan(batch)  # plan + compile outside the timing
        best, results = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            results = engine.run(batch)
            best = min(best, time.perf_counter() - start)
    return best, results


def test_backend_comparison():
    name = largest_dataset_name()
    ds = dataset(name)
    batch = covar_workload(ds)

    seconds, outputs = {}, {}
    for config, kwargs in CONFIGS.items():
        seconds[config], outputs[config] = time_config(ds, batch, **kwargs)

    # all executor configurations must agree with the interpreter
    for config in CONFIGS:
        if config != "interpreter":
            assert_results_equal(
                outputs[config], outputs["interpreter"], batch, rtol=1e-8
            )

    speedup_vs_interpreter = {
        config: seconds["interpreter"] / s for config, s in seconds.items()
    }
    process_vs_compiled = seconds["compiled"] / seconds["process"]
    report = {
        "dataset": name,
        "workload": "covar",
        "scale": BENCH_SCALE,
        "usable_cpus": usable_cpus(),
        "workers": N_WORKERS,
        "partition_threshold": PARTITION_THRESHOLD,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_vs_interpreter": {
            k: round(v, 3) for k, v in speedup_vs_interpreter.items()
        },
        "process_vs_compiled": round(process_vs_compiled, 3),
        "process_speedup_bar": 1.5,
        "process_speedup_bar_binding": usable_cpus() >= BAR_MIN_CPUS,
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "backends.txt"), "w") as handle:
        handle.write(
            "backend comparison — covar on "
            f"{name} (scale {BENCH_SCALE}, {usable_cpus()} cpus)\n"
        )
        for config, s in seconds.items():
            handle.write(
                f"{config:17} {s:9.4f}s  "
                f"{speedup_vs_interpreter[config]:6.2f}x vs interpreter\n"
            )
        handle.write(
            f"process vs compiled: {process_vs_compiled:.2f}x\n"
        )

    # sanity on every host: no configuration should collapse
    for config, speedup in speedup_vs_interpreter.items():
        assert speedup > 0.02, (
            f"{config} pathologically slow: {seconds[config]:.4f}s vs "
            f"interpreter {seconds['interpreter']:.4f}s"
        )
    if usable_cpus() >= BAR_MIN_CPUS:
        assert process_vs_compiled >= 1.5, (
            f"process backend must beat single-threaded compiled by "
            f">=1.5x on a {usable_cpus()}-cpu host; measured "
            f"{process_vs_compiled:.2f}x "
            f"({seconds['process']:.4f}s vs {seconds['compiled']:.4f}s)"
        )
    else:
        pytest.skip(
            f"{usable_cpus()} usable CPU(s) < {BAR_MIN_CPUS}: parallel "
            "speedup bar not binding; measured "
            f"process_vs_compiled={process_vs_compiled:.2f}x "
            f"recorded in {BENCH_JSON}"
        )
