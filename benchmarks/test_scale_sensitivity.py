"""Scale sensitivity: the LMFAO-vs-baseline gap grows with data size.

EXPERIMENTS.md attributes the compressed Table 3 magnitudes to the small
benchmark scale (per-view constant costs vs data-bound work).  This
module measures the covar workload at three scales and asserts the
claim: the speedup over the per-query baseline is non-shrinking in
scale.  Writes ``results/scale_sensitivity.txt``.
"""

import pytest

from repro import LMFAO
from repro.baselines import MaterializedEngine
from repro.datasets import favorita
from repro.ml import CovarBatch

from .common import Report

pytestmark = pytest.mark.slow

SCALES = [0.1, 0.3, 0.9]

_measured = {}


def covar_batch_for(ds):
    return CovarBatch(
        ["txns", "price"],
        ["stype", "promo", "family", "locale", "cluster"],
        "units",
    ).batch


@pytest.mark.parametrize("scale", SCALES)
def test_lmfao_at_scale(benchmark, scale):
    ds = favorita(scale=scale)
    engine = LMFAO(ds.database, ds.join_tree)
    batch = covar_batch_for(ds)
    engine.plan(batch)
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(result) == len(batch)
    _measured[("lmfao", scale)] = benchmark.stats["mean"]


@pytest.mark.parametrize("scale", SCALES)
def test_baseline_at_scale(benchmark, scale):
    ds = favorita(scale=scale)
    engine = MaterializedEngine(ds.database)
    batch = covar_batch_for(ds)
    result = benchmark.pedantic(
        lambda: engine.run(batch), rounds=2, iterations=1
    )
    assert len(result) == len(batch)
    _measured[("baseline", scale)] = benchmark.stats["mean"]


def test_zz_scale_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = Report(
        "scale_sensitivity",
        f"{'scale':>7}{'lmfao s':>10}{'baseline s':>12}{'speedup':>9}",
    )
    speedups = []
    for scale in SCALES:
        lmfao_s = _measured.get(("lmfao", scale))
        base_s = _measured.get(("baseline", scale))
        if lmfao_s is None or base_s is None:
            continue
        speedup = base_s / lmfao_s
        speedups.append(speedup)
        report.add(
            f"{scale:>7}{lmfao_s:>10.4f}{base_s:>12.4f}{speedup:>8.1f}x"
        )
    path = report.write()
    print(f"\nwrote {path}")
    # the claim: the gap does not shrink as data grows (allowing noise)
    if len(speedups) == len(SCALES):
        assert speedups[-1] >= speedups[0] * 0.8, speedups