"""Cross-workload view cache & fusion benchmark.

Measures, on the retailer dataset, the two speedups the viewcache
subsystem exists for:

* **fusion** — covar + linreg + trees executed as one fused
  ``WorkloadSession`` DAG versus three independent engine runs
  (shared views run once; acceptance bar >= 1.3x);
* **warm cache** — re-running the fused session against a populated
  content-addressed ``ViewCache`` versus the cold run (every group
  skipped; acceptance bar >= 3x).

Ratios are always recorded in ``BENCH_viewcache.json`` at the repo
root *before* the bars are asserted, so a regression still leaves the
measurement behind.  Correctness rides along: fused results must match
the independent runs.
"""

import json
import os
import time

import pytest

from repro import LMFAO, ViewCache, WorkloadSession
from repro.ml import CovarBatch

from tests.engine.helpers import assert_results_equal

from .common import (
    RESULTS_DIR,
    BENCH_SCALE,
    covar_workload,
    dataset,
    regression_label,
    rt_node_workload,
)

pytestmark = pytest.mark.slow

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_viewcache.json")

REPEATS = 4
FUSED_SPEEDUP_BAR = 1.3
WARM_SPEEDUP_BAR = 3.0
CACHE_BUDGET_MB = 512


def linreg_workload(ds):
    """The batch ridge regression actually trains on: the full covar
    matrix over continuous + one-hot categorical features (what
    ``train_ridge`` consumes).  Structurally this is the covar
    workload — running covar, then linreg, recomputes a near-identical
    view DAG, which is precisely the cross-workload redundancy the
    cache/fusion subsystem removes."""
    label = regression_label(ds)
    continuous = [f for f in ds.continuous_features if f != label]
    return CovarBatch(continuous, ds.categorical_features, label).batch


def build_workloads(ds):
    planner = LMFAO(ds.database, ds.join_tree, compile=False)
    return {
        "covar": covar_workload(ds),
        "linreg": linreg_workload(ds),
        "trees": rt_node_workload(ds, planner),
    }


def best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_viewcache_benchmark():
    ds = dataset("retailer")
    workloads = build_workloads(ds)

    # independent baseline engines and the fused session, all planned
    # up front; the timed measurements below interleave both sides
    # round-robin so machine-load drift (this can run after two minutes
    # of other benchmark modules) hits them equally
    engines = {}
    for name, batch in workloads.items():
        engines[name] = LMFAO(ds.database, ds.join_tree)
        engines[name].plan(batch)  # plan + compile untimed, as everywhere
    session = WorkloadSession(ds.database, ds.join_tree)
    for name, batch in workloads.items():
        session.add_workload(name, batch)
    session.engine.plan(session.fused_batch())

    independent_seconds = {name: float("inf") for name in workloads}
    independent_results = {}
    fused_seconds = float("inf")
    fused_results = None
    for _ in range(REPEATS):
        for name, batch in workloads.items():
            start = time.perf_counter()
            independent_results[name] = engines[name].run(batch)
            independent_seconds[name] = min(
                independent_seconds[name], time.perf_counter() - start
            )
        start = time.perf_counter()
        fused_results = session.run()
        fused_seconds = min(fused_seconds, time.perf_counter() - start)
    independent_total = sum(independent_seconds.values())
    fusion = session.fusion_report()
    for engine in engines.values():
        engine.close()
    session.close()

    for name, batch in workloads.items():
        assert_results_equal(
            fused_results[name], independent_results[name], batch,
            rtol=1e-8,
        )

    # -- cold vs warm cache (fused session + ViewCache) --------------------
    cache = ViewCache(budget_bytes=CACHE_BUDGET_MB << 20)
    with WorkloadSession(
        ds.database, ds.join_tree, cache=cache
    ) as cached_session:
        for name, batch in workloads.items():
            cached_session.add_workload(name, batch)
        cached_session.engine.plan(cached_session.fused_batch())
        start = time.perf_counter()
        cold_results = cached_session.run()
        cold_seconds = time.perf_counter() - start
        warm_seconds, warm_results = best_of(REPEATS, cached_session.run)

    assert warm_results.cache_report.n_misses == 0
    for name, batch in workloads.items():
        assert_results_equal(
            warm_results[name], cold_results[name], batch, rtol=0
        )

    fused_speedup = independent_total / fused_seconds
    warm_speedup = cold_seconds / warm_seconds

    # record everything BEFORE asserting the bars
    report = {
        "dataset": "retailer",
        "workloads": list(workloads),
        "scale": BENCH_SCALE,
        "cache_budget_mb": CACHE_BUDGET_MB,
        "seconds": {
            "independent": {
                k: round(v, 6) for k, v in independent_seconds.items()
            },
            "independent_total": round(independent_total, 6),
            "fused": round(fused_seconds, 6),
            "cold_cached": round(cold_seconds, 6),
            "warm_cached": round(warm_seconds, 6),
        },
        "fused_vs_independent": round(fused_speedup, 3),
        "warm_vs_cold": round(warm_speedup, 3),
        "bars": {
            "fused_vs_independent": FUSED_SPEEDUP_BAR,
            "warm_vs_cold": WARM_SPEEDUP_BAR,
        },
        "fusion": {
            "views_fused": fusion.views_fused,
            "views_independent": fusion.views_independent,
            "views_saved": fusion.views_saved,
            "groups_fused": fusion.groups_fused,
            "groups_independent": fusion.groups_independent,
        },
        "cache_stats": cache.stats().as_dict(),
        "cache_resident_mb": round(cache.total_bytes / (1 << 20), 3),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "viewcache.txt"), "w") as handle:
        handle.write(
            f"view cache & fusion — covar+linreg+trees on retailer "
            f"(scale {BENCH_SCALE})\n"
        )
        for name, seconds in independent_seconds.items():
            handle.write(f"independent {name:8} {seconds:9.4f}s\n")
        handle.write(
            f"independent total    {independent_total:9.4f}s\n"
            f"fused                {fused_seconds:9.4f}s  "
            f"({fused_speedup:.2f}x, bar {FUSED_SPEEDUP_BAR}x)\n"
            f"cold cached          {cold_seconds:9.4f}s\n"
            f"warm cached          {warm_seconds:9.4f}s  "
            f"({warm_speedup:.2f}x, bar {WARM_SPEEDUP_BAR}x)\n"
            f"fused DAG: {fusion.views_fused} views vs "
            f"{fusion.views_independent} independent "
            f"({fusion.views_saved} shared)\n"
        )

    assert fused_speedup >= FUSED_SPEEDUP_BAR, (
        f"fused covar+linreg+trees must beat independent runs by "
        f">={FUSED_SPEEDUP_BAR}x; measured {fused_speedup:.2f}x "
        f"({fused_seconds:.4f}s vs {independent_total:.4f}s)"
    )
    assert warm_speedup >= WARM_SPEEDUP_BAR, (
        f"warm-cache re-run must beat the cold run by "
        f">={WARM_SPEEDUP_BAR}x; measured {warm_speedup:.2f}x "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
    )
