"""Concurrent analytics service benchmark.

Measures, on the retailer dataset, the two serving-layer numbers the
server subsystem exists for:

* **coalescing throughput** — a storm of concurrent single-workload
  requests over a fusion-friendly covar/linreg/trees mix, served with
  the micro-batching coalescer on (requests fused into shared view
  DAGs) versus off (every request executes alone).  Acceptance bar:
  coalescing on sustains >= 1.2x the request throughput;
* **latency under writes** — p50/p95 query latency while a background
  delta stream commits epochs on the root *and* on dimension relations
  (recorded, no bar on latency: the point is that reads keep flowing
  against consistent snapshots during commits).  The delta propagation
  bar rides here: under the mixed stream the view cache must *patch*
  at least as many entries as it invalidates — dimension deltas repair
  interior views in place instead of evicting them.

Everything is recorded in ``BENCH_server.json`` at the repo root
*before* the throughput bar is asserted, so a regression still leaves
the measurement behind.  Correctness rides along: both modes must
return identical epoch-0 results.
"""

import itertools
import json
import os
import threading
import time

import numpy as np
import pytest

from repro import AnalyticsService, DeltaBatch

from tests.engine.helpers import assert_results_equal

from .common import (
    BENCH_SCALE,
    RESULTS_DIR,
    covar_workload,
    dataset,
    rt_node_workload,
)
from .test_viewcache import linreg_workload

pytestmark = [pytest.mark.slow, pytest.mark.timeout(900)]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_server.json")

N_CLIENTS = 6
REQUESTS_PER_CLIENT = 8
COALESCE_MS = 25.0
SPEEDUP_BAR = 1.2

LATENCY_REQUESTS = 30
DELTA_INTERVAL_S = 0.03
DELTA_FRACTION = 0.005


def build_workloads(ds):
    from repro import LMFAO

    planner = LMFAO(ds.database, ds.join_tree, compile=False)
    return {
        "covar": covar_workload(ds),
        "linreg": linreg_workload(ds),
        "trees": rt_node_workload(ds, planner),
    }


def make_service(ds, workloads, *, coalesce_ms, cache_mb):
    service = AnalyticsService(
        coalesce_ms=coalesce_ms,
        max_batch=N_CLIENTS * 2,
        max_queue=N_CLIENTS * REQUESTS_PER_CLIENT * 2,
        cache_mb=cache_mb,
    )
    service.register_dataset("retailer", ds.database, ds.join_tree)
    for name, batch in workloads.items():
        service.register_workload("retailer", name, batch)
    # every subset a partially filled batch might fuse, planned and
    # compiled up front — the measurement below is pure serving
    names = list(workloads)
    service.prepare(
        "retailer",
        [
            list(combo)
            for size in range(1, len(names) + 1)
            for combo in itertools.combinations(names, size)
        ],
    )
    return service


def request_storm(service, workload_names):
    """Fire the mixed request pattern; returns (seconds, responses)."""
    responses = [
        [None] * REQUESTS_PER_CLIENT for _ in range(N_CLIENTS)
    ]
    errors = []
    barrier = threading.Barrier(N_CLIENTS + 1)

    def client(slot):
        try:
            barrier.wait(timeout=60)
            for i in range(REQUESTS_PER_CLIENT):
                name = workload_names[(slot + i) % len(workload_names)]
                responses[slot][i] = service.query(
                    "retailer", [name], timeout=300
                )
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(600)
    seconds = time.perf_counter() - start
    assert not errors, errors
    return seconds, responses


def test_server_benchmark():
    ds = dataset("retailer")
    workloads = build_workloads(ds)
    names = list(workloads)
    n_requests = N_CLIENTS * REQUESTS_PER_CLIENT

    # -- throughput: coalescing on vs off (no cache; the comparison
    # isolates the coalescer's fusion dedup, not warm-cache serving) ---
    measurements = {}
    sample_results = {}
    for mode, window in (("on", COALESCE_MS), ("off", 0.0)):
        service = make_service(
            ds, workloads, coalesce_ms=window, cache_mb=0
        )
        seconds, responses = request_storm(service, names)
        stats = service.coalescer.stats()
        measurements[mode] = {
            "seconds": round(seconds, 6),
            "requests_per_second": round(n_requests / seconds, 3),
            "mean_batch": stats.as_dict()["mean_batch"],
            "max_batch": stats.max_batch,
            "batches": stats.batches,
        }
        sample_results[mode] = {
            name: next(
                response.results[name]
                for per_client in responses
                for response in per_client
                if name in response.results
            )
            for name in names
        }
        service.close()

    # correctness rides along: both modes answered epoch 0 identically
    for name in names:
        assert_results_equal(
            sample_results["on"][name],
            sample_results["off"][name],
            workloads[name],
            rtol=1e-8,
        )

    speedup = (
        measurements["on"]["requests_per_second"]
        / measurements["off"]["requests_per_second"]
    )

    # -- p50 latency under a background delta stream -------------------
    service = make_service(
        ds, workloads, coalesce_ms=5.0, cache_mb=256
    )
    root = service._state("retailer").ivm.root
    # mixed write stream: the root fact table plus every dimension
    # relation in rotation — dimension deltas exercise interior-DAG
    # propagation, the case that used to evict instead of patch
    targets = [root] + [
        rel.name
        for rel in service.snapshot("retailer").database
        if rel.name != root
    ]
    stop = threading.Event()
    deltas_committed = [0]

    def delta_stream():
        rng = np.random.default_rng(5)
        for step in itertools.count():
            if stop.is_set():
                return
            name = targets[step % len(targets)]
            rel = service.snapshot("retailer").database.relation(name)
            if name == root:
                n_delta = max(1, int(rel.n_rows * DELTA_FRACTION))
            else:
                n_delta = max(1, min(3, rel.n_rows // 4))
            idx = rng.integers(0, rel.n_rows, n_delta)
            inserts = {
                a: rel.column(a)[idx] for a in rel.schema.names
            }
            deletes = rng.choice(rel.n_rows, n_delta, replace=False)
            service.apply_delta(
                "retailer",
                DeltaBatch(
                    name, inserts=inserts, delete_indices=deletes
                ),
            )
            deltas_committed[0] += 1
            stop.wait(DELTA_INTERVAL_S)

    writer = threading.Thread(target=delta_stream)
    writer.start()
    latencies = []
    epochs_seen = set()
    try:
        for i in range(LATENCY_REQUESTS):
            name = names[i % len(names)]
            start = time.perf_counter()
            response = service.query("retailer", [name], timeout=300)
            latencies.append(time.perf_counter() - start)
            epochs_seen.add(response.epoch)
    finally:
        stop.set()
        writer.join(60)
    dataset_stats = service.stats()["datasets"]["retailer"]
    cache_stats = dataset_stats["cache"]
    ivm_stats = dataset_stats["ivm"]
    service.close()
    p50, p95 = np.percentile(np.asarray(latencies) * 1000.0, [50, 95])

    # record everything BEFORE asserting the bar
    report = {
        "dataset": "retailer",
        "scale": BENCH_SCALE,
        "workloads": names,
        "throughput": {
            "n_clients": N_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "coalesce_window_ms": COALESCE_MS,
            "coalesce_on": measurements["on"],
            "coalesce_off": measurements["off"],
            "speedup": round(speedup, 3),
            "bar": SPEEDUP_BAR,
        },
        "latency_under_deltas": {
            "n_requests": LATENCY_REQUESTS,
            "delta_interval_ms": DELTA_INTERVAL_S * 1000,
            "delta_fraction": DELTA_FRACTION,
            "delta_targets": targets,
            "deltas_committed": deltas_committed[0],
            "epochs_observed": len(epochs_seen),
            "p50_ms": round(float(p50), 3),
            "p95_ms": round(float(p95), 3),
            "cache_stats": cache_stats,
            "ivm_stats": ivm_stats,
        },
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "server.txt"), "w") as handle:
        handle.write(
            f"analytics service — covar+linreg+trees on retailer "
            f"(scale {BENCH_SCALE})\n"
            f"coalescing on   {measurements['on']['seconds']:9.4f}s  "
            f"{measurements['on']['requests_per_second']:8.2f} req/s  "
            f"(mean batch {measurements['on']['mean_batch']})\n"
            f"coalescing off  {measurements['off']['seconds']:9.4f}s  "
            f"{measurements['off']['requests_per_second']:8.2f} req/s\n"
            f"speedup         {speedup:9.2f}x  (bar {SPEEDUP_BAR}x)\n"
            f"p50 latency under delta stream: {p50:.1f}ms "
            f"(p95 {p95:.1f}ms, {deltas_committed[0]} deltas over "
            f"{len(targets)} relations, "
            f"{len(epochs_seen)} epochs observed)\n"
            f"view cache under deltas: {cache_stats['patches']} patches "
            f"vs {cache_stats['invalidations']} invalidations "
            f"({ivm_stats['fallbacks']} IVM fallbacks)\n"
        )

    assert speedup >= SPEEDUP_BAR, (
        f"coalescing must sustain >={SPEEDUP_BAR}x the uncoalesced "
        f"throughput on a fusion-friendly mix; measured {speedup:.2f}x "
        f"({measurements['on']['requests_per_second']} vs "
        f"{measurements['off']['requests_per_second']} req/s)"
    )
    assert len(epochs_seen) >= 2, (
        "latency phase never observed a committed epoch change; the "
        "delta stream did not overlap the reads"
    )
    assert cache_stats["patches"] >= cache_stats["invalidations"], (
        "under a mixed root+dimension delta stream the cache must "
        "patch at least as many views as it invalidates; measured "
        f"{cache_stats['patches']} patches vs "
        f"{cache_stats['invalidations']} invalidations"
    )
