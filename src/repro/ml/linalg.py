"""Linear algebra over joins (paper §2, "Further Applications").

The paper notes LMFAO also supports "linear algebra operations such as
QR and SVD decompositions of matrices defined by the natural join of
database relations".  Both reduce to the covar (Gram) matrix that LMFAO
already computes:

* if ``A`` is the (implicit, never materialized) design matrix of the
  join and ``C = A^T A`` its Gram matrix, then the Cholesky factor
  ``C = R^T R`` is exactly the ``R`` of the thin QR decomposition
  ``A = Q R``;
* the eigenvalues of ``C`` are the squared singular values of ``A``, and
  the right singular vectors are ``C``'s eigenvectors.

So one aggregate batch yields the decompositions of a matrix that may be
orders of magnitude larger than the database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .covar import CovarBatch, FeatureIndex


@dataclass
class JoinMatrixDecompositions:
    """QR / SVD factors of the implicit design matrix over the join."""

    #: upper-triangular R with A = Q R (thin QR)
    r_factor: np.ndarray
    #: singular values of the design matrix, descending
    singular_values: np.ndarray
    #: right singular vectors (columns), aligned with singular_values
    right_vectors: np.ndarray
    index: FeatureIndex
    n_rows: float

    def condition_number(self) -> float:
        """Condition number of the design matrix (ratio of singular
        values), a standard diagnostic for regression stability."""
        positive = self.singular_values[self.singular_values > 0]
        if len(positive) == 0:
            return float("inf")
        return float(positive[0] / positive[-1])

    def rank(self, tolerance: float = 1e-10) -> int:
        """Numerical rank of the design matrix."""
        if len(self.singular_values) == 0:
            return 0
        cutoff = tolerance * self.singular_values[0]
        return int((self.singular_values > cutoff).sum())


def decompose_join_matrix(
    engine,
    continuous: Sequence[str],
    categorical: Sequence[str] = (),
    label: str = None,
    ridge: float = 0.0,
) -> JoinMatrixDecompositions:
    """QR + SVD of the one-hot design matrix over the join.

    The design matrix has columns [intercept, continuous...,
    one-hot(categorical)...]; the label column (required by the covar
    batch plumbing) is excluded from the decomposition.  ``ridge`` adds
    ``ridge * I`` to the Gram matrix before factorization, useful when
    one-hot blocks make it exactly singular.
    """
    if label is None:
        if not continuous:
            raise ValueError("need at least one continuous attribute")
        label = continuous[0]
        continuous = list(continuous[1:])
    covar = CovarBatch(continuous, categorical, label)
    results = engine.run(covar.batch)
    matrix, index = covar.assemble(results)
    p = index.label_position
    # re-attach the label as an ordinary column: the design matrix is
    # [intercept, features..., label]
    gram = matrix[: p + 1, : p + 1].copy()
    gram[p, :p] = matrix[index.label_position, :p]
    gram[:p, p] = matrix[:p, index.label_position]
    gram[p, p] = matrix[index.label_position, index.label_position]
    if ridge:
        gram = gram + ridge * np.eye(len(gram))
    r_factor = _cholesky_upper(gram)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    return JoinMatrixDecompositions(
        r_factor=r_factor,
        singular_values=np.sqrt(eigenvalues),
        right_vectors=eigenvectors[:, order],
        index=index,
        n_rows=float(matrix[0, 0]),
    )


def _cholesky_upper(gram: np.ndarray) -> np.ndarray:
    """Upper Cholesky factor, falling back to a jittered factorization
    for (numerically) singular Gram matrices."""
    jitter = 0.0
    scale = float(np.trace(gram)) / max(1, len(gram))
    for _ in range(12):
        try:
            lower = np.linalg.cholesky(
                gram + jitter * np.eye(len(gram))
            )
            return lower.T
        except np.linalg.LinAlgError:
            jitter = max(jitter * 10.0, 1e-12 * max(scale, 1.0))
    raise np.linalg.LinAlgError(
        "Gram matrix not factorizable even with jitter"
    )
