"""Data cubes (paper §2, eq. (6); Gray et al. 1996).

A k-dimensional data cube over dimensions ``S_k`` with measures
``alpha_1..alpha_v`` is the union of 2^k group-by aggregates — one per
subset of the dimensions.  LMFAO computes all 2^k cuboids in one batch;
the result is assembled into a single 1NF relation using the special
``ALL`` value (encoded as -1) for rolled-up dimensions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..data.relation import Relation
from ..data.schema import Attribute, Schema
from ..query.aggregates import Aggregate
from ..query.functions import Identity
from ..query.query import Query, QueryBatch

#: the encoded ALL value of Gray et al.'s cube representation
ALL = -1


def cuboid_name(subset: Sequence[str]) -> str:
    return "cube:" + (",".join(subset) if subset else "<>")


def build_cube_batch(
    dimensions: Sequence[str], measures: Sequence[str]
) -> QueryBatch:
    """One query per subset of the dimensions, each with all measures.

    The batch holds ``2^k * v`` application aggregates, matching the
    paper's ``2^d * nu`` formula for Table 2.
    """
    dimensions = list(dimensions)
    if not dimensions:
        raise ValueError("a data cube needs at least one dimension")
    if not measures:
        raise ValueError("a data cube needs at least one measure")
    queries: List[Query] = []
    for size in range(len(dimensions) + 1):
        for subset in combinations(dimensions, size):
            aggregates = [
                Aggregate.of(Identity(m), name=f"sum:{m}") for m in measures
            ]
            queries.append(Query(cuboid_name(subset), list(subset), aggregates))
    return QueryBatch(queries)


def assemble_cube(
    dimensions: Sequence[str],
    measures: Sequence[str],
    results: Mapping[str, Relation],
) -> Relation:
    """Assemble all cuboids into one 1NF relation with ALL = -1."""
    dimensions = list(dimensions)
    measures = list(measures)
    dim_parts: Dict[str, List[np.ndarray]] = {d: [] for d in dimensions}
    measure_parts: Dict[str, List[np.ndarray]] = {m: [] for m in measures}
    for size in range(len(dimensions) + 1):
        for subset in combinations(dimensions, size):
            relation = results[cuboid_name(subset)]
            n = relation.n_rows
            for dim in dimensions:
                if dim in subset:
                    dim_parts[dim].append(
                        np.asarray(relation.column(dim), dtype=np.int64)
                    )
                else:
                    dim_parts[dim].append(np.full(n, ALL, dtype=np.int64))
            for measure in measures:
                measure_parts[measure].append(
                    relation.column(f"sum:{measure}")
                )
    columns = {d: np.concatenate(dim_parts[d]) for d in dimensions}
    columns.update(
        {m: np.concatenate(measure_parts[m]) for m in measures}
    )
    attrs = [Attribute(d, "categorical", np.int64) for d in dimensions]
    attrs += [Attribute(m, "continuous", np.float64) for m in measures]
    return Relation("data_cube", Schema(attrs), columns)


class DataCube:
    """Convenience wrapper: build, run and query a data cube."""

    def __init__(self, engine, dimensions: Sequence[str], measures: Sequence[str]):
        self.engine = engine
        self.dimensions = list(dimensions)
        self.measures = list(measures)
        self.batch = build_cube_batch(self.dimensions, self.measures)
        self._results = None
        self._cube = None

    def compute(self) -> Relation:
        self._results = self.engine.run(self.batch)
        self._cube = assemble_cube(
            self.dimensions, self.measures, self._results
        )
        return self._cube

    @property
    def cube(self) -> Relation:
        if self._cube is None:
            self.compute()
        return self._cube

    def cuboid(self, subset: Sequence[str]) -> Relation:
        """One cuboid (a single group-by result) of the cube."""
        if self._results is None:
            self.compute()
        key = cuboid_name(tuple(d for d in self.dimensions if d in subset))
        return self._results[key]

    def slice(self, **dimension_values) -> Relation:
        """Rows of the full cube matching the given dimension values
        (unspecified dimensions are rolled up, i.e. ALL)."""
        cube = self.cube
        mask = np.ones(cube.n_rows, dtype=bool)
        for dim in self.dimensions:
            wanted = dimension_values.get(dim, ALL)
            mask &= cube.column(dim) == wanted
        return cube.filter(mask)
