"""Covariance-matrix batches (paper §2, eqs. (2)-(4)).

For ridge linear regression the gradient only needs the non-centred
covariance matrix ("covar matrix") over [intercept, features..., label].
Continuous pairs are scalar aggregates ``SUM(Xi*Xj)``; a categorical
attribute becomes a group-by attribute (one-hot encoding):

    Covar(Xi * Xj)        both continuous       -- eq. (2)
    Covar(Xi; Xj)         Xi categorical        -- eq. (3)
    Covar(Xi, Xj; 1)      both categorical      -- eq. (4)

``CovarBatch`` builds the query batch and assembles the dense matrix from
the engine's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..data.relation import Relation
from ..query.aggregates import Aggregate, Product
from ..query.functions import Identity, Power
from ..query.query import Query, QueryBatch


@dataclass
class FeatureIndex:
    """Maps model parameters to dense-matrix positions.

    Layout: intercept, then continuous features in order, then one slot
    per (categorical feature, category value), then the label last.
    """

    continuous: Tuple[str, ...]
    categorical: Tuple[str, ...]
    label: str
    category_values: Dict[str, np.ndarray]

    def __post_init__(self):
        self.offsets: Dict[str, int] = {}
        position = 1  # 0 is the intercept
        for feature in self.continuous:
            self.offsets[feature] = position
            position += 1
        for feature in self.categorical:
            self.offsets[feature] = position
            position += len(self.category_values[feature])
        self.label_position = position
        self.size = position + 1

    def continuous_pos(self, feature: str) -> int:
        return self.offsets[feature]

    def categorical_pos(self, feature: str, value) -> int:
        values = self.category_values[feature]
        idx = int(np.searchsorted(values, value))
        if idx >= len(values) or values[idx] != value:
            raise KeyError(f"unseen category {value!r} of {feature!r}")
        return self.offsets[feature] + idx


class CovarBatch:
    """The aggregate batch computing a (non-centred) covar matrix."""

    def __init__(
        self,
        continuous: Sequence[str],
        categorical: Sequence[str],
        label: str,
    ):
        if label in categorical:
            raise ValueError(
                "the regression label must be continuous; use the "
                "classification-tree workload for categorical targets"
            )
        self.continuous = tuple(continuous)
        self.categorical = tuple(categorical)
        self.label = label
        # continuous columns of the z-vector: intercept handled via count
        self._numeric = tuple(list(self.continuous) + [label])
        self.batch = self._build()

    # -- batch construction ----------------------------------------------------

    def _build(self) -> QueryBatch:
        queries: List[Query] = []
        # scalar query: count, first moments, continuous-continuous pairs
        scalar_aggs: List[Aggregate] = [Aggregate.count(name="count")]
        for attr in self._numeric:
            scalar_aggs.append(Aggregate.of(Identity(attr), name=f"m1:{attr}"))
        for i, a in enumerate(self._numeric):
            for b in self._numeric[i:]:
                if a == b:
                    agg = Aggregate.of(Power(a, 2), name=f"m2:{a}*{b}")
                else:
                    agg = Aggregate.of(
                        Identity(a), Identity(b), name=f"m2:{a}*{b}"
                    )
                scalar_aggs.append(agg)
        queries.append(Query("covar:scalar", [], scalar_aggs))
        # one query per categorical attribute: counts + numeric moments
        for cat in self.categorical:
            aggs = [Aggregate.count(name="count")]
            for attr in self._numeric:
                aggs.append(Aggregate.of(Identity(attr), name=f"m1:{attr}"))
            queries.append(Query(f"covar:g:{cat}", [cat], aggs))
        # one query per categorical pair: co-occurrence counts
        for i, a in enumerate(self.categorical):
            for b in self.categorical[i + 1:]:
                queries.append(
                    Query(
                        f"covar:gg:{a}*{b}",
                        [a, b],
                        [Aggregate.count(name="count")],
                    )
                )
        return QueryBatch(queries)

    # -- assembly ------------------------------------------------------------

    def assemble(self, results: Mapping[str, Relation]) -> Tuple[np.ndarray, FeatureIndex]:
        """Build the dense covar matrix from engine results.

        Returns ``(matrix, index)`` where ``matrix[i, j] = SUM(z_i * z_j)``
        over the join, for the one-hot encoded parameter vector ``z``.
        """
        category_values = {
            cat: np.sort(
                np.unique(results[f"covar:g:{cat}"].column(cat))
            )
            for cat in self.categorical
        }
        index = FeatureIndex(
            continuous=self.continuous,
            categorical=self.categorical,
            label=self.label,
            category_values=category_values,
        )
        matrix = np.zeros((index.size, index.size), dtype=np.float64)
        self._fill_scalar(matrix, index, results["covar:scalar"])
        for cat in self.categorical:
            self._fill_categorical(matrix, index, cat, results[f"covar:g:{cat}"])
        for i, a in enumerate(self.categorical):
            for b in self.categorical[i + 1:]:
                self._fill_pair(
                    matrix, index, a, b, results[f"covar:gg:{a}*{b}"]
                )
        # mirror the upper triangle
        lower = np.tril_indices(index.size, -1)
        matrix[lower] = matrix.T[lower]
        return matrix, index

    def _numeric_pos(self, index: FeatureIndex, attr: str) -> int:
        if attr == self.label:
            return index.label_position
        return index.continuous_pos(attr)

    def _fill_scalar(self, matrix, index, relation: Relation) -> None:
        matrix[0, 0] = relation.column("count")[0]
        for attr in self._numeric:
            pos = self._numeric_pos(index, attr)
            matrix[0, pos] = relation.column(f"m1:{attr}")[0]
        for i, a in enumerate(self._numeric):
            for b in self._numeric[i:]:
                pa, pb = sorted(
                    (self._numeric_pos(index, a), self._numeric_pos(index, b))
                )
                matrix[pa, pb] = relation.column(f"m2:{a}*{b}")[0]

    def _fill_categorical(self, matrix, index, cat, relation: Relation) -> None:
        values = relation.column(cat)
        counts = relation.column("count")
        for value, count in zip(values, counts):
            pos = index.categorical_pos(cat, value)
            matrix[0, pos] = count
            matrix[pos, pos] = count  # one-hot: Xv*Xv = Xv
        for attr in self._numeric:
            moments = relation.column(f"m1:{attr}")
            numeric_pos = self._numeric_pos(index, attr)
            for value, moment in zip(values, moments):
                pos = index.categorical_pos(cat, value)
                row, col = sorted((pos, numeric_pos))
                matrix[row, col] = moment

    def _fill_pair(self, matrix, index, a, b, relation: Relation) -> None:
        values_a = relation.column(a)
        values_b = relation.column(b)
        counts = relation.column("count")
        for va, vb, count in zip(values_a, values_b, counts):
            pa = index.categorical_pos(a, va)
            pb = index.categorical_pos(b, vb)
            row, col = sorted((pa, pb))
            matrix[row, col] = count


def covar_batch_size(n_continuous: int, n_categorical: int) -> int:
    """Number of application aggregates in a covar batch.

    For all-continuous features the paper's formula is
    ``(n+1)(n+2)/2`` with ``n`` counting features plus label.
    """
    n_numeric = n_continuous + 1  # + label
    scalar = 1 + n_numeric + n_numeric * (n_numeric + 1) // 2
    per_cat = n_categorical * (1 + n_numeric)
    pairs = n_categorical * (n_categorical - 1) // 2
    return scalar + per_cat + pairs
