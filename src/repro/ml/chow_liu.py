"""Chow-Liu trees: optimal tree-shaped Bayesian networks (paper §2).

The Chow-Liu algorithm builds a maximum spanning tree over the pairwise
mutual-information graph of the attributes; LMFAO supplies all the MI
values from one aggregate batch.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from .mutual_information import pairwise_mutual_information


def chow_liu_tree(
    engine, attrs: Sequence[str]
) -> Tuple[List[Tuple[str, str]], Dict[Tuple[str, str], float]]:
    """Learn the Chow-Liu tree structure over the given attributes.

    Returns ``(edges, mi)`` where ``edges`` is the list of tree edges
    (each a sorted attribute pair) and ``mi`` the full pairwise
    mutual-information table used to build it.
    """
    attrs = list(attrs)
    if len(attrs) < 2:
        raise ValueError("a Chow-Liu tree needs at least two attributes")
    mi = pairwise_mutual_information(engine, attrs)
    graph = nx.Graph()
    graph.add_nodes_from(attrs)
    for (a, b), weight in mi.items():
        graph.add_edge(a, b, weight=weight)
    spanning = nx.maximum_spanning_tree(graph, weight="weight")
    edges = sorted(tuple(sorted(edge)) for edge in spanning.edges())
    return edges, mi
