"""Pairwise mutual information over joins (paper §2, eq. (7)).

The distribution of two attributes over the join is captured by count
queries grouping by every subset of {Xi, Xj}; the mutual information is
then

    MI(Xi, Xj) = sum_{v,w} p(v,w) * log( p(v,w) / (p(v) p(w)) )

which is exactly the paper's 4-ary aggregate f(alpha, beta, gamma, delta)
over the counts.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..data.relation import Relation
from ..query.aggregates import Aggregate
from ..query.query import Query, QueryBatch


def build_mi_batch(attrs: Sequence[str]) -> QueryBatch:
    """Count queries for all pairs and singletons of the given attributes.

    The batch has 1 + n + n(n-1)/2 queries; the application-aggregate
    count matches the paper's n(n-1)/2 pairwise-MI formula plus the
    shared marginals.
    """
    attrs = list(attrs)
    queries: List[Query] = [
        Query("mi:total", [], [Aggregate.count(name="n")])
    ]
    for attr in attrs:
        queries.append(
            Query(f"mi:m:{attr}", [attr], [Aggregate.count(name="n")])
        )
    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            queries.append(
                Query(f"mi:j:{a}*{b}", [a, b], [Aggregate.count(name="n")])
            )
    return QueryBatch(queries)


def mutual_information_from_results(
    attrs: Sequence[str], results: Mapping[str, Relation]
) -> Dict[Tuple[str, str], float]:
    """Compute MI for every attribute pair from the count-query results."""
    attrs = list(attrs)
    total = float(results["mi:total"].column("n")[0])
    if total <= 0:
        raise ValueError("empty join; mutual information undefined")
    marginals: Dict[str, Dict[float, float]] = {}
    for attr in attrs:
        rel = results[f"mi:m:{attr}"]
        marginals[attr] = dict(
            zip(rel.column(attr).tolist(), rel.column("n").tolist())
        )
    mi: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            rel = results[f"mi:j:{a}*{b}"]
            value = 0.0
            for va, vb, n_joint in zip(
                rel.column(a).tolist(),
                rel.column(b).tolist(),
                rel.column("n").tolist(),
            ):
                if n_joint <= 0:
                    continue
                p_joint = n_joint / total
                p_a = marginals[a][va] / total
                p_b = marginals[b][vb] / total
                value += p_joint * np.log(p_joint / (p_a * p_b))
            mi[(a, b)] = max(0.0, float(value))
    return mi


def pairwise_mutual_information(
    engine, attrs: Sequence[str]
) -> Dict[Tuple[str, str], float]:
    """Run the MI batch on an engine and return all pairwise MI values."""
    batch = build_mi_batch(attrs)
    results = engine.run(batch)
    return mutual_information_from_results(attrs, results)
