"""K-means clustering over joins (paper §2, "Further Applications").

The paper notes that k-means decomposes into aggregate batches of the
same form as its main workloads.  Lloyd's algorithm needs, per
iteration and per cluster j:

    n_j      = SUM( 1_{assign(x) = j} )
    s_{j,i}  = SUM( X_i * 1_{assign(x) = j} )

where ``assign`` is the nearest-centroid indicator — a *dynamic* UDF
over the feature attributes that changes every iteration.  LMFAO
recomputes the batch with re-bound dynamic functions, never
materializing the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..query.aggregates import Aggregate, Product
from ..query.functions import Identity, Udf
from ..query.query import Query, QueryBatch


@dataclass
class KMeansResult:
    centroids: np.ndarray  # (k, n_features)
    features: List[str]
    iterations: int
    inertia_history: List[float]

    def assign(self, flat) -> np.ndarray:
        """Nearest-centroid assignment over a materialized join."""
        points = np.stack(
            [np.asarray(flat.column(f), dtype=np.float64) for f in self.features],
            axis=1,
        )
        distances = (
            ((points[:, None, :] - self.centroids[None, :, :]) ** 2).sum(axis=2)
        )
        return distances.argmin(axis=1)


def _assignment_udf(features: Sequence[str], centroids: np.ndarray, j: int):
    """Indicator 1_{nearest centroid == j} as a dynamic UDF."""

    def indicator(*columns):
        points = np.stack(
            [np.asarray(c, dtype=np.float64) for c in columns], axis=1
        )
        distances = (
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        )
        return (distances.argmin(axis=1) == j).astype(np.float64)

    return Udf(features, indicator, name=f"assign_{j}", dynamic=True)


def kmeans(
    engine,
    features: Sequence[str],
    k: int,
    *,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with per-iteration LMFAO aggregate batches."""
    if k < 1:
        raise ValueError("k must be >= 1")
    features = list(features)
    rng = np.random.default_rng(seed)
    centroids = _initial_centroids(engine, features, k, rng)
    inertia_history: List[float] = []
    for iteration in range(1, max_iterations + 1):
        batch = _iteration_batch(features, centroids)
        results = engine.run(batch)
        new_centroids = centroids.copy()
        total_inertia = 0.0
        for j in range(k):
            rel = results[f"kmeans:{j}"]
            count = float(rel.column("n")[0])
            if count > 0:
                for fi, feature in enumerate(features):
                    new_centroids[j, fi] = (
                        float(rel.column(f"s:{feature}")[0]) / count
                    )
                total_inertia += float(rel.column("ss")[0]) - count * float(
                    np.sum(new_centroids[j] ** 2)
                )
        inertia_history.append(max(0.0, total_inertia))
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tolerance:
            break
    return KMeansResult(
        centroids=centroids,
        features=features,
        iterations=iteration,
        inertia_history=inertia_history,
    )


def _iteration_batch(features: Sequence[str], centroids: np.ndarray) -> QueryBatch:
    queries = []
    for j in range(len(centroids)):
        indicator = _assignment_udf(features, centroids.copy(), j)
        aggregates = [Aggregate([Product([indicator])], name="n")]
        for feature in features:
            aggregates.append(
                Aggregate(
                    [Product([indicator, Identity(feature)])],
                    name=f"s:{feature}",
                )
            )
        # sum of squared norms within the cluster (for the inertia)
        squared = [
            Product([indicator, Identity(f), Identity(f)]) for f in features
        ]
        aggregates.append(Aggregate(squared, name="ss"))
        queries.append(Query(f"kmeans:{j}", [], aggregates))
    return QueryBatch(queries)


def _initial_centroids(engine, features, k, rng) -> np.ndarray:
    """Spread initial centroids over per-feature [min, max] ranges.

    Ranges come from cheap per-relation column scans — no join needed.
    """
    lows = np.empty(len(features))
    highs = np.empty(len(features))
    for fi, feature in enumerate(features):
        column = None
        for relation in engine.database:
            if relation.has_column(feature):
                column = relation.column(feature)
                break
        if column is None:
            raise KeyError(f"feature {feature!r} not in database")
        lows[fi] = float(np.min(column))
        highs[fi] = float(np.max(column))
    return rng.uniform(lows, highs, size=(k, len(features)))
