"""Polynomial regression of degree d (paper §2, eq. (5)).

The model is ``PR_d(X) = sum_{a in A} theta_a prod_j X_j^{a_j}`` over all
exponent vectors with total degree <= d.  Its covar matrix needs one
aggregate per exponent vector of total degree <= 2d:

    Covar_(a1..an+1)( X1^a1 * ... * Xn+1^an+1 )

Categorical attributes with positive exponent become group-by attributes
(their powers are idempotent under one-hot encoding).  This extends
:mod:`repro.ml.covar` beyond the linear (d=1) case and also covers the
degree-2 interactions of factorization machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..data.relation import Relation
from ..query.aggregates import Aggregate, Product
from ..query.functions import Power
from ..query.query import Query, QueryBatch


def monomials(
    features: Sequence[str], degree: int
) -> List[Tuple[Tuple[str, int], ...]]:
    """All monomials of total degree <= ``degree`` over the features.

    Each monomial is a tuple of (attribute, exponent) pairs, sorted by
    attribute; the empty tuple is the constant monomial.
    """
    result: List[Tuple[Tuple[str, int], ...]] = [()]
    for total in range(1, degree + 1):
        for combo in combinations_with_replacement(sorted(features), total):
            exponents: Dict[str, int] = {}
            for attr in combo:
                exponents[attr] = exponents.get(attr, 0) + 1
            result.append(tuple(sorted(exponents.items())))
    return result


def _monomial_name(monomial) -> str:
    if not monomial:
        return "1"
    return "*".join(
        attr if exp == 1 else f"{attr}^{exp}" for attr, exp in monomial
    )


def _pair_product(
    left, right, categorical: frozenset
) -> Tuple[Tuple[Tuple[str, int], ...], Tuple[str, ...]]:
    """Multiply two monomials; split categorical attrs into group-bys.

    One-hot indicators are idempotent (``x^k = x``), so any categorical
    attribute with positive exponent simply becomes a group-by attribute
    (paper: "each categorical attribute X_j with exponent a_j > 0 becomes
    a group-by attribute").
    """
    exponents: Dict[str, int] = {}
    for attr, exp in list(left) + list(right):
        exponents[attr] = exponents.get(attr, 0) + exp
    group_by = tuple(sorted(a for a in exponents if a in categorical))
    numeric = tuple(
        sorted((a, e) for a, e in exponents.items() if a not in categorical)
    )
    return numeric, group_by


class PolynomialCovarBatch:
    """The aggregate batch of eq. (5): all degree-<=2d moment aggregates."""

    def __init__(
        self,
        continuous: Sequence[str],
        categorical: Sequence[str],
        label: str,
        degree: int = 2,
    ):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.continuous = tuple(continuous)
        self.categorical = tuple(sorted(categorical))
        self.label = label
        self.degree = degree
        features = list(continuous) + list(categorical)
        self.basis = monomials(features, degree)
        #: entries[(i, j)] -> (query name, aggregate name, group_by)
        self.entries: Dict[Tuple[int, int], Tuple[str, str, Tuple[str, ...]]] = {}
        self.batch = self._build()

    def _build(self) -> QueryBatch:
        categorical = frozenset(self.categorical)
        # bucket aggregates by their group-by signature (one query each)
        buckets: Dict[Tuple[str, ...], Dict[str, Aggregate]] = {}
        for i, left in enumerate(self.basis):
            for j_offset, right in enumerate(self.basis[i:]):
                j = i + j_offset
                for with_label in (False, True):
                    numeric, group_by = _pair_product(
                        left, right, categorical
                    )
                    factors = [
                        Power(attr, exp) for attr, exp in numeric
                    ]
                    suffix = ""
                    if with_label:
                        factors.append(Power(self.label, 1))
                        suffix = f"*{self.label}"
                    name = (
                        f"{_monomial_name(left)}.{_monomial_name(right)}"
                        f"{suffix}"
                    )
                    bucket = buckets.setdefault(group_by, {})
                    if name not in bucket:
                        bucket[name] = Aggregate(
                            [Product(factors)], name=name
                        )
                    if not with_label:
                        self.entries[(i, j)] = (
                            self._query_name(group_by),
                            name,
                            group_by,
                        )
        queries = [
            Query(self._query_name(group_by), list(group_by), list(aggs.values()))
            for group_by, aggs in sorted(buckets.items())
        ]
        return QueryBatch(queries)

    @staticmethod
    def _query_name(group_by: Tuple[str, ...]) -> str:
        return "polycovar:" + (",".join(group_by) if group_by else "<>")

    @property
    def n_parameters(self) -> int:
        """Number of model parameters for all-continuous features (the
        paper's C(n+d, d) formula)."""
        return len(self.basis)


@dataclass
class PolynomialModel:
    """A trained degree-d polynomial regressor (continuous features)."""

    theta: np.ndarray
    basis: List[tuple]
    label: str
    degree: int
    l2: float

    def design_matrix(self, flat: Relation) -> np.ndarray:
        matrix = np.ones((flat.n_rows, len(self.basis)))
        for idx, monomial in enumerate(self.basis):
            for attr, exp in monomial:
                matrix[:, idx] *= (
                    np.asarray(flat.column(attr), dtype=np.float64) ** exp
                )
        return matrix

    def predict(self, flat: Relation) -> np.ndarray:
        return self.design_matrix(flat) @ self.theta

    def rmse(self, flat: Relation) -> float:
        prediction = self.predict(flat)
        target = np.asarray(flat.column(self.label), dtype=np.float64)
        return float(np.sqrt(np.mean((prediction - target) ** 2)))


def train_polynomial(
    engine,
    continuous: Sequence[str],
    label: str,
    degree: int = 2,
    l2: float = 1e-3,
) -> PolynomialModel:
    """Train polynomial regression over all-continuous features.

    The engine computes all moment aggregates of degrees <= 2d in one
    batch; the normal equations are then solved over the (tiny) moment
    matrix — the polynomial analog of the linear covar pipeline.
    """
    covar = PolynomialCovarBatch(continuous, [], label, degree)
    results = engine.run(covar.batch)
    basis = covar.basis
    p = len(basis)
    scalar = results[PolynomialCovarBatch._query_name(())]
    n = float(scalar.column("1.1")[0])
    if n <= 0:
        raise ValueError("empty training dataset")
    gram = np.zeros((p, p))
    moment = np.zeros(p)
    for (i, j), (query_name, agg_name, _group_by) in covar.entries.items():
        value = float(results[query_name].column(agg_name)[0])
        gram[i, j] = value
        gram[j, i] = value
    # the label moments are the constant-paired aggregates with *label
    for i, monomial in enumerate(basis):
        name = f"1.{_monomial_name(monomial)}*{label}"
        moment[i] = float(scalar.column(name)[0])
    regularized = gram / n + l2 * np.eye(p)
    theta = np.linalg.solve(regularized, moment / n)
    return PolynomialModel(
        theta=theta, basis=list(basis), label=label, degree=degree, l2=l2
    )
