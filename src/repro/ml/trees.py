"""CART decision trees over aggregate batches (paper §2, eqs. (8)-(10)).

Each tree node is learned from one LMFAO batch: the node's dataset
fragment is never materialized — it is encoded as a product of Kronecker
deltas over the ancestor conditions (the *dynamic functions* of §1.2).
Because ancestor thresholds are dynamic, re-running a node batch at the
same depth hits the engine's compiled-plan cache.

Regression trees use the variance cost, classification trees the Gini
index, with the paper's experimental setup: bucketized continuous
attributes, maximum depth 4 (31 nodes), and a minimum number of instances
per split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..engine.engine import LMFAO
from ..query.aggregates import Aggregate, Product
from ..query.functions import Delta, Identity, Power
from ..query.query import Query, QueryBatch


@dataclass(frozen=True)
class Condition:
    """A split condition ``attr op value`` (op is ``<=`` or ``==``)."""

    attr: str
    op: str
    value: float

    def delta(self) -> Delta:
        """The dynamic Kronecker delta selecting the satisfying fragment."""
        return Delta(self.attr, self.op, self.value, dynamic=True)

    def complement_delta(self) -> Delta:
        complement = {"<=": ">", "==": "!="}[self.op]
        return Delta(self.attr, complement, self.value, dynamic=True)

    def test(self, column: np.ndarray) -> np.ndarray:
        if self.op == "<=":
            return column <= self.value
        return column == self.value

    def __str__(self) -> str:
        return f"{self.attr} {self.op} {self.value:g}"


@dataclass
class TreeNode:
    """One node of a learned tree."""

    prediction: float
    n_samples: float
    impurity: float
    condition: Optional[Condition] = None
    left: Optional["TreeNode"] = None  # condition true
    right: Optional["TreeNode"] = None  # condition false

    @property
    def is_leaf(self) -> bool:
        return self.condition is None

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass
class DecisionTree:
    """A trained CART tree (regression or classification)."""

    root: TreeNode
    kind: str  # "regression" | "classification"
    label: str

    def predict(self, flat: Relation) -> np.ndarray:
        """Vectorized prediction over a materialized join."""
        out = np.empty(flat.n_rows, dtype=np.float64)
        index = np.arange(flat.n_rows)
        self._predict_into(self.root, flat, index, out)
        return out

    def _predict_into(self, node, flat, index, out) -> None:
        if node.is_leaf:
            out[index] = node.prediction
            return
        mask = node.condition.test(flat.column(node.condition.attr)[index])
        self._predict_into(node.left, flat, index[mask], out)
        self._predict_into(node.right, flat, index[~mask], out)

    def rmse(self, flat: Relation) -> float:
        prediction = self.predict(flat)
        target = np.asarray(flat.column(self.label), dtype=np.float64)
        return float(np.sqrt(np.mean((prediction - target) ** 2)))

    def accuracy(self, flat: Relation) -> float:
        prediction = self.predict(flat)
        target = np.asarray(flat.column(self.label), dtype=np.float64)
        return float(np.mean(prediction == target))

    def node_count(self) -> int:
        return self.root.node_count()


@dataclass
class SplitCandidate:
    cost: float
    condition: Condition
    left_stats: tuple
    right_stats: tuple


class CARTLearner:
    """Learns CART trees through LMFAO aggregate batches."""

    def __init__(
        self,
        engine: LMFAO,
        continuous: Sequence[str],
        categorical: Sequence[str],
        label: str,
        kind: str = "regression",
        *,
        max_depth: int = 4,
        min_samples_split: int = 1_000,
        min_samples_leaf: int = 1,
        n_buckets: int = 20,
        max_categories: int = 50,
    ):
        if kind not in ("regression", "classification"):
            raise ValueError(f"unknown tree kind {kind!r}")
        self.engine = engine
        self.continuous = tuple(a for a in continuous if a != label)
        self.categorical = tuple(a for a in categorical if a != label)
        self.label = label
        self.kind = kind
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.n_buckets = n_buckets
        self.max_categories = max_categories
        self.thresholds = self._bucketize()
        self.batches_run = 0

    # -- preparation ------------------------------------------------------------

    def _bucketize(self) -> Dict[str, np.ndarray]:
        """Per continuous attribute: bucket-boundary thresholds.

        The paper bucketizes continuous attributes into ``n_buckets``
        buckets; we take the inner quantiles of the attribute's column in
        the relation that stores it.
        """
        thresholds: Dict[str, np.ndarray] = {}
        for attr in self.continuous:
            column = self._column_of(attr)
            quantiles = np.linspace(0, 1, self.n_buckets + 1)[1:-1]
            values = np.unique(np.quantile(column, quantiles))
            thresholds[attr] = values
        return thresholds

    def _column_of(self, attr: str) -> np.ndarray:
        for relation in self.engine.database:
            if relation.has_column(attr):
                return relation.column(attr)
        raise KeyError(f"attribute {attr!r} not in database")

    def _categories_of(self, attr: str) -> np.ndarray:
        values = np.unique(self._column_of(attr))
        return values[: self.max_categories]

    # -- learning ----------------------------------------------------------------

    def fit(self) -> DecisionTree:
        root = self._grow([], depth=0)
        return DecisionTree(root=root, kind=self.kind, label=self.label)

    def _grow(self, conditions: List[Condition], depth: int) -> TreeNode:
        stats = self._node_statistics(conditions)
        node = self._make_leaf(stats)
        if depth >= self.max_depth or node.n_samples < self.min_samples_split:
            return node
        best = self._best_split(conditions, stats)
        if best is None or best.cost >= node.impurity:
            return node
        node.condition = best.condition
        node.left = self._grow(conditions + [best.condition], depth + 1)
        complement = _ComplementCondition(
            best.condition.attr, best.condition.op, best.condition.value
        )
        node.right = self._grow(conditions + [complement], depth + 1)
        return node

    # -- node batches ---------------------------------------------------------------

    def _alpha(self, conditions: Sequence[Condition]) -> List[Delta]:
        return [c.delta() for c in conditions]

    def _node_statistics(self, conditions: Sequence[Condition]):
        """Totals for the node fragment (count / sums or class counts)."""
        alpha = self._alpha(conditions)
        if self.kind == "regression":
            queries = [
                Query(
                    "node:totals",
                    [],
                    [
                        Aggregate([Product(alpha)], name="n"),
                        Aggregate(
                            [Product(alpha + [Identity(self.label)])], name="sy"
                        ),
                        Aggregate(
                            [Product(alpha + [Power(self.label, 2)])],
                            name="syy",
                        ),
                    ],
                )
            ]
            results = self.engine.run(QueryBatch(queries))
            self.batches_run += 1
            rel = results["node:totals"]
            return (
                float(rel.column("n")[0]),
                float(rel.column("sy")[0]),
                float(rel.column("syy")[0]),
            )
        queries = [
            Query(
                "node:classes",
                [self.label],
                [Aggregate([Product(alpha)], name="n")],
            )
        ]
        results = self.engine.run(QueryBatch(queries))
        self.batches_run += 1
        rel = results["node:classes"]
        return dict(
            zip(
                rel.column(self.label).tolist(),
                rel.column("n").tolist(),
            )
        )

    def _make_leaf(self, stats) -> TreeNode:
        if self.kind == "regression":
            n, sy, syy = stats
            mean = sy / n if n > 0 else 0.0
            impurity = _variance(n, sy, syy)
            return TreeNode(prediction=mean, n_samples=n, impurity=impurity)
        total = sum(stats.values())
        prediction = (
            max(stats, key=stats.get) if stats else 0.0
        )
        impurity = total * _gini(stats) if total > 0 else 0.0
        return TreeNode(
            prediction=float(prediction), n_samples=total, impurity=impurity
        )

    def node_batch(self, conditions: Sequence[Condition]) -> QueryBatch:
        """The full split-search batch for one node (the Table 2/3 "RT"
        workload is exactly this batch at the root)."""
        alpha = self._alpha(conditions)
        if self.kind == "regression":
            return self._regression_batch(alpha)
        return self._classification_batch(alpha)

    def _regression_batch(self, alpha: List[Delta]) -> QueryBatch:
        scalar_aggs: List[Aggregate] = []
        for attr, values in self.thresholds.items():
            for i, threshold in enumerate(values):
                delta = Delta(attr, "<=", float(threshold))
                scalar_aggs.append(
                    Aggregate([Product(alpha + [delta])], name=f"n:{attr}:{i}")
                )
                scalar_aggs.append(
                    Aggregate(
                        [Product(alpha + [delta, Identity(self.label)])],
                        name=f"sy:{attr}:{i}",
                    )
                )
                scalar_aggs.append(
                    Aggregate(
                        [Product(alpha + [delta, Power(self.label, 2)])],
                        name=f"syy:{attr}:{i}",
                    )
                )
        queries = []
        if scalar_aggs:
            queries.append(Query("split:cont", [], scalar_aggs))
        for attr in self.categorical:
            queries.append(
                Query(
                    f"split:cat:{attr}",
                    [attr],
                    [
                        Aggregate([Product(alpha)], name="n"),
                        Aggregate(
                            [Product(alpha + [Identity(self.label)])],
                            name="sy",
                        ),
                        Aggregate(
                            [Product(alpha + [Power(self.label, 2)])],
                            name="syy",
                        ),
                    ],
                )
            )
        return QueryBatch(queries)

    def _classification_batch(self, alpha: List[Delta]) -> QueryBatch:
        class_aggs: List[Aggregate] = []
        for attr, values in self.thresholds.items():
            for i, threshold in enumerate(values):
                delta = Delta(attr, "<=", float(threshold))
                class_aggs.append(
                    Aggregate(
                        [Product(alpha + [delta])], name=f"n:{attr}:{i}"
                    )
                )
        queries = []
        if class_aggs:
            queries.append(Query("split:cont", [self.label], class_aggs))
        for attr in self.categorical:
            queries.append(
                Query(
                    f"split:cat:{attr}",
                    [attr, self.label],
                    [Aggregate([Product(alpha)], name="n")],
                )
            )
        return QueryBatch(queries)

    # -- split search ---------------------------------------------------------------

    def _best_split(
        self, conditions: List[Condition], totals
    ) -> Optional[SplitCandidate]:
        batch = self.node_batch(conditions)
        if not len(batch):
            return None
        results = self.engine.run(batch)
        self.batches_run += 1
        if self.kind == "regression":
            return self._best_regression_split(results, totals)
        return self._best_classification_split(results, totals)

    def _best_regression_split(
        self, results, totals
    ) -> Optional[SplitCandidate]:
        n_tot, sy_tot, syy_tot = totals
        best: Optional[SplitCandidate] = None
        if "split:cont" in results:
            rel = results["split:cont"]
            for attr, values in self.thresholds.items():
                for i, threshold in enumerate(values):
                    left = (
                        float(rel.column(f"n:{attr}:{i}")[0]),
                        float(rel.column(f"sy:{attr}:{i}")[0]),
                        float(rel.column(f"syy:{attr}:{i}")[0]),
                    )
                    best = self._consider_regression(
                        best,
                        Condition(attr, "<=", float(threshold)),
                        left,
                        (n_tot - left[0], sy_tot - left[1], syy_tot - left[2]),
                    )
        for attr in self.categorical:
            rel = results.get(f"split:cat:{attr}")
            if rel is None:
                continue
            values = rel.column(attr)
            ns = rel.column("n")
            sys_ = rel.column("sy")
            syys = rel.column("syy")
            for value, n, sy, syy in zip(values, ns, sys_, syys):
                left = (float(n), float(sy), float(syy))
                best = self._consider_regression(
                    best,
                    Condition(attr, "==", float(value)),
                    left,
                    (n_tot - left[0], sy_tot - left[1], syy_tot - left[2]),
                )
        return best

    def _consider_regression(self, best, condition, left, right):
        n_l, sy_l, syy_l = left
        n_r, sy_r, syy_r = right
        if n_l < self.min_samples_leaf or n_r < self.min_samples_leaf:
            return best
        cost = _variance(n_l, sy_l, syy_l) + _variance(n_r, sy_r, syy_r)
        if best is None or cost < best.cost:
            return SplitCandidate(cost, condition, left, right)
        return best

    def _best_classification_split(
        self, results, totals: Dict
    ) -> Optional[SplitCandidate]:
        best: Optional[SplitCandidate] = None
        n_tot = sum(totals.values())
        if "split:cont" in results:
            rel = results["split:cont"]
            classes = rel.column(self.label).tolist()
            for attr, values in self.thresholds.items():
                for i, threshold in enumerate(values):
                    counts = rel.column(f"n:{attr}:{i}")
                    left = dict(zip(classes, counts.tolist()))
                    right = {
                        k: totals.get(k, 0.0) - left.get(k, 0.0)
                        for k in totals
                    }
                    best = self._consider_classification(
                        best,
                        Condition(attr, "<=", float(threshold)),
                        left,
                        right,
                        n_tot,
                    )
        for attr in self.categorical:
            rel = results.get(f"split:cat:{attr}")
            if rel is None:
                continue
            per_value: Dict[float, Dict] = {}
            for value, cls, n in zip(
                rel.column(attr).tolist(),
                rel.column(self.label).tolist(),
                rel.column("n").tolist(),
            ):
                per_value.setdefault(value, {})[cls] = n
            for value, left in per_value.items():
                right = {
                    k: totals.get(k, 0.0) - left.get(k, 0.0) for k in totals
                }
                best = self._consider_classification(
                    best,
                    Condition(attr, "==", float(value)),
                    left,
                    right,
                    n_tot,
                )
        return best

    def _consider_classification(self, best, condition, left, right, n_tot):
        n_l = sum(left.values())
        n_r = sum(right.values())
        if n_l < self.min_samples_leaf or n_r < self.min_samples_leaf:
            return best
        cost = n_l * _gini(left) + n_r * _gini(right)
        if best is None or cost < best.cost:
            return SplitCandidate(cost, condition, left, right)
        return best


class _ComplementCondition(Condition):
    """The negated branch of a split (``> t`` / ``!= v``)."""

    def delta(self) -> Delta:
        return self.complement_delta()

    def test(self, column: np.ndarray) -> np.ndarray:
        return ~super().test(column)

    def __str__(self) -> str:
        complement = {"<=": ">", "==": "!="}[self.op]
        return f"{self.attr} {complement} {self.value:g}"


def _variance(n: float, sy: float, syy: float) -> float:
    """The paper's (unnormalized) variance cost: sum y^2 - (sum y)^2 / n."""
    if n <= 0:
        return 0.0
    return max(0.0, syy - (sy * sy) / n)


def _gini(counts: Mapping) -> float:
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    return 1.0 - sum((c / total) ** 2 for c in counts.values())


def train_tree(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    kind: str = "regression",
    *,
    join_tree=None,
    engine: Optional[LMFAO] = None,
    **learner_kwargs,
) -> DecisionTree:
    """Convenience wrapper: build an engine and learn a tree."""
    if engine is None:
        engine = LMFAO(database, join_tree)
    learner = CARTLearner(
        engine, continuous, categorical, label, kind, **learner_kwargs
    )
    return learner.fit()
