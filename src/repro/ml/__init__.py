"""Analytics applications over LMFAO: the paper's §2 workloads."""

from .chow_liu import chow_liu_tree
from .covar import CovarBatch, FeatureIndex, covar_batch_size
from .datacube import ALL, DataCube, assemble_cube, build_cube_batch
from .linreg import (
    LinearRegressionModel,
    design_matrix,
    optimize_from_covar,
    train_ridge,
)
from .mutual_information import (
    build_mi_batch,
    mutual_information_from_results,
    pairwise_mutual_information,
)
from .kmeans import KMeansResult, kmeans
from .linalg import JoinMatrixDecompositions, decompose_join_matrix
from .polyreg import (
    PolynomialCovarBatch,
    PolynomialModel,
    monomials,
    train_polynomial,
)
from .trees import (
    CARTLearner,
    Condition,
    DecisionTree,
    TreeNode,
    train_tree,
)

__all__ = [
    "CovarBatch",
    "FeatureIndex",
    "covar_batch_size",
    "LinearRegressionModel",
    "train_ridge",
    "optimize_from_covar",
    "design_matrix",
    "CARTLearner",
    "DecisionTree",
    "TreeNode",
    "Condition",
    "train_tree",
    "build_mi_batch",
    "mutual_information_from_results",
    "pairwise_mutual_information",
    "chow_liu_tree",
    "DataCube",
    "build_cube_batch",
    "assemble_cube",
    "ALL",
    "PolynomialCovarBatch",
    "PolynomialModel",
    "train_polynomial",
    "monomials",
    "kmeans",
    "KMeansResult",
    "decompose_join_matrix",
    "JoinMatrixDecompositions",
]
