"""Ridge linear regression over the covar matrix (paper §2, §4.2).

LMFAO computes the covar matrix once; batch gradient descent then runs
entirely over this (tiny) matrix — no pass over the data per iteration.
As in the paper/AC/DC, the optimizer uses Armijo backtracking line search
with the Barzilai-Borwein step size.  A closed-form solver is provided
for validation (it matches MADlib's OLS solution when ``l2 = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..engine.engine import LMFAO
from .covar import CovarBatch, FeatureIndex


@dataclass
class LinearRegressionModel:
    """A trained ridge model: parameters over one-hot encoded features."""

    theta: np.ndarray
    index: FeatureIndex
    l2: float
    iterations: int

    def design_row_count(self) -> int:
        return len(self.theta)

    def predict(self, flat: Relation) -> np.ndarray:
        """Predict over a materialized (test) join."""
        features = design_matrix(flat, self.index)
        return features @ self.theta

    def rmse(self, flat: Relation) -> float:
        prediction = self.predict(flat)
        target = np.asarray(flat.column(self.index.label), dtype=np.float64)
        return float(np.sqrt(np.mean((prediction - target) ** 2)))


def design_matrix(flat: Relation, index: FeatureIndex) -> np.ndarray:
    """One-hot encoded feature matrix of a materialized join.

    Categories unseen at training time get all-zero one-hot blocks.
    """
    n = flat.n_rows
    matrix = np.zeros((n, index.label_position), dtype=np.float64)
    matrix[:, 0] = 1.0
    for feature in index.continuous:
        matrix[:, index.continuous_pos(feature)] = flat.column(feature)
    for feature in index.categorical:
        values = index.category_values[feature]
        column = flat.column(feature)
        positions = np.searchsorted(values, column)
        valid = (positions < len(values)) & (
            values[np.clip(positions, 0, len(values) - 1)] == column
        )
        rows = np.nonzero(valid)[0]
        cols = index.offsets[feature] + positions[valid]
        matrix[rows, cols] = 1.0
    return matrix


def train_ridge(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    *,
    join_tree=None,
    engine: Optional[LMFAO] = None,
    l2: float = 1e-3,
    method: str = "bgd",
    max_iterations: int = 2_000,
    tolerance: float = 1e-10,
) -> LinearRegressionModel:
    """Train a ridge model with LMFAO-computed sufficient statistics."""
    if engine is None:
        engine = LMFAO(database, join_tree)
    covar = CovarBatch(continuous, categorical, label)
    results = engine.run(covar.batch)
    matrix, index = covar.assemble(results)
    return optimize_from_covar(
        matrix,
        index,
        l2=l2,
        method=method,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )


def optimize_from_covar(
    matrix: np.ndarray,
    index: FeatureIndex,
    *,
    l2: float = 1e-3,
    method: str = "bgd",
    max_iterations: int = 2_000,
    tolerance: float = 1e-10,
) -> LinearRegressionModel:
    """Optimize ridge parameters given the assembled covar matrix."""
    n = matrix[0, 0]
    if n <= 0:
        raise ValueError("empty training dataset (count aggregate is 0)")
    p = index.label_position
    c_ff = matrix[:p, :p] / n
    c_fl = matrix[:p, index.label_position] / n
    if method == "closed":
        theta = _solve_closed(c_ff, c_fl, l2)
        iterations = 0
    elif method == "bgd":
        theta, iterations = _bgd(
            c_ff, c_fl, l2, max_iterations=max_iterations, tolerance=tolerance
        )
    else:
        raise ValueError(f"unknown method {method!r}; use 'bgd' or 'closed'")
    return LinearRegressionModel(
        theta=theta, index=index, l2=l2, iterations=iterations
    )


def _solve_closed(c_ff, c_fl, l2: float) -> np.ndarray:
    regularized = c_ff + l2 * np.eye(len(c_ff))
    return np.linalg.solve(regularized, c_fl)


def _objective(theta, c_ff, c_fl, c_ll, l2: float) -> float:
    # J = 1/2 th' Cff th - th' Cfl + 1/2 Cll + l2/2 ||th||^2
    return float(
        0.5 * theta @ c_ff @ theta
        - theta @ c_fl
        + 0.5 * c_ll
        + 0.5 * l2 * theta @ theta
    )


def _bgd(
    c_ff: np.ndarray,
    c_fl: np.ndarray,
    l2: float,
    max_iterations: int,
    tolerance: float,
) -> Tuple[np.ndarray, int]:
    """Batch gradient descent with Armijo backtracking + Barzilai-Borwein.

    Iterations touch only the covar matrix — the cost per step is
    O(p^2) regardless of dataset size, the heart of the paper's claim.
    """
    p = len(c_fl)
    theta = np.zeros(p)
    c_ll = 0.0  # constant offset, irrelevant to the optimizer
    gradient = c_ff @ theta - c_fl + l2 * theta
    step = 1.0
    previous_theta = None
    previous_gradient = None
    for iteration in range(1, max_iterations + 1):
        objective = _objective(theta, c_ff, c_fl, c_ll, l2)
        # Armijo backtracking from the current (possibly BB) step
        candidate_step = step
        gradient_norm2 = float(gradient @ gradient)
        if gradient_norm2 < tolerance:
            return theta, iteration
        for _ in range(60):
            candidate = theta - candidate_step * gradient
            new_objective = _objective(candidate, c_ff, c_fl, c_ll, l2)
            if new_objective <= objective - 0.5 * candidate_step * gradient_norm2:
                break
            candidate_step *= 0.5
        previous_theta, previous_gradient = theta, gradient
        theta = theta - candidate_step * gradient
        gradient = c_ff @ theta - c_fl + l2 * theta
        # Barzilai-Borwein step for the next iteration
        delta_theta = theta - previous_theta
        delta_gradient = gradient - previous_gradient
        denominator = float(delta_theta @ delta_gradient)
        if denominator > 0:
            step = float(delta_theta @ delta_theta) / denominator
        else:
            step = candidate_step
    return theta, max_iterations
