"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info [dataset...]``   — Table 1-style characteristics of the
  synthetic datasets;
* ``plan <dataset> <workload>`` — plan a workload and print EXPLAIN +
  the Table 2 statistics (workloads: covar, rt_node, mi, cube);
* ``sql <dataset> <workload>``  — print the view decomposition as SQL;
* ``run <dataset> <workload>``  — execute the workload and time it;
* ``run <dataset> --workloads covar,linreg,trees [--fuse] [--cache-mb N]``
  — execute several workloads through one :class:`WorkloadSession`,
  optionally fused into one deduplicated view DAG and/or backed by a
  content-addressed view cache (per-view hit/miss report);
* ``serve <dataset> [--port N] [--coalesce-ms N] [--cache-mb N]
  [--data-dir DIR]`` — run the long-lived analytics service over HTTP:
  request coalescing, epoch-snapshot isolation, streaming
  ``POST /delta`` writes; with ``--data-dir``, durable storage —
  restore on boot (snapshot + WAL replay + warm view cache), WAL every
  commit, drain + fsync on SIGTERM;
* ``snapshot <dataset> --out DIR`` — write a columnar snapshot (a data
  dir ``serve --data-dir`` can boot from);
* ``restore DIR`` — recover a data dir offline and report what's in it;
* ``client {health,stats,query} ...`` — talk to a running service.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time

import numpy as np

from . import (
    LMFAO,
    AnalyticsClient,
    AnalyticsService,
    DeltaBatch,
    IncrementalEngine,
    ViewCache,
    WorkloadSession,
)
from .datasets import ALL_DATASETS
from .engine.explain import explain
from .engine.sql import render_batch_sql
from .ml import (
    CovarBatch,
    PolynomialCovarBatch,
    build_cube_batch,
    build_mi_batch,
)
from .ml.trees import CARTLearner

WORKLOAD_CHOICES = [
    "covar",
    "linreg",
    "trees",
    "rt_node",
    "kmeans",
    "polyreg",
    "mi",
    "mutual_information",
    "chow_liu",
    "cube",
    "datacube",
]


class WorkloadUnavailable(SystemExit):
    """A workload's optional dependency is missing.

    SystemExit so a direct CLI invocation exits with the message, while
    ``build_service`` catches it to skip registration and keep serving
    the rest."""


def _regression_label(dataset) -> str:
    label = dataset.label
    if dataset.database.attribute_kind(label) != "continuous":
        label = dataset.continuous_features[0]
    return label


def _build_workload(dataset, engine, workload: str):
    if workload == "covar":
        label = _regression_label(dataset)
        continuous = [f for f in dataset.continuous_features if f != label]
        return CovarBatch(
            continuous, dataset.categorical_features, label
        ).batch
    if workload == "linreg":
        # the batch ridge regression trains on: the full covar matrix
        # (train_ridge's input) — near-identical to the covar workload,
        # so fusion/caching shares almost the whole view DAG
        label = _regression_label(dataset)
        continuous = [f for f in dataset.continuous_features if f != label]
        return CovarBatch(
            continuous, dataset.categorical_features, label
        ).batch
    if workload in ("trees", "rt_node"):
        label = _regression_label(dataset)
        continuous = [f for f in dataset.continuous_features if f != label]
        learner = CARTLearner(
            engine, continuous, dataset.categorical_features, label,
            "regression",
        )
        return learner.node_batch([])
    if workload == "kmeans":
        # one Lloyd iteration as a servable batch: per-cluster count /
        # sum / sum-of-squares aggregates with the (seeded) centroid
        # assignment baked into dynamic UDFs — exactly the batch each
        # kmeans() iteration issues.  The UDFs make it uncacheable, so
        # it also exercises the cache-bypass path under serving.
        from .ml.kmeans import _initial_centroids, _iteration_batch

        features = [
            f for f in dataset.continuous_features if f != dataset.label
        ][:3]
        centroids = _initial_centroids(
            engine, features, 3, np.random.default_rng(0)
        )
        return _iteration_batch(features, centroids)
    if workload == "polyreg":
        # degree-2 moment batch (eq. 5) over a trimmed feature set —
        # the full set squares the aggregate count, which is a batch
        # benchmark, not a serving workload
        label = _regression_label(dataset)
        continuous = [
            f for f in dataset.continuous_features if f != label
        ][:4]
        return PolynomialCovarBatch(
            continuous, dataset.categorical_features[:2], label, degree=2
        ).batch
    if workload in ("mi", "mutual_information"):
        return build_mi_batch(dataset.discrete_attrs)
    if workload == "chow_liu":
        # the served aggregates are the pairwise-MI batch chow_liu_tree
        # consumes; tree assembly itself needs networkx, so gate on it
        # here rather than failing at post-processing time
        try:
            from .ml.chow_liu import chow_liu_tree  # noqa: F401
        except ImportError as exc:
            raise WorkloadUnavailable(
                f"workload 'chow_liu' needs networkx ({exc})"
            ) from None
        return build_mi_batch(dataset.discrete_attrs)
    if workload in ("cube", "datacube"):
        return build_cube_batch(
            dataset.cube_dimensions, dataset.cube_measures
        )
    raise SystemExit(
        f"unknown workload {workload!r}; use one of "
        f"{'/'.join(WORKLOAD_CHOICES)}"
    )


def cmd_info(args) -> int:
    names = args.datasets or list(ALL_DATASETS)
    for name in names:
        if name not in ALL_DATASETS:
            raise SystemExit(f"unknown dataset {name!r}")
        dataset = ALL_DATASETS[name](scale=args.scale)
        summary = dataset.summary()
        print(
            f"{name:10} relations={summary['relations']:2} "
            f"tuples={summary['tuples']:>8} "
            f"attrs={summary['attributes']:3} "
            f"categorical={summary['categorical']:3} "
            f"size={summary['size_mb']:.2f}MB"
        )
    return 0


def _dataset_and_engine(args):
    if args.dataset not in ALL_DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}")
    dataset = ALL_DATASETS[args.dataset](scale=args.scale)
    engine = LMFAO(dataset.database, dataset.join_tree)
    return dataset, engine


def cmd_plan(args) -> int:
    dataset, engine = _dataset_and_engine(args)
    batch = _build_workload(dataset, engine, args.workload)
    plan = engine.plan(batch)
    print(explain(plan, dataset.join_tree))
    print()
    print("Table 2 row:", plan.statistics.table2_row())
    return 0


def cmd_sql(args) -> int:
    dataset, engine = _dataset_and_engine(args)
    batch = _build_workload(dataset, engine, args.workload)
    plan = engine.plan(batch)
    print(render_batch_sql(plan.decomposed))
    return 0


def cmd_run(args) -> int:
    if args.workloads:
        if args.workload is not None:
            raise SystemExit(
                "give either a positional workload or --workloads, not both"
            )
        if args.backend == "all":
            raise SystemExit(
                "--workloads times one backend; pick one instead of 'all'"
            )
        if args.incremental:
            raise SystemExit("--incremental takes a single workload")
        dataset, engine = _dataset_and_engine(args)
        return _run_workloads(args, dataset, engine)
    if args.workload is None:
        raise SystemExit("run needs a workload (or --workloads)")
    dataset, engine = _dataset_and_engine(args)
    batch = _build_workload(dataset, engine, args.workload)
    if args.incremental:
        return _run_incremental(args, dataset, batch)
    backends = (
        ["interpret", "compiled", "process"]
        if args.backend == "all"
        else [args.backend]
    )
    print(
        f"{args.workload} on {args.dataset}: {len(batch)} queries, "
        f"{batch.n_application_aggregates} aggregates "
        f"(threads={args.threads})"
    )
    # one Database, loaded and attribute-sorted exactly once (by the
    # planning engine above), shared by every backend run — the timing
    # comparison then measures execution, not repeated preprocessing
    shared_db = engine.database
    baseline = None
    for name in backends:
        with LMFAO(
            shared_db,
            dataset.join_tree,
            backend=name,
            n_threads=args.threads,
            sort_inputs=False,
        ) as backend_engine:
            backend_engine.plan(batch)  # warm: plan+compile untimed
            start = time.perf_counter()
            results = backend_engine.run(batch)
            elapsed = time.perf_counter() - start
        n_rows = sum(r.n_rows for r in results.values())
        baseline = baseline or elapsed
        print(
            f"  {name:9} {elapsed:8.4f}s  {n_rows} result rows"
            f"  ({baseline / elapsed:.2f}x vs {backends[0]})"
        )
    print("plan:", engine.plan(batch).statistics.table2_row())
    return 0


def _run_workloads(args, dataset, engine) -> int:
    """Run several workloads through one (optionally fused/cached) session."""
    names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if not names:
        raise SystemExit("--workloads needs at least one workload name")
    if len(set(names)) != len(names):
        raise SystemExit(f"duplicate workload in --workloads: {names}")
    cache = (
        ViewCache(budget_bytes=int(args.cache_mb * (1 << 20)))
        if args.cache_mb
        else None
    )
    session = WorkloadSession(
        engine.database,  # loaded + sorted once, shared with the session
        dataset.join_tree,
        cache=cache,
        backend=args.backend,
        n_threads=args.threads,
        sort_inputs=False,
    )
    batches = {}
    for name in names:
        batches[name] = _build_workload(dataset, engine, name)
        session.add_workload(name, batches[name])
    mode = "fused" if args.fuse else "independent"
    print(
        f"{'+'.join(names)} on {args.dataset} "
        f"[{mode}, backend={args.backend}"
        + (f", cache={args.cache_mb:g}MiB]" if cache else "]")
    )
    if args.fuse:
        report = session.fusion_report()
        print(
            f"  fused DAG: {report.views_fused} views / "
            f"{report.groups_fused} groups "
            f"(vs {report.views_independent} views / "
            f"{report.groups_independent} groups unfused — "
            f"{report.views_saved} views shared)"
        )
    # warm the plan cache so the timing below measures execution
    if args.fuse:
        session.engine.plan(session.fused_batch())
    else:
        for batch in batches.values():
            session.engine.plan(batch)
    start = time.perf_counter()
    results = session.run() if args.fuse else session.run_independent()
    elapsed = time.perf_counter() - start
    for name in names:
        n_rows = sum(r.n_rows for r in results[name].values())
        print(
            f"  {name:8} {len(batches[name])} queries  "
            f"{n_rows} result rows"
        )
    print(f"  {mode} execution: {elapsed:.4f}s")
    if cache is not None:
        stats = cache.stats()
        print(
            f"  view cache: {stats.hits} hits / {stats.misses} misses, "
            f"{stats.evictions} evictions, "
            f"{cache.total_bytes / (1 << 20):.2f} MiB resident"
        )
        reports = (
            [("(fused)", results.cache_report)]
            if args.fuse
            else [(name, results[name].cache_report) for name in names]
        )
        for label, run_report in reports:
            if run_report is None:
                continue
            print(
                f"  per-view report {label}: {run_report.n_hits} hits, "
                f"{run_report.n_misses} misses, "
                f"{run_report.skipped_groups}/{run_report.total_groups} "
                f"groups skipped"
            )
            for line in run_report.lines():
                print(f"  {line}")
    session.close()
    return 0


def _run_incremental(args, dataset, batch) -> int:
    """Execute a workload, then maintain it under a synthetic delta."""
    if not 0.0 < args.delta_fraction <= 1.0:
        raise SystemExit(
            f"--delta-fraction must be in (0, 1], got {args.delta_fraction}"
        )
    engine = IncrementalEngine(dataset.database, dataset.join_tree)
    start = time.perf_counter()
    results = engine.run(batch)
    materialize_s = time.perf_counter() - start
    n_rows = sum(r.n_rows for r in results.values())
    print(
        f"{args.workload} on {args.dataset}: {len(batch)} queries, "
        f"{n_rows} result rows materialized in {materialize_s:.4f}s "
        f"(root={engine.root})"
    )
    # fair full-re-evaluation baseline: re-execute the cached plan
    # (planning + compilation excluded, as for the maintenance side)
    start = time.perf_counter()
    engine.refresh()
    full_s = time.perf_counter() - start
    rng = np.random.default_rng(0)
    fact = engine.database.relation(engine.root)
    n_delta = max(1, int(fact.n_rows * args.delta_fraction))
    idx = rng.integers(0, fact.n_rows, n_delta)
    inserts = {a: fact.column(a)[idx] for a in fact.schema.names}
    deletes = rng.choice(fact.n_rows, n_delta, replace=False)
    report = engine.apply_delta(
        DeltaBatch(engine.root, inserts=inserts, delete_indices=deletes)
    )
    maintenance = report.batches[0]
    updated = engine.run(batch)
    print(
        f"delta: +{n_delta}/-{n_delta} rows on {engine.root} "
        f"({args.delta_fraction:.1%}) maintained in "
        f"{maintenance.seconds:.4f}s [{maintenance.mode}], "
        f"{full_s / maintenance.seconds:.1f}x faster than full "
        f"re-evaluation ({full_s:.4f}s)"
    )
    print(
        f"updated result rows: {sum(r.n_rows for r in updated.values())}"
    )
    return 0


#: workloads the service registers for ``serve`` — the full ML set
#: (rt_node is the same batch as trees and mi/cube are short aliases
#: of mutual_information/datacube; they stay CLI-only)
SERVE_WORKLOADS = (
    "covar",
    "linreg",
    "trees",
    "kmeans",
    "polyreg",
    "chow_liu",
    "mutual_information",
    "datacube",
)


def build_service(args, dataset) -> AnalyticsService:
    """An :class:`AnalyticsService` over one dataset, all workloads."""
    service = AnalyticsService(
        coalesce_ms=args.coalesce_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        cache_mb=args.cache_mb,
        backend=args.backend,
        n_threads=args.threads,
        data_dir=getattr(args, "data_dir", None),
        compact_wal=getattr(args, "compact_wal", 0),
        spill_mb=getattr(args, "spill_mb", 512.0),
    )
    service.register_dataset(
        args.dataset, dataset.database, dataset.join_tree
    )
    recovery = service.recovery(args.dataset)
    if recovery is not None:
        print(
            f"restored {args.dataset} from {args.data_dir}: snapshot "
            f"epoch {recovery.snapshot_epoch} "
            f"({recovery.snapshot_load_seconds:.3f}s) + "
            f"{recovery.replayed_commits} WAL commits "
            f"({recovery.replayed_changes} changes, "
            f"{recovery.replay_seconds:.3f}s) -> epoch {recovery.epoch}; "
            f"warm cache: {recovery.cache_entries} views "
            f"({recovery.cache_bytes / (1 << 20):.2f} MiB) on disk"
            + (
                " [torn WAL tail truncated]"
                if recovery.wal_tail_truncated
                else ""
            )
        )
    elif getattr(args, "data_dir", None):
        print(f"initialized durable storage at {args.data_dir}")
    # a compile-free planner builds the workload batches (the tree
    # learner wants an engine handle; node_batch never executes it)
    planner = LMFAO(
        dataset.database, dataset.join_tree, compile=False,
        sort_inputs=False,
    )
    for name in SERVE_WORKLOADS:
        try:
            batch = _build_workload(dataset, planner, name)
        except WorkloadUnavailable as exc:
            print(f"skipping {exc}")
            continue
        service.register_workload(args.dataset, name, batch)
    # plan + compile every workload (and the full fused union) before
    # accepting traffic, so no request pays codegen inline
    service.prepare(args.dataset)
    return service


def cmd_serve(args) -> int:
    from .server.http import make_http_server

    if args.dataset not in ALL_DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}")
    dataset = ALL_DATASETS[args.dataset](scale=args.scale)
    service = build_service(args, dataset)
    server = make_http_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    mode = (
        f"coalesce={args.coalesce_ms:g}ms (max batch {args.max_batch})"
        if args.coalesce_ms > 0
        else "coalescing off"
    )
    print(
        f"serving {args.dataset} (scale {args.scale:g}) on "
        f"http://{host}:{port} [{mode}, cache={args.cache_mb:g}MiB, "
        f"queue cap {args.max_queue}]"
    )
    print(
        f"workloads: {', '.join(service.workload_names(args.dataset))}; "
        f"endpoints: POST /query, POST /delta, GET /stats, GET /healthz"
    )

    # graceful SIGTERM (the deploy/orchestrator signal): break out of
    # serve_forever, then the finally block drains in-flight coalescer
    # batches and fsyncs+closes the WAL before the process exits
    def _on_sigterm(signum, frame):
        raise SystemExit(0)

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        server.server_close()
        service.close()  # drains the coalescer, fsyncs + closes storage
    return 0


def cmd_snapshot(args) -> int:
    from .storage import DatasetStorage

    if args.dataset not in ALL_DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}")
    dataset = ALL_DATASETS[args.dataset](scale=args.scale)
    t0 = time.perf_counter()
    storage = DatasetStorage(os.path.join(args.out, args.dataset))
    if storage.has_snapshot() and not args.force:
        storage.close()
        raise SystemExit(
            f"{args.out} already holds a snapshot of {args.dataset} "
            "(and possibly WAL'd commits); re-initializing would "
            "discard that history.  Pass --force to overwrite."
        )
    info = storage.initialize(dataset.database, epoch=0)
    storage.close()
    print(
        f"snapshot of {args.dataset} (scale {args.scale:g}) -> "
        f"{info.directory}: {info.n_relations} relations, "
        f"{info.n_rows} rows, {info.nbytes / (1 << 20):.2f} MiB "
        f"in {time.perf_counter() - t0:.3f}s"
    )
    print(f"serve it with: repro serve {args.dataset} --data-dir {args.out}")
    return 0


def cmd_restore(args) -> int:
    from .storage import DatasetStorage, dataset_dirs

    directories = dataset_dirs(args.data_dir)
    if not directories:
        raise SystemExit(
            f"no dataset storage under {args.data_dir!r} (no CURRENT file)"
        )
    for directory in directories:
        storage = DatasetStorage(directory)
        recovered = storage.recover()
        storage.close()
        stats = recovered.stats
        print(
            f"{os.path.basename(directory)}: epoch {recovered.epoch} "
            f"(snapshot {stats.snapshot_epoch} + "
            f"{stats.replayed_commits} WAL commits, "
            f"{stats.replayed_changes} changes)"
            + (
                " [torn WAL tail truncated]"
                if stats.wal_tail_truncated
                else ""
            )
        )
        for relation in recovered.database:
            print(f"  {relation.name:16} {relation.n_rows:>10} rows")
        print(
            f"  snapshot load {stats.snapshot_load_seconds:.3f}s, "
            f"WAL replay {stats.replay_seconds:.3f}s, "
            f"spilled cache {stats.cache_entries} views "
            f"({stats.cache_bytes / (1 << 20):.2f} MiB)"
        )
    return 0


def cmd_client(args) -> int:
    client = AnalyticsClient(args.host, args.port)
    if args.action == "health":
        payload = client.healthz()
    elif args.action == "stats":
        payload = client.stats()
    else:  # query
        if not args.dataset or not args.workloads:
            raise SystemExit(
                "client query needs a dataset and comma-separated "
                "workloads, e.g.: client query retailer covar,linreg"
            )
        payload = client.query(
            args.dataset,
            [w.strip() for w in args.workloads.split(",") if w.strip()],
            include_data=args.include_data,
        )
    print(json.dumps(payload, indent=2))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LMFAO reproduction CLI"
    )
    parser.add_argument(
        "--scale", type=float, default=0.2, help="dataset scale factor"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="dataset characteristics")
    p_info.add_argument("datasets", nargs="*")
    p_info.set_defaults(fn=cmd_info)

    for name, fn, help_text in (
        ("plan", cmd_plan, "EXPLAIN a workload plan"),
        ("sql", cmd_sql, "print the decomposition as SQL"),
        ("run", cmd_run, "execute and time one or more workloads"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("dataset", choices=sorted(ALL_DATASETS))
        if name == "run":
            p.add_argument(
                "workload", nargs="?", choices=WORKLOAD_CHOICES,
                help="single workload to run (or use --workloads)",
            )
        else:
            p.add_argument("workload", choices=WORKLOAD_CHOICES)
        if name == "run":
            p.add_argument(
                "--backend",
                choices=["interpret", "compiled", "process", "all"],
                default="compiled",
                help="execution backend; 'all' times each backend in "
                "turn (default: compiled)",
            )
            p.add_argument(
                "--workloads",
                help="comma-separated workloads to run through one "
                "WorkloadSession, e.g. covar,linreg,trees",
            )
            p.add_argument(
                "--fuse",
                action="store_true",
                help="fuse the --workloads batches into one "
                "deduplicated view DAG (shared views run once)",
            )
            p.add_argument(
                "--cache-mb",
                type=float,
                default=0.0,
                help="attach a content-addressed view cache with this "
                "byte budget (MiB) and print the per-view hit/miss "
                "report (0 = no cache)",
            )
            p.add_argument(
                "--threads",
                type=int,
                default=1,
                help="task/domain parallelism; for --backend process, "
                "values > 1 set the worker count and 1 means all cores "
                "(default: 1)",
            )
            p.add_argument(
                "--incremental",
                action="store_true",
                help="materialize, then maintain under a synthetic delta "
                "instead of recomputing",
            )
            p.add_argument(
                "--delta-fraction",
                type=float,
                default=0.01,
                help="synthetic delta size as a fraction of the fact "
                "relation (with --incremental; default 0.01)",
            )
        p.set_defaults(fn=fn)

    p_serve = sub.add_parser(
        "serve", help="run the concurrent analytics service over HTTP"
    )
    p_serve.add_argument("dataset", choices=sorted(ALL_DATASETS))
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    p_serve.add_argument(
        "--coalesce-ms",
        type=float,
        default=5.0,
        help="micro-batching window for request coalescing; 0 disables "
        "coalescing (default: 5)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="cap on requests fused into one batch (default: 16)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission-control cap: pending requests beyond this are "
        "shed with HTTP 503 (default: 64)",
    )
    p_serve.add_argument(
        "--cache-mb",
        type=float,
        default=64.0,
        help="view-cache byte budget in MiB; 0 disables the cache "
        "(default: 64)",
    )
    p_serve.add_argument(
        "--backend",
        choices=["interpret", "compiled"],
        default="compiled",
        help="execution backend for served queries (default: compiled)",
    )
    p_serve.add_argument("--threads", type=int, default=1)
    p_serve.add_argument(
        "--data-dir",
        default=None,
        help="durable storage directory: restore snapshot + replay WAL "
        "+ warm view cache on boot, write-ahead-log every delta commit "
        "(default: in-memory only)",
    )
    p_serve.add_argument(
        "--compact-wal",
        type=int,
        default=0,
        help="fold the WAL into a fresh snapshot once it holds this "
        "many commits (0 = never auto-compact; default: 0)",
    )
    p_serve.add_argument(
        "--spill-mb",
        type=float,
        default=512.0,
        help="disk budget for the persistent view-cache tier; oldest "
        "spilled views are pruned beyond it (0 = unbounded; "
        "default: 512)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="write a columnar on-disk snapshot of a dataset",
    )
    p_snapshot.add_argument("dataset", choices=sorted(ALL_DATASETS))
    p_snapshot.add_argument(
        "--out",
        required=True,
        help="data directory to create (serve it with --data-dir)",
    )
    p_snapshot.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing data dir, discarding its snapshot "
        "and every WAL'd commit",
    )
    p_snapshot.set_defaults(fn=cmd_snapshot)

    p_restore = sub.add_parser(
        "restore",
        help="recover a data directory offline (snapshot + WAL replay)",
    )
    p_restore.add_argument(
        "data_dir", help="a --data-dir previously written by serve/snapshot"
    )
    p_restore.set_defaults(fn=cmd_restore)

    p_client = sub.add_parser(
        "client", help="talk to a running analytics service"
    )
    p_client.add_argument("action", choices=["health", "stats", "query"])
    p_client.add_argument("dataset", nargs="?")
    p_client.add_argument(
        "workloads", nargs="?",
        help="comma-separated workload names (query only)",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8080)
    p_client.add_argument(
        "--include-data",
        action="store_true",
        help="return full result columns, not just row counts",
    )
    p_client.set_defaults(fn=cmd_client)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
