"""Aggregates: sums of products of functions (paper §1.1)."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from .functions import Constant, Function, Identity, fold_constants

FactorLike = Union[Function, str, float, int]


def _as_function(factor: FactorLike) -> Function:
    """Coerce shorthand factors: strings are identities, numbers constants."""
    if isinstance(factor, Function):
        return factor
    if isinstance(factor, str):
        return Identity(factor)
    if isinstance(factor, (int, float)):
        return Constant(factor)
    raise TypeError(f"cannot interpret {factor!r} as an aggregate factor")


class Product:
    """One product term ``coefficient * prod_k f_k``."""

    def __init__(self, factors: Iterable[FactorLike] = (), coefficient: float = 1.0):
        funcs = [_as_function(f) for f in factors]
        folded, rest = fold_constants(funcs)
        self.coefficient = coefficient * folded
        self.factors: Tuple[Function, ...] = rest

    @property
    def attrs(self) -> Tuple[str, ...]:
        seen = {}
        for f in self.factors:
            for a in f.attrs:
                seen.setdefault(a, None)
        return tuple(seen)

    def signature(self) -> tuple:
        return (
            "product",
            self.coefficient,
            tuple(sorted(f.signature() for f in self.factors)),
        )

    def dynamic_functions(self) -> Tuple[Function, ...]:
        return tuple(f for f in self.factors if f.dynamic)

    def __mul__(self, other: "Product") -> "Product":
        merged = Product(self.factors + other.factors)
        merged.coefficient = self.coefficient * other.coefficient
        return merged

    def __repr__(self) -> str:
        inner = " * ".join(repr(f) for f in self.factors) or "1"
        if self.coefficient != 1.0:
            return f"{self.coefficient} * {inner}"
        return inner


class Aggregate:
    """A SUM aggregate: sum over the join of a sum of product terms.

    ``Aggregate.count()`` is ``SUM(1)``; ``Aggregate.of("X")`` is
    ``SUM(X)``; ``Aggregate.of("X", "Y")`` is ``SUM(X*Y)``.
    """

    def __init__(self, terms: Sequence[Product], name: str = ""):
        if not terms:
            raise ValueError("an aggregate needs at least one product term")
        self.terms: Tuple[Product, ...] = tuple(terms)
        self.name = name

    # -- constructors ------------------------------------------------------

    @classmethod
    def count(cls, name: str = "count") -> "Aggregate":
        return cls([Product()], name=name)

    @classmethod
    def of(cls, *factors: FactorLike, name: str = "") -> "Aggregate":
        prod = Product(list(factors))
        agg_name = name or "*".join(
            f if isinstance(f, str) else repr(f) for f in factors
        )
        return cls([prod], name=agg_name)

    @classmethod
    def linear_combination(
        cls,
        coefficients: Sequence[float],
        factor_lists: Sequence[Sequence[FactorLike]],
        name: str = "",
    ) -> "Aggregate":
        """``sum_j c_j * prod_k f_jk`` — e.g. the inner product <theta, X>."""
        if len(coefficients) != len(factor_lists):
            raise ValueError("coefficients and factor lists differ in length")
        terms = [
            Product(list(factors), coefficient=c)
            for c, factors in zip(coefficients, factor_lists)
        ]
        return cls(terms, name=name)

    # -- properties --------------------------------------------------------

    @property
    def attrs(self) -> Tuple[str, ...]:
        seen = {}
        for term in self.terms:
            for a in term.attrs:
                seen.setdefault(a, None)
        return tuple(seen)

    def signature(self) -> tuple:
        return ("aggregate", tuple(t.signature() for t in self.terms))

    def scaled(self, factor: float) -> "Aggregate":
        """The same aggregate with every term scaled by ``factor``."""
        terms = []
        for term in self.terms:
            clone = Product(term.factors)
            clone.coefficient = term.coefficient * factor
            terms.append(clone)
        return Aggregate(terms, name=self.name)

    def __repr__(self) -> str:
        body = " + ".join(repr(t) for t in self.terms)
        return f"Aggregate({self.name or body})"
