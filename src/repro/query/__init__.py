"""Query language: UDAF function algebra, aggregates, queries, batches."""

from .aggregates import Aggregate, Product
from .functions import (
    Constant,
    Delta,
    Exp,
    Function,
    Identity,
    Log,
    Power,
    Udf,
)
from .query import Query, QueryBatch

__all__ = [
    "Function",
    "Constant",
    "Identity",
    "Power",
    "Delta",
    "Log",
    "Exp",
    "Udf",
    "Product",
    "Aggregate",
    "Query",
    "QueryBatch",
]
