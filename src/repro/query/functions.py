"""The function algebra of LMFAO aggregates.

Aggregates are *sums of products of functions* (paper §1.1):

    alpha_i = sum_j prod_k f_ijk

This module provides the function vocabulary: constants, identities,
powers, Kronecker deltas ``1_{X op t}`` (decision-tree split conditions),
logarithms/exponentials, and arbitrary user callables.

Every function knows:

* ``attrs`` — which attributes it reads;
* ``evaluate(columns)`` — vectorized evaluation over row-aligned columns;
* ``expr(col_vars)`` — a NumPy source expression for the Compilation layer
  (static functions are inlined into generated code);
* ``signature()`` — a value-inclusive hashable identity used for view
  merging and sharing;
* ``structural_signature(slot)`` — a value-free identity used by the plan
  cache, so *dynamic* functions (paper §1.2: functions that change between
  iterations, e.g. decision-tree conditions) can be re-bound without
  re-planning.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence, Tuple

import numpy as np

_OPS = {
    "<=": (np.less_equal, "<="),
    "<": (np.less, "<"),
    ">=": (np.greater_equal, ">="),
    ">": (np.greater, ">"),
    "==": (np.equal, "=="),
    "!=": (np.not_equal, "!="),
}


class Function:
    """Base class for aggregate factor functions."""

    #: attributes this function reads (tuple of names)
    attrs: Tuple[str, ...] = ()
    #: dynamic functions are parameters of compiled plans, not inlined
    dynamic: bool = False

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def expr(self, col_vars: Mapping[str, str]) -> str:
        """NumPy source expression over the given column variables."""
        raise NotImplementedError

    def signature(self) -> tuple:
        """Value-inclusive identity (used for sharing identical factors)."""
        raise NotImplementedError

    def structural_signature(self, slot: int) -> tuple:
        """Value-free identity; dynamic functions use their batch slot."""
        if self.dynamic:
            return ("dyn", type(self).__name__, self.attrs, slot)
        return self.signature()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class Constant(Function):
    """The constant function ``f() = value`` (``SUM(1)`` is Constant(1))."""

    def __init__(self, value: float = 1.0):
        self.value = float(value)
        self.attrs = ()

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise RuntimeError(
            "Constant factors are folded at plan time, never evaluated "
            "row-wise"
        )

    def expr(self, col_vars: Mapping[str, str]) -> str:
        return repr(self.value)

    def signature(self) -> tuple:
        return ("const", self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Identity(Function):
    """``f(X) = X`` — the plain SUM(X) factor."""

    def __init__(self, attr: str):
        self.attr = attr
        self.attrs = (attr,)

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(columns[self.attr], dtype=np.float64)

    def expr(self, col_vars: Mapping[str, str]) -> str:
        return f"{col_vars[self.attr]}.astype(np.float64)"

    def signature(self) -> tuple:
        return ("id", self.attr)

    def __repr__(self) -> str:
        return f"Identity({self.attr})"


class Power(Function):
    """``f(X) = X**k`` — polynomial-regression factors (paper eq. (5))."""

    def __init__(self, attr: str, exponent: int):
        self.attr = attr
        self.exponent = int(exponent)
        self.attrs = (attr,)

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(columns[self.attr], dtype=np.float64) ** self.exponent

    def expr(self, col_vars: Mapping[str, str]) -> str:
        return (
            f"{col_vars[self.attr]}.astype(np.float64) ** {self.exponent}"
        )

    def signature(self) -> tuple:
        return ("pow", self.attr, self.exponent)

    def __repr__(self) -> str:
        return f"Power({self.attr}, {self.exponent})"


class Delta(Function):
    """Kronecker delta ``1_{X op t}`` (paper §1.1, decision-tree nodes).

    ``op`` is one of ``<= < >= > == !=``, or ``"in"`` with ``value`` a
    collection of categories.  Mark ``dynamic=True`` when the threshold
    changes between engine invocations (CART learning) so compiled plans
    are reused instead of regenerated.
    """

    def __init__(self, attr, op, value, dynamic: bool = False):
        if op != "in" and op not in _OPS:
            raise ValueError(f"unknown delta operator {op!r}")
        self.attr = attr
        self.op = op
        if op == "in":
            self.value = tuple(sorted(value))
        else:
            self.value = float(value)
        self.attrs = (attr,)
        self.dynamic = dynamic

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        col = columns[self.attr]
        if self.op == "in":
            mask = np.isin(col, np.asarray(self.value))
        else:
            mask = _OPS[self.op][0](col, self.value)
        return mask.astype(np.float64)

    def expr(self, col_vars: Mapping[str, str]) -> str:
        var = col_vars[self.attr]
        if self.op == "in":
            return (
                f"np.isin({var}, np.asarray({self.value!r}))"
                ".astype(np.float64)"
            )
        return f"({var} {_OPS[self.op][1]} {self.value!r}).astype(np.float64)"

    def signature(self) -> tuple:
        return ("delta", self.attr, self.op, self.value)

    def structural_signature(self, slot: int) -> tuple:
        # both value AND operator are runtime-bound for dynamic deltas:
        # the compiled plan calls the function through its slot, so a
        # CART complement branch (`>` vs `<=`) reuses the same plan
        if self.dynamic:
            return ("dyn", "delta", self.attr, slot)
        return self.signature()

    def __repr__(self) -> str:
        return f"Delta({self.attr} {self.op} {self.value!r})"


class Log(Function):
    """``f(X) = log(X)`` (mutual-information style factors)."""

    def __init__(self, attr: str):
        self.attr = attr
        self.attrs = (attr,)

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.log(np.asarray(columns[self.attr], dtype=np.float64))

    def expr(self, col_vars: Mapping[str, str]) -> str:
        return f"np.log({col_vars[self.attr]}.astype(np.float64))"

    def signature(self) -> tuple:
        return ("log", self.attr)

    def __repr__(self) -> str:
        return f"Log({self.attr})"


class Exp(Function):
    """``f(X1..Xn) = exp(sum_j theta_j X_j)`` — the logistic-regression
    example of §1.1."""

    def __init__(self, attrs: Sequence[str], thetas: Sequence[float]):
        if len(attrs) != len(thetas):
            raise ValueError("attrs and thetas must have equal length")
        self.attrs = tuple(attrs)
        self.thetas = tuple(float(t) for t in thetas)

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        total = np.zeros(len(columns[self.attrs[0]]), dtype=np.float64)
        for attr, theta in zip(self.attrs, self.thetas):
            total += theta * np.asarray(columns[attr], dtype=np.float64)
        return np.exp(total)

    def expr(self, col_vars: Mapping[str, str]) -> str:
        terms = " + ".join(
            f"{theta!r} * {col_vars[a]}.astype(np.float64)"
            for a, theta in zip(self.attrs, self.thetas)
        )
        return f"np.exp({terms})"

    def signature(self) -> tuple:
        return ("exp", self.attrs, self.thetas)

    def __repr__(self) -> str:
        return f"Exp({self.attrs}, {self.thetas})"


class Udf(Function):
    """An arbitrary user-defined factor over one or more attributes.

    UDFs are treated like dynamic functions by the Compilation layer: they
    are invoked through the parameter table instead of being inlined
    (there is no source form to inline).
    """

    def __init__(
        self,
        attrs: Sequence[str],
        fn: Callable[..., np.ndarray],
        name: str,
        dynamic: bool = True,
    ):
        self.attrs = tuple(attrs)
        self.fn = fn
        self.name = name
        self.dynamic = dynamic

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        result = self.fn(*(columns[a] for a in self.attrs))
        return np.asarray(result, dtype=np.float64)

    def expr(self, col_vars: Mapping[str, str]) -> str:
        raise RuntimeError(
            f"UDF {self.name!r} has no inline form; it must be dynamic"
        )

    def signature(self) -> tuple:
        return ("udf", self.name, self.attrs)

    def structural_signature(self, slot: int) -> tuple:
        if self.dynamic:
            return ("dyn", "udf", self.attrs, slot)
        return self.signature()

    def __repr__(self) -> str:
        return f"Udf({self.name!r}, {self.attrs})"


def fold_constants(
    factors: Sequence[Function],
) -> Tuple[float, Tuple[Function, ...]]:
    """Split a factor list into (scalar coefficient, non-constant factors).

    Products of constants are folded at plan time — part of the paper's
    code specialization.
    """
    coefficient = 1.0
    rest = []
    for factor in factors:
        if isinstance(factor, Constant):
            coefficient *= factor.value
        else:
            rest.append(factor)
    if math.isnan(coefficient):
        raise ValueError("NaN constant coefficient in aggregate product")
    return coefficient, tuple(rest)
