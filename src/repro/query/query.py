"""Queries of the paper's form (1):

    Q(F1, ..., Ff; alpha_1, ..., alpha_l) += R1(w1), ..., Rm(wm)

A query has group-by attributes and a list of aggregates; the body is
always the natural join of the whole database, so it is left implicit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .aggregates import Aggregate


class Query:
    """One group-by aggregate query over the natural join."""

    def __init__(
        self,
        name: str,
        group_by: Sequence[str],
        aggregates: Sequence[Aggregate],
    ):
        if not aggregates:
            raise ValueError(f"query {name!r} has no aggregates")
        group_list = list(group_by)
        if len(set(group_list)) != len(group_list):
            raise ValueError(
                f"query {name!r} has duplicate group-by attributes"
            )
        self.name = name
        self.group_by: Tuple[str, ...] = tuple(group_list)
        self.aggregates: Tuple[Aggregate, ...] = tuple(aggregates)

    @property
    def n_aggregates(self) -> int:
        return len(self.aggregates)

    def signature(self) -> tuple:
        return (
            "query",
            self.group_by,
            tuple(a.signature() for a in self.aggregates),
        )

    def referenced_attrs(self) -> Tuple[str, ...]:
        seen = dict.fromkeys(self.group_by)
        for agg in self.aggregates:
            for attr in agg.attrs:
                seen.setdefault(attr, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gb = ", ".join(self.group_by)
        return f"Query({self.name!r}: [{gb}; {len(self.aggregates)} aggs])"


class QueryBatch:
    """A batch of queries sharing the same join — LMFAO's unit of work."""

    def __init__(self, queries: Sequence[Query]):
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate query names in batch: {names}")
        self.queries: Tuple[Query, ...] = tuple(queries)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def n_application_aggregates(self) -> int:
        """The paper's "A" statistic (Table 2)."""
        return sum(q.n_aggregates for q in self.queries)

    def dynamic_functions(self) -> List:
        """All dynamic functions in deterministic batch order.

        The order defines the *slots* used by compiled plans: re-running a
        structurally identical batch binds new function values by slot.
        """
        dyn = []
        seen = set()
        for query in self.queries:
            for agg in query.aggregates:
                for term in agg.terms:
                    for func in term.factors:
                        if func.dynamic and id(func) not in seen:
                            seen.add(id(func))
                            dyn.append(func)
        return dyn

    def structural_signature(self) -> tuple:
        """Value-free batch identity: the compiled-plan cache key.

        Dynamic function values are abstracted to slot numbers, so CART's
        per-node batches (same shape, new thresholds) hit the plan cache.
        """
        slots = {id(f): i for i, f in enumerate(self.dynamic_functions())}
        parts = []
        for query in self.queries:
            agg_sigs = []
            for agg in query.aggregates:
                term_sigs = []
                for term in agg.terms:
                    factor_sigs = tuple(
                        sorted(
                            f.structural_signature(slots.get(id(f), -1))
                            for f in term.factors
                        )
                    )
                    term_sigs.append((term.coefficient, factor_sigs))
                agg_sigs.append(tuple(term_sigs))
            parts.append((query.group_by, tuple(agg_sigs)))
        return tuple(parts)

    def referenced_attrs(self) -> Tuple[str, ...]:
        seen = {}
        for query in self.queries:
            for attr in query.referenced_attrs():
                seen.setdefault(attr, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryBatch({len(self.queries)} queries, "
            f"{self.n_application_aggregates} aggregates)"
        )
