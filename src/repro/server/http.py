"""Stdlib HTTP front-end for the :class:`AnalyticsService`.

Endpoints (all JSON):

* ``GET /healthz`` — liveness: registered datasets and their epochs;
* ``GET /stats`` — the service-wide report: snapshot-consistent view
  cache counters, coalescer batch-size stats, per-dataset epochs;
* ``POST /query`` — ``{"dataset": ..., "workloads": ["covar", ...],
  "include_data": false}``; blocks in the coalescer and answers with
  the committed epoch it was served from;
* ``POST /delta`` — ``{"dataset": ..., "relation": ...,
  "inserts": {col: [...]}, "delete_indices": [...]}``; commits a new
  epoch and reports the IVM maintenance modes.

Errors map to conventional status codes: unknown dataset/relation →
404, malformed requests → 400 (an unknown *workload* is malformed — the
400 body lists the valid names under ``valid_workloads``),
admission-control shedding → 503 (with ``Retry-After``).

Built on :class:`http.server.ThreadingHTTPServer` only — no third-party
dependencies — which pairs naturally with the service's design: handler
threads block inside the coalescer while its single worker executes
fused batches, so concurrency lives at the admission layer, not in the
engine.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..data.database import DeltaBatch
from ..data.relation import Relation
from .coalescer import ServiceOverloaded
from .service import (
    AnalyticsService,
    QueryResponse,
    UnknownWorkloadError,
)

#: request body size cap (16 MiB) — a plain sanity bound, not a quota
MAX_BODY_BYTES = 16 << 20


def relation_payload(relation: Relation, include_data: bool) -> dict:
    out = {
        "n_rows": relation.n_rows,
        "columns": list(relation.schema.names),
    }
    if include_data:
        out["data"] = {
            name: relation.column(name).tolist()
            for name in relation.schema.names
        }
    return out


def query_response_payload(
    response: QueryResponse, include_data: bool
) -> dict:
    return {
        "dataset": response.dataset,
        "epoch": response.epoch,
        "batch_size": response.batch_size,
        "seconds": round(response.seconds, 6),
        "results": {
            workload: {
                query_name: relation_payload(relation, include_data)
                for query_name, relation in batch_result.items()
            }
            for workload, batch_result in response.results.items()
        },
    }


def delta_from_payload(body: dict) -> Tuple[str, DeltaBatch]:
    dataset = body.get("dataset")
    relation = body.get("relation")
    if not dataset or not relation:
        raise ValueError("delta needs 'dataset' and 'relation'")
    inserts = body.get("inserts")
    if inserts is not None:
        if not isinstance(inserts, dict):
            raise ValueError("'inserts' must map column -> list of values")
        inserts = {
            name: np.asarray(values) for name, values in inserts.items()
        }
    delete_indices = body.get("delete_indices")
    if delete_indices is not None:
        delete_indices = np.asarray(delete_indices, dtype=np.int64)
    if inserts is None and delete_indices is None:
        raise ValueError(
            "delta needs 'inserts' and/or 'delete_indices'"
        )
    return dataset, DeltaBatch(
        relation=relation, inserts=inserts, delete_indices=delete_indices
    )


class AnalyticsRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's service."""

    server_version = "repro-analytics/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> AnalyticsService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, retry_after: Optional[int] = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body over {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        body = json.loads(raw)
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            service = self.service
            self._send_json(
                200,
                {
                    "status": "ok",
                    "datasets": {
                        name: service.epoch(name)
                        for name in service.datasets()
                    },
                },
            )
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            body = self._read_body()
            if path == "/query":
                self._handle_query(body)
            elif path == "/delta":
                self._handle_delta(body)
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except ServiceOverloaded as exc:
            self._send_json(503, {"error": str(exc)}, retry_after=1)
        except UnknownWorkloadError as exc:
            # a misspelled workload is a malformed request against an
            # existing route — answer 400 and name what *would* work
            self._send_json(
                400,
                {"error": str(exc), "valid_workloads": exc.valid},
            )
        except KeyError as exc:
            self._send_json(404, {"error": str(exc.args[0])})
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
        except TimeoutError as exc:
            self._send_json(504, {"error": str(exc)})

    def _handle_query(self, body: dict) -> None:
        dataset = body.get("dataset")
        workloads = body.get("workloads") or (
            [body["workload"]] if body.get("workload") else None
        )
        if not dataset or not workloads:
            raise ValueError("query needs 'dataset' and 'workloads'")
        include_data = bool(body.get("include_data", False))
        timeout = body.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ValueError("'timeout' must be a number (seconds)")
        response = self.service.query(
            dataset, list(workloads), timeout=timeout
        )
        self._send_json(
            200, query_response_payload(response, include_data)
        )

    def _handle_delta(self, body: dict) -> None:
        dataset, delta = delta_from_payload(body)
        response = self.service.apply_delta(dataset, delta)
        self._send_json(
            200,
            {
                "dataset": dataset,
                "epoch": response.epoch,
                "n_changes": response.report.n_changes,
                "relations": list(response.report.relations),
                "views_patched": response.report.views_patched,
                "views_evicted": response.report.views_evicted,
                "maintenance": [
                    {"mode": b.mode, "seconds": round(b.seconds, 6)}
                    for b in response.report.batches
                ],
            },
        )


class AnalyticsHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one service instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalyticsService, verbose=False):
        super().__init__(address, AnalyticsRequestHandler)
        self.service = service
        self.verbose = verbose


def make_http_server(
    service: AnalyticsService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> AnalyticsHTTPServer:
    """Bind (but do not start) the HTTP front-end; port 0 = ephemeral."""
    return AnalyticsHTTPServer((host, port), service, verbose=verbose)


def serve_in_background(
    service: AnalyticsService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[AnalyticsHTTPServer, threading.Thread]:
    """Start an HTTP front-end on a daemon thread (tests/examples).

    Returns the bound server (``server.server_address`` carries the
    ephemeral port) and its thread; call ``server.shutdown()`` then
    ``server.server_close()`` to stop.
    """
    server = make_http_server(service, host, port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    thread.start()
    return server, thread
