"""Micro-batching request coalescer with admission control.

Concurrent analytics requests are rarely unique: under load, many
callers ask for the same (or near-identical) workloads at the same
time.  The :class:`RequestCoalescer` turns that temporal locality into
*throughput*: requests arriving inside a short time/size window are
drained as one batch and handed to a single ``execute`` call — for the
analytics service that means one fused
:class:`~repro.engine.viewcache.fusion.WorkloadSession` DAG whose
shared views run once — and the per-request results fan back out to
each blocked caller.

Admission control is a hard queue-depth cap: once ``max_queue``
requests are pending, further submissions are *shed* immediately with
:class:`ServiceOverloaded` (the HTTP layer maps this to ``503``)
instead of growing an unbounded backlog whose tail latency nobody
would ever see answered.

The coalescer is deliberately generic: it batches opaque payloads per
*key* (the service keys by dataset, since only requests over the same
data can fuse) and never inspects them.  ``window_ms <= 0`` or
``max_batch == 1`` disables coalescing — every request executes alone,
which is the benchmark's baseline mode.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional


class ServiceOverloaded(RuntimeError):
    """Admission control shed a request: the pending queue is full."""


@dataclass
class CoalescerStats:
    """Counters over the life of one :class:`RequestCoalescer`."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    timed_out: int = 0  # withdrawn by the caller before execution
    batches: int = 0
    max_batch: int = 0
    queue_depth: int = 0

    @property
    def mean_batch(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch, 3),
            "max_batch": self.max_batch,
            "queue_depth": self.queue_depth,
        }


class _Pending:
    """One submitted request waiting for its batch to execute."""

    __slots__ = ("key", "payload", "event", "result", "error")

    def __init__(self, key: str, payload: Any):
        self.key = key
        self.payload = payload
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class RequestCoalescer:
    """Fuse concurrent same-key requests into single ``execute`` calls.

    ``execute(key, payloads)`` receives every payload of one drained
    batch (all sharing ``key``) and must return one result per payload,
    in order.  It runs on the coalescer's single worker thread, so
    ``execute`` implementations need no internal batching locks.

    * ``window_ms`` — how long the first request of a batch waits for
      companions before the batch is drained;
    * ``max_batch`` — drain immediately once this many same-key
      requests are pending (also the batch size cap);
    * ``max_queue`` — admission-control cap on total pending requests;
      submissions beyond it raise :class:`ServiceOverloaded`.
    """

    def __init__(
        self,
        execute: Callable[[str, List[Any]], List[Any]],
        *,
        window_ms: float = 5.0,
        max_batch: int = 16,
        max_queue: int = 64,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._execute = execute
        self.window_s = max(0.0, float(window_ms)) / 1000.0
        # a window of zero means "no coalescing": strict one-request
        # batches, the benchmark's baseline mode
        self.max_batch = int(max_batch) if self.window_s > 0 else 1
        self.max_queue = int(max_queue)
        self._queue: List[_Pending] = []
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._stats = CoalescerStats()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain_loop, name="repro-coalescer", daemon=True
        )
        self._worker.start()

    # -- submission --------------------------------------------------------

    def submit(
        self, key: str, payload: Any, timeout: Optional[float] = None
    ) -> Any:
        """Enqueue one request and block until its batch has executed.

        Returns the per-request result, re-raises the batch's error, or
        raises :class:`ServiceOverloaded` / :class:`TimeoutError`.
        """
        item = _Pending(key, payload)
        with self._lock:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if len(self._queue) >= self.max_queue:
                self._stats.shed += 1
                raise ServiceOverloaded(
                    f"queue full ({self.max_queue} pending); retry later"
                )
            self._queue.append(item)
            self._stats.submitted += 1
            self._arrived.notify_all()
        if not item.event.wait(timeout):
            # withdraw from the queue so an abandoned request neither
            # occupies an admission slot nor burns an execution; if the
            # worker already drained it, the batch is in flight and its
            # (discarded) result still counts as completed
            with self._lock:
                try:
                    self._queue.remove(item)
                except ValueError:
                    pass
                self._stats.timed_out += 1
            raise TimeoutError(
                f"request for {key!r} not served within {timeout}s"
            )
        if item.error is not None:
            raise item.error
        return item.result

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> CoalescerStats:
        """One snapshot-consistent copy of the counters."""
        with self._lock:
            snapshot = replace(self._stats)
            snapshot.queue_depth = len(self._queue)
            return snapshot

    def close(self, timeout: float = 10.0) -> None:
        """Drain remaining requests, then stop the worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._arrived.notify_all()
        self._worker.join(timeout)

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the worker --------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                results = self._execute(
                    batch[0].key, [item.payload for item in batch]
                )
                if len(results) != len(batch):  # pragma: no cover - guard
                    raise RuntimeError(
                        f"execute returned {len(results)} results for "
                        f"{len(batch)} requests"
                    )
                for item, result in zip(batch, results):
                    item.result = result
                failed = 0
            except BaseException as error:  # noqa: BLE001 - fan the error out
                for item in batch:
                    item.error = error
                failed = len(batch)
            with self._lock:
                self._stats.batches += 1
                self._stats.completed += len(batch) - failed
                self._stats.failed += failed
                self._stats.max_batch = max(
                    self._stats.max_batch, len(batch)
                )
            for item in batch:
                item.event.set()

    def _next_batch(self) -> Optional[List[_Pending]]:
        """Block for the next batch; None when closed and drained."""
        with self._lock:
            while not self._queue:
                if self._closed:
                    return None
                self._arrived.wait()
            key = self._queue[0].key
            if self.window_s > 0 and not self._closed:
                # hold the batch open for companions until the window
                # closes or max_batch same-key requests are pending
                deadline = time.monotonic() + self.window_s
                while (
                    self._count_key(key) < self.max_batch
                    and not self._closed
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrived.wait(remaining)
            batch: List[_Pending] = []
            rest: List[_Pending] = []
            for item in self._queue:
                if item.key == key and len(batch) < self.max_batch:
                    batch.append(item)
                else:
                    rest.append(item)
            self._queue = rest
            return batch

    def _count_key(self, key: str) -> int:
        return sum(1 for item in self._queue if item.key == key)
