"""The long-running analytics service: epochs, coalescing, deltas.

One :class:`AnalyticsService` owns, per registered dataset, exactly one
loaded :class:`~repro.data.database.Database`, one
:class:`~repro.engine.viewcache.cache.ViewCache`, and one
:class:`~repro.engine.ivm.IncrementalEngine` — the shared engine state
that one-shot CLI invocations rebuild (and throw away) on every call.

**Epoch-snapshot isolation.**  The database is versioned by *epochs*:
an immutable :class:`Epoch` pairs a monotonically increasing number
with the database version it names (``Database.apply_delta`` is
functional, so versions share unchanged relations structurally).  A
query captures the current epoch once at execution start and pins the
whole run to that snapshot through the engine's ``database=`` hook;
a delta commit builds the next version under the dataset's write lock
and publishes it as a new epoch with a single atomic reference swap.
In-flight queries therefore always answer exactly one committed
epoch — never a torn mix of pre- and post-delta rows (cf. Berkholz et
al. on maintaining answers under updates, and Huang et al. on checking
snapshot isolation).

The shared :class:`ViewCache` stays consistent across epochs *by
construction*: its keys are content addresses over relation
fingerprints, so a reader pinned to an old epoch simply misses entries
the delta commit re-keyed (and recomputes from its own snapshot), while
readers at the new epoch hit the delta-patched views immediately.

**Request coalescing.**  Queries are admitted through a
:class:`~repro.server.coalescer.RequestCoalescer`: concurrent requests
against the same dataset are drained as one batch, their distinct
workloads fused into one deduplicated
:class:`~repro.engine.viewcache.fusion.WorkloadSession` DAG, executed
once, and fanned back out per request — PR 3's fusion win becomes a
throughput multiplier under load.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.database import Database, DeltaBatch
from ..engine.engine import LMFAO, BatchResult
from ..engine.ivm import DeltaReport, IncrementalEngine
from ..engine.viewcache.cache import ViewCache
from ..engine.viewcache.fusion import WorkloadSession
from ..jointree.join_tree import JoinTree
from ..query.query import QueryBatch
from ..storage.manager import DatasetStorage, RecoveryStats
from .coalescer import RequestCoalescer

#: default per-dataset view-cache budget (MiB)
DEFAULT_CACHE_MB = 64.0


class UnknownWorkloadError(ValueError):
    """A query named a workload the dataset does not serve.

    Carries the valid names so the HTTP layer can answer 400 with an
    actionable body (a misspelled workload is a malformed request, not
    a missing resource — the dataset route itself exists).
    """

    def __init__(self, dataset: str, workload: str, valid: Sequence[str]):
        self.dataset = dataset
        self.workload = workload
        self.valid = list(valid)
        super().__init__(
            f"no workload {workload!r} on dataset {dataset!r}; "
            f"valid workloads: {self.valid}"
        )


@dataclass(frozen=True)
class Epoch:
    """One committed database version.

    Immutable: readers capture the whole object with one atomic
    reference read and keep a consistent (number, database) pair for
    the lifetime of their query, no matter how many deltas commit
    meanwhile.
    """

    number: int
    database: Database


@dataclass
class QueryResponse:
    """One served query request.

    ``epoch`` names the committed database version every value in
    ``results`` was computed from; ``batch_size`` is how many requests
    shared the (possibly fused) execution that produced it.
    """

    dataset: str
    workloads: Tuple[str, ...]
    epoch: int
    results: Dict[str, BatchResult]
    batch_size: int = 1
    seconds: float = 0.0


@dataclass
class DeltaResponse:
    """One committed delta batch: the new epoch plus the IVM report."""

    dataset: str
    epoch: int
    report: DeltaReport


class _DatasetState:
    """Everything the service owns for one registered dataset."""

    def __init__(
        self,
        name: str,
        database: Database,
        join_tree: Optional[JoinTree],
        *,
        cache_mb: float,
        backend,
        n_threads: int,
        storage: Optional[DatasetStorage] = None,
        initial_epoch: int = 0,
        recovery: Optional[RecoveryStats] = None,
    ):
        self.name = name
        self.storage = storage
        self.recovery = recovery
        self.cache: Optional[ViewCache] = (
            ViewCache(
                budget_bytes=int(cache_mb * (1 << 20)),
                store=storage.cache_store if storage is not None else None,
            )
            if cache_mb
            else None
        )
        self.ivm = IncrementalEngine(
            database,
            join_tree,
            n_threads=n_threads,
            view_cache=self.cache,
            backend=backend,
        )
        self.engine: LMFAO = self.ivm.engine
        self.join_tree = self.engine.join_tree
        self.workloads: Dict[str, QueryBatch] = {}
        # swapped atomically under write_lock; readers take one
        # reference read and never lock
        self.epoch = Epoch(initial_epoch, self.engine.database)
        self.write_lock = threading.Lock()
        self.n_queries = 0  # mutated only on the coalescer worker
        self.n_deltas = 0  # mutated only under write_lock


class AnalyticsService:
    """A thread-safe, long-running analytics engine over live data.

    Usage::

        service = AnalyticsService(coalesce_ms=5)
        service.register_dataset("retailer", db, tree)
        service.register_workload("retailer", "covar", covar_batch)
        response = service.query("retailer", ["covar"])   # blocking
        service.apply_delta("retailer", DeltaBatch.insert(...))
        service.close()

    ``query`` may be called from any number of threads; requests are
    admitted through the coalescer (see the module docstring).
    ``apply_delta`` may also be called concurrently — commits serialize
    per dataset on its write lock while queries keep reading their
    captured epochs.
    """

    def __init__(
        self,
        *,
        coalesce_ms: float = 5.0,
        max_batch: int = 16,
        max_queue: int = 64,
        cache_mb: float = DEFAULT_CACHE_MB,
        backend=None,
        n_threads: int = 1,
        data_dir: Optional[str] = None,
        compact_wal: int = 0,
        spill_mb: float = 512.0,
        fsync: bool = True,
    ):
        self._states: Dict[str, _DatasetState] = {}
        self._registering: set = set()
        self._registry_lock = threading.Lock()
        self._cache_mb = float(cache_mb)
        self._backend = backend
        self._n_threads = int(n_threads)
        self._data_dir = data_dir
        self._compact_wal = max(0, int(compact_wal))
        # disk budget for the persistent cache tier: without one,
        # re-keyed (stale-digest) spill files accumulate forever under
        # a delta stream; 0 disables the bound
        self._spill_budget_bytes = (
            int(spill_mb * (1 << 20)) if spill_mb else None
        )
        self._fsync = fsync
        self._started = time.time()
        self.coalescer = RequestCoalescer(
            self._execute_coalesced,
            window_ms=coalesce_ms,
            max_batch=max_batch,
            max_queue=max_queue,
        )

    # -- registry ----------------------------------------------------------

    def register_dataset(
        self,
        name: str,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        *,
        workloads: Optional[Dict[str, QueryBatch]] = None,
    ) -> "AnalyticsService":
        """Load one dataset into the service; returns self for chaining.

        With a ``data_dir`` configured, registration is where durability
        engages: an existing snapshot is **restored** — the base
        snapshot is loaded, then every WAL commit replays through the
        dataset's own :meth:`IncrementalEngine.apply_delta`, i.e. the
        exact delta-propagation code live commits use, so the recovered
        engine, epoch, and view-cache state match what a never-crashed
        server would hold.  The recovered database *replaces* the one
        passed in and the last replayed epoch becomes the serving
        epoch.  A first boot persists the passed database as the base
        snapshot.  Either way the dataset's view cache gains the
        persistent second tier, so warm starts serve spilled views from
        disk.
        """
        # reserve the name before any storage side effect: two
        # concurrent registrations of the same dataset must not both
        # initialize the same data directory
        with self._registry_lock:
            if name in self._states or name in self._registering:
                raise ValueError(f"dataset {name!r} already registered")
            self._registering.add(name)
        try:
            storage: Optional[DatasetStorage] = None
            snapshot_info = None
            load_seconds = 0.0
            replay = False
            try:
                if self._data_dir is not None:
                    storage = DatasetStorage(
                        os.path.join(self._data_dir, name),
                        fsync=self._fsync,
                        cache_budget_bytes=self._spill_budget_bytes,
                    )
                    if storage.has_snapshot():
                        database, snapshot_info, load_seconds = (
                            storage.load_base()
                        )
                        replay = True
                    else:
                        storage.initialize(database, epoch=0)
                state = _DatasetState(
                    name,
                    database,
                    join_tree,
                    cache_mb=self._cache_mb,
                    backend=self._backend,
                    n_threads=self._n_threads,
                    storage=storage,
                    initial_epoch=(
                        snapshot_info.epoch if snapshot_info else 0
                    ),
                )
                if replay:
                    self._replay_wal(
                        state, snapshot_info, load_seconds
                    )
            except BaseException:
                if storage is not None:
                    storage.close()  # don't leak the WAL handle
                raise
            with self._registry_lock:
                self._states[name] = state
        finally:
            with self._registry_lock:
                self._registering.discard(name)
        for workload_name, batch in (workloads or {}).items():
            self.register_workload(name, workload_name, batch)
        return self

    def _replay_wal(
        self,
        state: _DatasetState,
        snapshot_info,
        load_seconds: float,
    ) -> None:
        """Replay WAL commits through the dataset's own IVM engine.

        Each logged commit flows through ``state.ivm.apply_delta`` — the
        exact code path live commits take — so recovery exercises delta
        propagation (interior view patches, cache re-keying) instead of
        a database-level fold.  The replayed epochs advance
        ``state.epoch`` exactly as the original commits did.
        """
        assert state.storage is not None
        t0 = time.perf_counter()
        replayed = 0
        changes = 0
        for commit in state.storage.pending_commits(snapshot_info.epoch):
            live = [d for d in commit.deltas if not d.is_empty]
            if live:
                state.ivm.apply_delta(*live)
                changes += sum(d.n_changes() for d in live)
            state.epoch = Epoch(commit.epoch, state.ivm.database)
            replayed += 1
        state.recovery = RecoveryStats(
            snapshot_epoch=snapshot_info.epoch,
            epoch=state.epoch.number,
            replayed_commits=replayed,
            replayed_changes=changes,
            wal_tail_truncated=state.storage.wal.tail_truncated,
            snapshot_load_seconds=load_seconds,
            replay_seconds=time.perf_counter() - t0,
            cache_entries=len(state.storage.cache_store),
            cache_bytes=state.storage.cache_store.spilled_bytes,
        )

    def register_workload(
        self, dataset: str, name: str, batch: QueryBatch
    ) -> "AnalyticsService":
        """Register one named query batch servable on a dataset.

        The batch object is reused across every request naming it, so
        plans (and their compiled functions) are built once and shared.
        """
        state = self._state(dataset)
        if name in state.workloads:
            raise ValueError(
                f"workload {name!r} already registered on {dataset!r}"
            )
        state.workloads[name] = batch
        return self

    def datasets(self) -> List[str]:
        with self._registry_lock:
            return list(self._states)

    def workload_names(self, dataset: str) -> List[str]:
        return list(self._state(dataset).workloads)

    def epoch(self, dataset: str) -> int:
        """The number of the latest committed epoch."""
        return self._state(dataset).epoch.number

    def snapshot(self, dataset: str) -> Epoch:
        """The latest committed epoch (number + database version)."""
        return self._state(dataset).epoch

    def prepare(
        self,
        dataset: str,
        workload_sets: Optional[Sequence[Sequence[str]]] = None,
    ) -> "AnalyticsService":
        """Pre-plan (and compile) workload combinations before traffic.

        By default every single workload plus the full union is planned;
        pass explicit ``workload_sets`` to warm other combinations a
        coalesced batch might fuse.  Serving threads then never pay
        planning/compilation inline.
        """
        state = self._state(dataset)
        if workload_sets is None:
            workload_sets = [[name] for name in state.workloads]
            if len(state.workloads) > 1:
                workload_sets.append(list(state.workloads))
        for names in workload_sets:
            distinct = [w for w in state.workloads if w in set(names)]
            if not distinct:
                continue
            if len(distinct) == 1:
                state.engine.plan(state.workloads[distinct[0]])
            else:
                session = WorkloadSession(
                    state.epoch.database, engine=state.engine
                )
                for name in distinct:
                    session.add_workload(name, state.workloads[name])
                state.engine.plan(session.fused_batch())
        return self

    def _state(self, dataset: str) -> _DatasetState:
        with self._registry_lock:
            state = self._states.get(dataset)
        if state is None:
            raise KeyError(
                f"no dataset {dataset!r}; registered: {self.datasets()}"
            )
        return state

    # -- queries -----------------------------------------------------------

    def query(
        self,
        dataset: str,
        workloads: Sequence[str],
        timeout: Optional[float] = None,
    ) -> QueryResponse:
        """Submit one request; blocks until its (coalesced) batch ran.

        Raises :class:`KeyError` for unknown datasets,
        :class:`UnknownWorkloadError` for unknown workload names,
        :class:`~repro.server.coalescer.ServiceOverloaded` when shed by
        admission control, and :class:`TimeoutError` on timeout.
        """
        state = self._state(dataset)
        names = tuple(workloads)
        if not names:
            raise ValueError("query needs at least one workload name")
        for name in names:
            if name not in state.workloads:
                raise UnknownWorkloadError(
                    dataset, name, list(state.workloads)
                )
        return self.coalescer.submit(dataset, names, timeout=timeout)

    def _execute_coalesced(
        self, dataset: str, payloads: List[Tuple[str, ...]]
    ) -> List[QueryResponse]:
        """Run one drained batch of requests as a single fused DAG.

        Runs on the coalescer worker.  The epoch is captured *once* for
        the whole batch, so every coalesced request answers the same
        committed database version.
        """
        state = self._state(dataset)
        epoch = state.epoch  # atomic snapshot; pins the entire batch
        # canonical order (registration order) so every request mix
        # over the same workload set fuses to one plan-cache entry
        requested = {name for payload in payloads for name in payload}
        distinct = [w for w in state.workloads if w in requested]
        start = time.perf_counter()
        if len(distinct) == 1:
            results = {
                distinct[0]: state.engine.run(
                    state.workloads[distinct[0]], database=epoch.database
                )
            }
        else:
            session = WorkloadSession(epoch.database, engine=state.engine)
            for name in distinct:
                session.add_workload(name, state.workloads[name])
            results = dict(session.run(database=epoch.database))
        seconds = time.perf_counter() - start
        state.n_queries += len(payloads)
        return [
            QueryResponse(
                dataset=dataset,
                workloads=payload,
                epoch=epoch.number,
                results={name: results[name] for name in payload},
                batch_size=len(payloads),
                seconds=seconds,
            )
            for payload in payloads
        ]

    # -- updates -----------------------------------------------------------

    def apply_delta(
        self, dataset: str, *deltas: DeltaBatch
    ) -> DeltaResponse:
        """Commit inserts/retractions as one new epoch.

        The IVM layer applies the deltas, propagates them bottom-up
        through every maintained view DAG, and fans the change through
        ``ViewCache.on_delta`` — cached views (leaf *and* interior) are
        delta-patched and re-keyed under their new content addresses,
        with eviction only as a fallback; the returned
        :class:`~repro.engine.ivm.DeltaReport` carries the per-view
        outcome stream (``views_patched`` / ``views_evicted``).  The new
        database version then becomes the next epoch with one atomic
        swap.  Queries already in flight keep reading their captured
        epoch.

        With durable storage attached, the commit is appended to the
        write-ahead log (and fsynced) *before* the epoch swap: no epoch
        is ever published that a crash-restart could not reconstruct.
        When the WAL reaches ``compact_wal`` commits it is folded into
        a fresh snapshot.
        """
        state = self._state(dataset)
        with state.write_lock:
            report = state.ivm.apply_delta(*deltas)
            if report.n_changes:
                next_epoch = state.epoch.number + 1
                if state.storage is not None:
                    try:
                        state.storage.log_commit(next_epoch, deltas)
                    except BaseException:
                        # the commit cannot be made durable, so it must
                        # not be served: restore the published epoch's
                        # database and drop every in-memory artifact
                        # derived from the unlogged version, then tell
                        # the caller.  Recovery and memory agree again.
                        state.ivm.engine.database = state.epoch.database
                        state.ivm.clear_cache()
                        if state.cache is not None:
                            state.cache.clear()
                        raise
                state.epoch = Epoch(next_epoch, state.ivm.database)
                state.n_deltas += 1
                if (
                    state.storage is not None
                    and self._compact_wal
                    and state.storage.wal_len >= self._compact_wal
                ):
                    # note: compaction runs under the write lock — it
                    # must, because truncating the WAL is only sound
                    # while no commit can append behind the snapshot.
                    # The stall is bounded by one snapshot write;
                    # auto-compaction is opt-in (compact_wal=0 default)
                    state.storage.compact(
                        state.epoch.database, state.epoch.number
                    )
            return DeltaResponse(
                dataset=dataset, epoch=state.epoch.number, report=report
            )

    def compact(self, dataset: str) -> None:
        """Fold a dataset's WAL into a fresh snapshot now (no-op without
        durable storage)."""
        state = self._state(dataset)
        with state.write_lock:
            if state.storage is not None:
                state.storage.compact(
                    state.epoch.database, state.epoch.number
                )

    def recovery(self, dataset: str):
        """Boot-time :class:`RecoveryStats` for a dataset, or None
        (fresh boot / no durable storage)."""
        return self._state(dataset).recovery

    def sync(self) -> None:
        """Fsync every dataset's WAL (graceful-shutdown hook)."""
        with self._registry_lock:
            states = list(self._states.values())
        for state in states:
            if state.storage is not None:
                state.storage.sync()

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict:
        """One JSON-ready report over the whole service.

        Cache counters come from the snapshot-consistent
        ``ViewCache.stats()``; coalescer counters likewise.
        """
        datasets = {}
        with self._registry_lock:
            states = list(self._states.values())
        for state in states:
            epoch = state.epoch
            datasets[state.name] = {
                "epoch": epoch.number,
                "relations": {
                    rel.name: rel.n_rows for rel in epoch.database
                },
                "workloads": list(state.workloads),
                "queries": state.n_queries,
                "deltas": state.n_deltas,
                "ivm": state.ivm.stats(),
                "cache": (
                    None
                    if state.cache is None
                    else {
                        **state.cache.stats().as_dict(),
                        "resident_bytes": state.cache.total_bytes,
                        "budget_bytes": state.cache.budget_bytes,
                        "entries": len(state.cache),
                    }
                ),
                "storage": (
                    None
                    if state.storage is None
                    else {
                        **state.storage.stats(),
                        "warm_hits": (
                            state.cache.stats().warm_hits
                            if state.cache is not None
                            else 0
                        ),
                        "recovery": (
                            None
                            if state.recovery is None
                            else state.recovery.as_dict()
                        ),
                    }
                ),
            }
        return {
            "uptime_seconds": round(time.time() - self._started, 3),
            "coalescer": self.coalescer.stats().as_dict(),
            "datasets": datasets,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain the coalescer, fsync+close storage, release engines.

        Idempotent.  The coalescer drains first so in-flight batches
        finish before the WAL handle closes.
        """
        self.coalescer.close()
        with self._registry_lock:
            states = list(self._states.values())
        for state in states:
            state.engine.close()
            if state.storage is not None:
                state.storage.close()

    def __enter__(self) -> "AnalyticsService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
