"""A small blocking HTTP client for the analytics service.

Used by ``python -m repro client ...`` and the test suite; stdlib only
(:mod:`urllib.request`).  Every method returns the decoded JSON payload;
non-2xx responses raise :class:`ClientError` carrying the HTTP status
and the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence


class ClientError(RuntimeError):
    """A non-2xx response from the analytics service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class AnalyticsClient:
    """Blocking JSON client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        timeout: float = 60.0,
    ):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc)
            raise ClientError(exc.code, message) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def query(
        self,
        dataset: str,
        workloads: Sequence[str],
        *,
        include_data: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict:
        body = {
            "dataset": dataset,
            "workloads": list(workloads),
            "include_data": include_data,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/query", body)

    def delta(
        self,
        dataset: str,
        relation: str,
        *,
        inserts: Optional[Dict[str, List]] = None,
        delete_indices: Optional[List[int]] = None,
    ) -> Dict:
        body: Dict = {"dataset": dataset, "relation": relation}
        if inserts is not None:
            body["inserts"] = {
                name: list(values) for name, values in inserts.items()
            }
        if delete_indices is not None:
            body["delete_indices"] = list(delete_indices)
        return self._request("POST", "/delta", body)

    # -- convenience -------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> Dict:
        """Poll ``/healthz`` until the service answers (or time out)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise TimeoutError(
            f"service at {self.base_url} not ready within {timeout}s: "
            f"{last_error}"
        )
