"""A small blocking HTTP client for the analytics service.

Used by ``python -m repro client ...`` and the test suite; stdlib only
(:mod:`urllib.request`).  Every method returns the decoded JSON payload;
non-2xx responses raise :class:`ClientError` carrying the HTTP status
and the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence


class ClientError(RuntimeError):
    """A non-2xx response from the analytics service."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: parsed ``Retry-After`` header (seconds), when the server sent one
        self.retry_after = retry_after


class AnalyticsClient:
    """Blocking JSON client for one service endpoint.

    ``retries`` (default 0: fail immediately) bounds how many times a
    request is retried, across *both* retryable failure kinds sharing
    the one budget:

    * HTTP 503 (admission-control shedding) — each retry honors the
      server's ``Retry-After`` header — the whole point of admission
      control is that the server names the backoff — clamped to
      ``max_retry_after`` seconds (missing/unparsable headers wait 1s);
    * transport failures (:class:`ConnectionError` /
      :class:`urllib.error.URLError`: connection refused/reset, a
      server mid-restart) — retried after a 1s pause, and re-raised
      unchanged once the budget is spent.

    Other HTTP errors are not load-shedding and repeat
    deterministically, so they never retry.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        timeout: float = 60.0,
        retries: int = 0,
        max_retry_after: float = 5.0,
    ):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.max_retry_after = float(max_retry_after)

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        data = None if body is None else json.dumps(body).encode()
        attempts_left = self.retries
        while True:
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as exc:
                try:
                    message = json.loads(exc.read()).get("error", str(exc))
                except Exception:  # noqa: BLE001 - non-JSON error body
                    message = str(exc)
                retry_after = self._parse_retry_after(
                    exc.headers.get("Retry-After")
                )
                if exc.code == 503 and attempts_left > 0:
                    attempts_left -= 1
                    time.sleep(
                        min(
                            self.max_retry_after,
                            1.0 if retry_after is None else retry_after,
                        )
                    )
                    continue
                raise ClientError(
                    exc.code, message, retry_after=retry_after
                ) from None
            # HTTPError subclasses URLError, so this clause must come
            # second: a real HTTP response is never treated as a
            # transport failure
            except (urllib.error.URLError, ConnectionError):
                if attempts_left > 0:
                    attempts_left -= 1
                    time.sleep(min(self.max_retry_after, 1.0))
                    continue
                raise

    @staticmethod
    def _parse_retry_after(header: Optional[str]) -> Optional[float]:
        if header is None:
            return None
        try:
            return max(0.0, float(header))
        except ValueError:
            return None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def query(
        self,
        dataset: str,
        workloads: Sequence[str],
        *,
        include_data: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict:
        body = {
            "dataset": dataset,
            "workloads": list(workloads),
            "include_data": include_data,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/query", body)

    def delta(
        self,
        dataset: str,
        relation: str,
        *,
        inserts: Optional[Dict[str, List]] = None,
        delete_indices: Optional[List[int]] = None,
    ) -> Dict:
        body: Dict = {"dataset": dataset, "relation": relation}
        if inserts is not None:
            body["inserts"] = {
                name: list(values) for name, values in inserts.items()
            }
        if delete_indices is not None:
            body["delete_indices"] = list(delete_indices)
        return self._request("POST", "/delta", body)

    # -- convenience -------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> Dict:
        """Poll ``/healthz`` until the service answers (or time out)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise TimeoutError(
            f"service at {self.base_url} not ready within {timeout}s: "
            f"{last_error}"
        )
