"""The concurrent analytics service.

A long-running, thread-safe layer over the engine stack: one loaded
:class:`~repro.data.database.Database`, one
:class:`~repro.engine.viewcache.cache.ViewCache`, and one
:class:`~repro.engine.ivm.IncrementalEngine` per dataset, shared by
every request instead of rebuilt per process.  Reads get epoch-snapshot
isolation, writes stream in as :class:`~repro.data.database.DeltaBatch`
commits, and concurrent requests coalesce into fused view DAGs.

* :mod:`~repro.server.service` — :class:`AnalyticsService`: epochs,
  workload registry, delta commits;
* :mod:`~repro.server.coalescer` — :class:`RequestCoalescer`:
  micro-batching with queue-depth admission control;
* :mod:`~repro.server.http` — stdlib HTTP endpoints
  (``/query``, ``/delta``, ``/stats``, ``/healthz``);
* :mod:`~repro.server.client` — :class:`AnalyticsClient`, the blocking
  client the CLI and tests use (``retries=`` makes it honor the
  server's 503 + ``Retry-After`` back-pressure).

With ``AnalyticsService(data_dir=...)`` the serving state is durable
(:mod:`repro.storage`): delta commits are write-ahead-logged before
their epoch publishes, registration restores snapshot + WAL replay,
and the per-dataset view cache spills to a persistent tier that
serves warm hits across restarts.
"""

from .client import AnalyticsClient, ClientError
from .coalescer import CoalescerStats, RequestCoalescer, ServiceOverloaded
from .http import (
    AnalyticsHTTPServer,
    make_http_server,
    serve_in_background,
)
from .service import (
    AnalyticsService,
    DeltaResponse,
    Epoch,
    QueryResponse,
)

__all__ = [
    "AnalyticsService",
    "AnalyticsClient",
    "AnalyticsHTTPServer",
    "ClientError",
    "CoalescerStats",
    "DeltaResponse",
    "Epoch",
    "QueryResponse",
    "RequestCoalescer",
    "ServiceOverloaded",
    "make_http_server",
    "serve_in_background",
]
