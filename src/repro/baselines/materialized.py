"""The materialized-join baseline (DBX / MonetDB / PostgreSQL proxy).

The paper's relational competitors evaluate each query of a batch
*independently* and efficiently, but share nothing across queries — that
is exactly what this engine does: materialize the join once (like a
warmed-up DBMS holding the join or computing it per query from base
tables), then answer each query with a fresh scan, fresh function
evaluation and fresh hash aggregation.  No views, no sharing.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..data import ops
from ..data.database import Database, materialize_join
from ..data.relation import Relation
from ..data.schema import Attribute, Schema
from ..query.query import Query, QueryBatch


class MaterializedEngine:
    """Per-query evaluation over the materialized join."""

    def __init__(self, database: Database, materialize_now: bool = False):
        self.database = database
        self._flat: Optional[Relation] = None
        self.materialize_seconds: Optional[float] = None
        if materialize_now:
            self.materialize()

    def materialize(self) -> Relation:
        """Compute (and cache) the full join — the two-step solutions'
        unavoidable first step."""
        if self._flat is None:
            start = time.perf_counter()
            self._flat = materialize_join(self.database)
            self.materialize_seconds = time.perf_counter() - start
        return self._flat

    def run(
        self, batch: QueryBatch, share_join: bool = False
    ) -> Dict[str, Relation]:
        """Evaluate every query of the batch independently.

        By default each query recomputes the join, like a DBMS executing
        the batch as separate SQL statements — the paper's observation is
        that DBX/MonetDB "do not share computation across queries".
        ``share_join=True`` reuses one materialized join for the whole
        batch (a generous variant, used by correctness tests).
        """
        if share_join:
            flat = self.materialize()
            return {
                query.name: self._run_query(query, flat) for query in batch
            }
        results = {}
        for query in batch:
            flat = materialize_join(self.database)
            results[query.name] = self._run_query(query, flat)
        return results

    def _run_query(self, query: Query, flat: Relation) -> Relation:
        # evaluate each aggregate from scratch: no sharing by design
        value_columns = []
        for aggregate in query.aggregates:
            total = None
            for term in aggregate.terms:
                product = np.full(flat.n_rows, term.coefficient)
                for function in term.factors:
                    columns = {a: flat.column(a) for a in function.attrs}
                    product = product * function.evaluate(columns)
                total = product if total is None else total + product
            value_columns.append(total)
        attrs = []
        columns = {}
        if query.group_by:
            keys, sums = ops.group_aggregate(
                flat.columns(list(query.group_by)), value_columns
            )
            for name, key_col in zip(query.group_by, keys):
                attrs.append(Attribute(name, "categorical", key_col.dtype))
                columns[name] = key_col
            value_columns = sums
        else:
            value_columns = [
                np.asarray([float(np.sum(v)) if len(v) else 0.0])
                for v in value_columns
            ]
        used: Dict[str, int] = {}
        for aggregate, column in zip(query.aggregates, value_columns):
            name = aggregate.name or "agg"
            if name in used:
                used[name] += 1
                name = f"{name}_{used[name]}"
            else:
                used[name] = 0
            attrs.append(Attribute(name, "continuous", np.float64))
            columns[name] = np.asarray(column, dtype=np.float64)
        return Relation(query.name, Schema(attrs), columns)
