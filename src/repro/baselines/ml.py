"""Materialize-then-learn ML baselines (TensorFlow / MADlib / scikit proxies).

The paper's "structure-agnostic two-step solutions" first materialize the
training dataset (the full join), then hand it to an ML library.  These
baselines do exactly that on our substrate:

* :func:`ols_closed_form`   — MADlib proxy: ordinary least squares over
  the one-hot encoded materialized join;
* :func:`gradient_descent_epochs` — TensorFlow proxy: full-batch gradient
  passes over the materialized join (cost per epoch scales with the join,
  not with the covar matrix);
* :func:`brute_force_cart`  — per-node split search by scanning the
  materialized join (what MADlib's decision trees do over the view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database, materialize_join
from ..data.relation import Relation
from ..ml.covar import FeatureIndex
from ..ml.linreg import LinearRegressionModel, design_matrix
from ..ml.trees import Condition, DecisionTree, TreeNode, _gini, _variance


def build_feature_index(
    flat: Relation,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
) -> FeatureIndex:
    """Feature index with category domains taken from the flat join."""
    category_values = {
        c: np.sort(np.unique(flat.column(c))) for c in categorical
    }
    return FeatureIndex(
        continuous=tuple(continuous),
        categorical=tuple(categorical),
        label=label,
        category_values=category_values,
    )


def ols_closed_form(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    l2: float = 1e-3,
    flat: Optional[Relation] = None,
) -> LinearRegressionModel:
    """MADlib proxy: closed-form ridge over the materialized join."""
    if flat is None:
        flat = materialize_join(database)
    index = build_feature_index(flat, continuous, categorical, label)
    features = design_matrix(flat, index)
    target = np.asarray(flat.column(label), dtype=np.float64)
    n = len(target)
    gram = features.T @ features / n + l2 * np.eye(features.shape[1])
    moment = features.T @ target / n
    theta = np.linalg.solve(gram, moment)
    return LinearRegressionModel(theta=theta, index=index, l2=l2, iterations=0)


def ols_row_engine(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    l2: float = 1e-3,
    flat: Optional[Relation] = None,
) -> LinearRegressionModel:
    """MADlib-over-PostgreSQL proxy: per-tuple UDAF accumulation.

    MADlib's ``linregr_train`` runs as a user-defined aggregate inside
    PostgreSQL's tuple-at-a-time executor over the (non-materialized)
    training view: for every tuple it executes a transition function that
    accumulates the outer product ``z z^T``.  This baseline reproduces
    that architecture — one transition call per tuple — which is the
    reason the paper measures MADlib orders of magnitude behind LMFAO's
    shared, vectorized aggregate batches.
    """
    if flat is None:
        flat = materialize_join(database)
    index = build_feature_index(flat, continuous, categorical, label)
    features = design_matrix(flat, index)
    target = np.asarray(flat.column(label), dtype=np.float64)
    n = len(target)
    p = features.shape[1]
    gram = np.zeros((p, p))
    moment = np.zeros(p)
    for row in range(n):  # the tuple-at-a-time executor
        z = features[row]
        gram += np.outer(z, z)
        moment += z * target[row]
    gram = gram / n + l2 * np.eye(p)
    theta = np.linalg.solve(gram, moment / n)
    return LinearRegressionModel(theta=theta, index=index, l2=l2, iterations=0)


def gradient_descent_epochs(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    epochs: int = 1,
    learning_rate: float = 1.0,
    l2: float = 1e-3,
    flat: Optional[Relation] = None,
    batch_size: Optional[int] = None,
) -> LinearRegressionModel:
    """TensorFlow proxy: each epoch is a full pass over the flat join.

    Deliberately data-bound: the gradient is recomputed from the feature
    matrix every epoch (the "gradient vector" formulation of §2), unlike
    LMFAO's covar-matrix reuse.  With ``batch_size`` set, each epoch runs
    through TF's iterator regime — the paper notes it must "repeatedly
    load, parse and cast the batches of tuples", modelled here by a copy
    + cast per mini-batch.  The step is scaled by a Lipschitz bound so
    unnormalized features do not diverge.
    """
    if flat is None:
        flat = materialize_join(database)
    index = build_feature_index(flat, continuous, categorical, label)
    features = design_matrix(flat, index)
    target = np.asarray(flat.column(label), dtype=np.float64)
    n = len(target)
    theta = np.zeros(features.shape[1])
    lipschitz_bound = float(np.sum(features * features)) / n + l2
    step = learning_rate / max(lipschitz_bound, 1e-12)
    for _ in range(epochs):
        if batch_size is None:
            residual = features @ theta - target
            gradient = features.T @ residual / n + l2 * theta
            theta -= step * gradient
            continue
        for start in range(0, n, batch_size):
            # the iterator interface: load, parse, cast the batch
            batch = features[start:start + batch_size].astype(
                np.float32
            ).astype(np.float64)
            batch_target = target[start:start + batch_size].copy()
            residual = batch @ theta - batch_target
            gradient = batch.T @ residual / len(batch_target) + l2 * theta
            theta -= step * gradient
    return LinearRegressionModel(
        theta=theta, index=index, l2=l2, iterations=epochs
    )


# ---------------------------------------------------------------------------
# Brute-force CART over the materialized join
# ---------------------------------------------------------------------------


def brute_force_cart(
    database: Database,
    continuous: Sequence[str],
    categorical: Sequence[str],
    label: str,
    kind: str = "regression",
    *,
    max_depth: int = 4,
    min_samples_split: int = 1_000,
    min_samples_leaf: int = 1,
    n_buckets: int = 20,
    flat: Optional[Relation] = None,
    thresholds: Optional[Dict[str, np.ndarray]] = None,
) -> DecisionTree:
    """Learn a CART tree by scanning the materialized join per node.

    Functionally equivalent to :class:`repro.ml.trees.CARTLearner` (used
    as its correctness oracle) but architecturally the two-step design:
    the training dataset must fit in memory, and every node pays a pass
    over it.
    """
    if flat is None:
        flat = materialize_join(database)
    continuous = [a for a in continuous if a != label]
    categorical = [a for a in categorical if a != label]
    target = np.asarray(flat.column(label), dtype=np.float64)
    if thresholds is None:
        # same bucketization scheme as CARTLearner but over the join (the
        # paper feeds both systems the same buckets; pass ``thresholds``
        # for an exact head-to-head)
        thresholds = {
            attr: np.unique(
                np.quantile(
                    flat.column(attr), np.linspace(0, 1, n_buckets + 1)[1:-1]
                )
            )
            for attr in continuous
        }

    def node_stats(mask: np.ndarray):
        y = target[mask]
        if kind == "regression":
            n = float(len(y))
            return n, float(y.sum()), float((y * y).sum())
        values, counts = np.unique(y, return_counts=True)
        return dict(zip(values.tolist(), counts.astype(float).tolist()))

    def leaf(stats) -> TreeNode:
        if kind == "regression":
            n, sy, syy = stats
            return TreeNode(
                prediction=sy / n if n else 0.0,
                n_samples=n,
                impurity=_variance(n, sy, syy),
            )
        total = sum(stats.values())
        prediction = max(stats, key=stats.get) if stats else 0.0
        return TreeNode(
            prediction=float(prediction),
            n_samples=total,
            impurity=total * _gini(stats) if total else 0.0,
        )

    def split_cost(left_stats, node_totals) -> Optional[float]:
        # right side derived by subtraction, mirroring CARTLearner's
        # arithmetic so the two implementations agree bit-for-bit on ties
        if kind == "regression":
            n_l, sy_l, syy_l = left_stats
            n_t, sy_t, syy_t = node_totals
            if n_l < min_samples_leaf or n_t - n_l < min_samples_leaf:
                return None
            return _variance(n_l, sy_l, syy_l) + _variance(
                n_t - n_l, sy_t - sy_l, syy_t - syy_l
            )
        right = {
            k: node_totals.get(k, 0.0) - left_stats.get(k, 0.0)
            for k in node_totals
        }
        n_l = sum(left_stats.values())
        n_r = sum(right.values())
        if n_l < min_samples_leaf or n_r < min_samples_leaf:
            return None
        return n_l * _gini(left_stats) + n_r * _gini(right)

    def best_split(mask: np.ndarray) -> Optional[Tuple[float, Condition]]:
        best: Optional[Tuple[float, Condition]] = None
        node_totals = node_stats(mask)
        for attr, values in thresholds.items():
            column = flat.column(attr)
            for threshold in values:
                left = mask & (column <= threshold)
                cost = split_cost(node_stats(left), node_totals)
                if cost is not None and (best is None or cost < best[0]):
                    best = (cost, Condition(attr, "<=", float(threshold)))
        for attr in categorical:
            column = flat.column(attr)
            for value in np.unique(column[mask]):
                left = mask & (column == value)
                cost = split_cost(node_stats(left), node_totals)
                if cost is not None and (best is None or cost < best[0]):
                    best = (cost, Condition(attr, "==", float(value)))
        return best

    def grow(mask: np.ndarray, depth: int) -> TreeNode:
        node = leaf(node_stats(mask))
        if depth >= max_depth or node.n_samples < min_samples_split:
            return node
        best = best_split(mask)
        if best is None or best[0] >= node.impurity:
            return node
        cost, condition = best
        node.condition = condition
        column = flat.column(condition.attr)
        side = condition.test(column)
        node.left = grow(mask & side, depth + 1)
        node.right = grow(mask & ~side, depth + 1)
        return node

    root = grow(np.ones(flat.n_rows, dtype=bool), 0)
    return DecisionTree(root=root, kind=kind, label=label)
