"""AC/DC proxy: LMFAO with every optimization layer switched off.

The paper uses its predecessor AC/DC as "a proxy for LMFAO without
optimizations" in the Figure 5 ablation: interpreted execution, a single
root for the whole batch, only identical-view sharing, and one view per
execution unit (no multi-output groups).
"""

from __future__ import annotations

from typing import Optional

from ..data.database import Database
from ..engine.engine import LMFAO
from ..jointree.join_tree import JoinTree


def acdc_proxy(
    database: Database, join_tree: Optional[JoinTree] = None
) -> LMFAO:
    """An engine configured like AC/DC (the Figure 5 baseline)."""
    return LMFAO(
        database,
        join_tree,
        multi_root=False,
        merge_mode="dedup",
        group_views=False,
        compile=False,
        n_threads=1,
    )


#: the optimization ladder of Figure 5, in order; each entry names the
#: configuration and the LMFAO keyword arguments realising it
FIGURE5_LADDER = [
    (
        "acdc (no optimizations)",
        dict(
            multi_root=False,
            merge_mode="dedup",
            group_views=False,
            compile=False,
            n_threads=1,
        ),
    ),
    (
        "+ compilation",
        dict(
            multi_root=False,
            merge_mode="dedup",
            group_views=False,
            compile=True,
            n_threads=1,
        ),
    ),
    (
        "+ multi-output",
        dict(
            multi_root=False,
            merge_mode="full",
            group_views=True,
            compile=True,
            n_threads=1,
        ),
    ),
    (
        "+ multi-root",
        dict(
            multi_root=True,
            merge_mode="full",
            group_views=True,
            compile=True,
            n_threads=1,
        ),
    ),
    (
        "+ parallelization (4 threads)",
        dict(
            multi_root=True,
            merge_mode="full",
            group_views=True,
            compile=True,
            n_threads=4,
        ),
    ),
]
