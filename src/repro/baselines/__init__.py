"""Baselines: the paper's competitor systems, as substrate proxies."""

from .acdc import FIGURE5_LADDER, acdc_proxy
from .materialized import MaterializedEngine
from .ml import (
    brute_force_cart,
    build_feature_index,
    gradient_descent_epochs,
    ols_closed_form,
    ols_row_engine,
)

__all__ = [
    "MaterializedEngine",
    "acdc_proxy",
    "FIGURE5_LADDER",
    "ols_closed_form",
    "ols_row_engine",
    "gradient_descent_epochs",
    "brute_force_cart",
    "build_feature_index",
]
