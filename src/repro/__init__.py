"""repro — a Python reproduction of LMFAO (SIGMOD 2019).

LMFAO (Layered Multiple Functional Aggregate Optimization) is an
in-memory optimization and execution engine for batches of group-by
aggregates over joins of database relations, with analytics applications
(regression, decision trees, Chow-Liu trees, data cubes) built on top.

Quickstart::

    from repro import LMFAO, Database, Query, QueryBatch, Aggregate
    from repro.datasets import favorita

    dataset = favorita(scale=0.1)
    engine = LMFAO(dataset.database, dataset.join_tree)
    batch = QueryBatch([
        Query("count", [], [Aggregate.count()]),
        Query("by_family", ["family"], [Aggregate.of("units")]),
    ])
    results = engine.run(batch)
"""

from .data import (
    Attribute,
    Database,
    DeltaBatch,
    Relation,
    Schema,
    materialize_join,
)
from .engine import (
    LMFAO,
    DeltaReport,
    IncrementalEngine,
    PlanStatistics,
    ViewCache,
    WorkloadSession,
)
from .jointree import JoinTree, join_tree_from_database
from .server import AnalyticsClient, AnalyticsService, ServiceOverloaded
from .storage import (
    CacheStore,
    DatasetStorage,
    WriteAheadLog,
    load_snapshot,
    write_snapshot,
)
from .query import (
    Aggregate,
    Constant,
    Delta,
    Exp,
    Identity,
    Log,
    Power,
    Product,
    Query,
    QueryBatch,
    Udf,
)

__version__ = "1.0.0"

__all__ = [
    "LMFAO",
    "AnalyticsService",
    "AnalyticsClient",
    "ServiceOverloaded",
    "IncrementalEngine",
    "ViewCache",
    "WorkloadSession",
    "DeltaBatch",
    "DeltaReport",
    "PlanStatistics",
    "Database",
    "Relation",
    "Schema",
    "Attribute",
    "materialize_join",
    "CacheStore",
    "DatasetStorage",
    "WriteAheadLog",
    "load_snapshot",
    "write_snapshot",
    "JoinTree",
    "join_tree_from_database",
    "Query",
    "QueryBatch",
    "Aggregate",
    "Product",
    "Constant",
    "Identity",
    "Power",
    "Delta",
    "Log",
    "Exp",
    "Udf",
]
