"""Join trees over database schemas (paper §3.1).

A join tree is an undirected tree whose nodes are the database relations
and which satisfies the *running intersection property*: for every pair of
nodes, their common attributes appear in every node on the path between
them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..data.database import Database
from .gyo import ear_decomposition


class RootedView:
    """A join tree rooted at a specific node (cached per root).

    Provides parent/children/depth accessors and the subtree attribute
    sets ``omega_{T_n}`` used by the Aggregate Pushdown layer.
    """

    def __init__(self, tree: "JoinTree", root: str):
        self.tree = tree
        self.root = root
        self.parent: Dict[str, Optional[str]] = {root: None}
        self.children: Dict[str, List[str]] = {n: [] for n in tree.nodes}
        self.depth: Dict[str, int] = {root: 0}
        order: List[str] = [root]
        stack = [root]
        seen = {root}
        while stack:
            node = stack.pop()
            for neighbor in tree.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    self.parent[neighbor] = node
                    self.children[node].append(neighbor)
                    self.depth[neighbor] = self.depth[node] + 1
                    order.append(neighbor)
                    stack.append(neighbor)
        if len(order) != len(tree.nodes):
            raise ValueError(
                f"join tree is disconnected when rooted at {root!r}"
            )
        #: nodes in top-down (BFS/DFS) order; reverse gives bottom-up
        self.order: Tuple[str, ...] = tuple(order)
        self.subtree_attrs: Dict[str, FrozenSet[str]] = {}
        for node in reversed(order):
            attrs = set(tree.attrs_of(node))
            for child in self.children[node]:
                attrs |= self.subtree_attrs[child]
            self.subtree_attrs[node] = frozenset(attrs)

    def path_to_root(self, node: str) -> List[str]:
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path


class JoinTree:
    """An undirected join tree over named relations."""

    def __init__(
        self,
        node_attrs: Dict[str, Set[str]],
        edges: Iterable[Tuple[str, str]],
    ):
        self._node_attrs = {n: frozenset(a) for n, a in node_attrs.items()}
        self.nodes: Tuple[str, ...] = tuple(node_attrs)
        self._adjacency: Dict[str, List[str]] = {n: [] for n in self.nodes}
        self.edges: List[Tuple[str, str]] = []
        for a, b in edges:
            if a not in self._node_attrs or b not in self._node_attrs:
                raise ValueError(f"edge ({a!r}, {b!r}) references unknown node")
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
            self.edges.append((a, b))
        if len(self.edges) != len(self.nodes) - 1:
            raise ValueError(
                f"a tree over {len(self.nodes)} nodes needs "
                f"{len(self.nodes) - 1} edges, got {len(self.edges)}"
            )
        self._rooted_cache: Dict[str, RootedView] = {}
        self.validate()

    # -- structure ---------------------------------------------------------

    def neighbors(self, node: str) -> List[str]:
        return self._adjacency[node]

    def attrs_of(self, node: str) -> FrozenSet[str]:
        return self._node_attrs[node]

    def join_keys(self, a: str, b: str) -> Tuple[str, ...]:
        """Shared attributes of two adjacent nodes (the edge's join keys)."""
        return tuple(sorted(self._node_attrs[a] & self._node_attrs[b]))

    def all_attrs(self) -> FrozenSet[str]:
        result: Set[str] = set()
        for attrs in self._node_attrs.values():
            result |= attrs
        return frozenset(result)

    def rooted(self, root: str) -> RootedView:
        if root not in self._rooted_cache:
            self._rooted_cache[root] = RootedView(self, root)
        return self._rooted_cache[root]

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check connectivity and the running intersection property."""
        if not self.nodes:
            raise ValueError("empty join tree")
        root = self.nodes[0]
        rooted = RootedView(self, root)  # raises if disconnected
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1:]:
                shared = self._node_attrs[a] & self._node_attrs[b]
                if not shared:
                    continue
                for node in self._path(a, b, rooted):
                    if not shared <= self._node_attrs[node]:
                        raise ValueError(
                            "running intersection property violated: "
                            f"attrs {sorted(shared)} of ({a!r}, {b!r}) "
                            f"missing from path node {node!r}"
                        )

    def _path(self, a: str, b: str, rooted: RootedView) -> List[str]:
        ancestors_a = rooted.path_to_root(a)
        ancestors_b = rooted.path_to_root(b)
        set_a = set(ancestors_a)
        lca = next(n for n in ancestors_b if n in set_a)
        path = ancestors_a[: ancestors_a.index(lca) + 1]
        tail = ancestors_b[: ancestors_b.index(lca)]
        return path + list(reversed(tail))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinTree(nodes={list(self.nodes)}, edges={self.edges})"


def join_tree_from_database(
    database: Database, edges: Optional[Sequence[Tuple[str, str]]] = None
) -> JoinTree:
    """Construct a join tree for a database.

    With explicit ``edges`` the tree is validated as given.  Otherwise GYO
    reduction builds one (raising for cyclic schemas — see
    ``repro.jointree.hypertree`` for the decomposition fallback).
    """
    node_attrs = {
        rel.name: set(rel.schema.names) for rel in database
    }
    if edges is not None:
        return JoinTree(node_attrs, edges)
    order = ear_decomposition(node_attrs)
    if order is None:
        raise ValueError(
            "database schema is cyclic; use "
            "repro.jointree.hypertree.decompose() first"
        )
    tree_edges = [
        (ear, witness) for ear, witness in order if witness is not None
    ]
    return JoinTree(node_attrs, tree_edges)
