"""Join trees: GYO reduction, construction, hypertree decomposition."""

from .gyo import ear_decomposition, is_acyclic
from .hypertree import decompose
from .join_tree import JoinTree, RootedView, join_tree_from_database

__all__ = [
    "JoinTree",
    "RootedView",
    "join_tree_from_database",
    "ear_decomposition",
    "is_acyclic",
    "decompose",
]
