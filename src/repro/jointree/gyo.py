"""GYO reduction: acyclicity test + ear ordering for join-tree construction.

A join query is (alpha-)acyclic iff repeated *ear removal* empties its
hypergraph.  An edge ``e`` is an ear if there is a witness edge ``w != e``
such that every attribute of ``e`` shared with any other edge is contained
in ``w``.  The (ear, witness) pairs directly give the edges of a join tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple


def ear_decomposition(
    hyperedges: Dict[str, Set[str]],
) -> Optional[List[Tuple[str, Optional[str]]]]:
    """Run GYO reduction.

    Parameters
    ----------
    hyperedges:
        Mapping of relation name to its attribute set.

    Returns
    -------
    ``None`` if the hypergraph is cyclic; otherwise a list of
    ``(ear, witness)`` pairs in removal order.  The final pair has witness
    ``None`` (the last remaining edge).
    """
    remaining = {name: set(attrs) for name, attrs in hyperedges.items()}
    order: List[Tuple[str, Optional[str]]] = []
    while len(remaining) > 1:
        ear = _find_ear(remaining)
        if ear is None:
            return None
        name, witness = ear
        del remaining[name]
        order.append((name, witness))
    if remaining:
        last = next(iter(remaining))
        order.append((last, None))
    return order


def _find_ear(
    remaining: Dict[str, Set[str]],
) -> Optional[Tuple[str, str]]:
    """Find one (ear, witness) pair, preferring deterministic name order."""
    names = sorted(remaining)
    for name in names:
        attrs = remaining[name]
        shared: Set[str] = set()
        for other in names:
            if other != name:
                shared |= attrs & remaining[other]
        if not shared:
            # isolated edge: witness is any other edge (cartesian component)
            witness = next(o for o in names if o != name)
            return name, witness
        for other in names:
            if other != name and shared <= remaining[other]:
                return name, other
    return None


def is_acyclic(hyperedges: Dict[str, Set[str]]) -> bool:
    """True iff the hypergraph admits a join tree."""
    if not hyperedges:
        return True
    if len(hyperedges) == 1:
        return True
    return ear_decomposition(hyperedges) is not None
