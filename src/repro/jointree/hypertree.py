"""Hypertree decomposition fallback for cyclic schemas.

"For cyclic queries, we first compute a hypertree decomposition and
materialize its bags (cycles) to obtain a join tree." (paper, footnote 1).

We implement a greedy decomposition: while the schema hypergraph is
cyclic, merge the pair of relations that shares the most attributes into a
single *bag*, materializing their join.  This always terminates (in the
worst case with a single bag) and produces an acyclic database equivalent
to the original, over which a join tree exists.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from ..data.database import Database
from ..data.relation import Relation
from .gyo import is_acyclic
from .join_tree import JoinTree, join_tree_from_database


def decompose(database: Database) -> Tuple[Database, JoinTree]:
    """Return an acyclic database (bags materialized) and its join tree.

    For an already-acyclic database this is the identity plus join-tree
    construction.
    """
    current = database
    while not is_acyclic(
        {rel.name: set(rel.schema.names) for rel in current}
    ):
        pair = _best_merge_pair(current)
        if pair is None:
            raise RuntimeError(
                "cyclic schema has no relations sharing attributes; "
                "cannot decompose"
            )
        current = _merge(current, *pair)
    return current, join_tree_from_database(current)


def _best_merge_pair(database: Database):
    """The relation pair sharing the most attributes (ties: smaller join)."""
    best = None
    best_key = None
    for left, right in combinations(database, 2):
        shared = len(left.schema.intersection(right.schema))
        if shared == 0:
            continue
        key = (shared, -(left.n_rows + right.n_rows))
        if best_key is None or key > best_key:
            best_key = key
            best = (left.name, right.name)
    return best


def _merge(database: Database, left_name: str, right_name: str) -> Database:
    """Materialize the join of two relations into one bag relation."""
    left = database.relation(left_name)
    right = database.relation(right_name)
    bag = left.join(right, name=f"bag_{left_name}_{right_name}")
    relations: List[Relation] = [
        rel for rel in database if rel.name not in (left_name, right_name)
    ]
    relations.append(bag)
    return Database(relations, name=database.name)
