"""Durable storage & recovery: snapshots, a delta WAL, a cache tier.

Everything the in-memory engine stack computes — the loaded
:class:`~repro.data.database.Database`, the epoch history of committed
deltas, and the content-addressed view cache — can be persisted and
recovered by this package:

* :mod:`~repro.storage.snapshot` — a versioned columnar on-disk format
  for databases (per-relation column files + a JSON manifest carrying
  schema, row counts, CRCs, and relation content fingerprints, so a
  reloaded relation re-keys to identical cache digests);
* :mod:`~repro.storage.wal` — an append-only, fsync'd, checksummed
  write-ahead log of :class:`~repro.data.database.DeltaBatch` commits
  with epoch numbers, replayable after a crash (torn tails truncate,
  corruption never propagates past the first bad frame);
* :mod:`~repro.storage.cachestore` — the persistent second tier of the
  :class:`~repro.engine.viewcache.cache.ViewCache`: views spill to disk
  keyed by content digest and serve cross-process warm starts, with
  corruption-safe loads (bad entry = miss, never a crash);
* :mod:`~repro.storage.manager` — :class:`DatasetStorage`, the per-
  dataset coordinator: atomic ``CURRENT``-pointer snapshot versioning,
  boot-time recovery (snapshot load + WAL replay), and compaction.
"""

from .cachestore import CacheStore
from .manager import (
    DatasetStorage,
    RecoveredState,
    RecoveryStats,
    StorageError,
    dataset_dirs,
)
from .snapshot import (
    SnapshotError,
    SnapshotInfo,
    load_snapshot,
    write_snapshot,
)
from .wal import WalCommit, WalError, WriteAheadLog

__all__ = [
    "CacheStore",
    "DatasetStorage",
    "RecoveredState",
    "RecoveryStats",
    "SnapshotError",
    "SnapshotInfo",
    "StorageError",
    "WalCommit",
    "WalError",
    "WriteAheadLog",
    "dataset_dirs",
    "load_snapshot",
    "write_snapshot",
]
