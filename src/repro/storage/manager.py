"""One durable data directory per dataset: snapshot + WAL + cache tier.

:class:`DatasetStorage` owns the on-disk layout and the recovery
protocol the serving layer uses::

    <dir>/CURRENT            # name of the live snapshot directory
    <dir>/snap-<epoch>-<n>/  # columnar snapshots (manager-versioned)
    <dir>/wal.log            # the delta write-ahead log
    <dir>/cache/             # spilled content-addressed views

The ``CURRENT`` pointer makes snapshot replacement atomic the LevelDB
way: a new snapshot is written to a *fresh* directory, fsynced, and
only then named by an atomic rewrite of ``CURRENT``; old snapshot
directories are deleted afterwards.  A crash at any point leaves either
the old or the new snapshot live — never neither.

**Recovery** = load the ``CURRENT`` snapshot, then replay every WAL
commit with an epoch greater than the snapshot's.  Because the serving
layer logs each commit *before* publishing its epoch, the recovered
database is byte-identical (and therefore fingerprint-identical) to
the last published epoch — reloaded relations re-key to the same
content digests, so the spilled cache tier serves warm hits
immediately.

**Compaction** folds the WAL into a fresh snapshot at the current
epoch and truncates the log, bounding replay time after the next
restart.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..data.database import Database
from .cachestore import CacheStore
from .snapshot import (
    SnapshotError,
    SnapshotInfo,
    _fsync_dir,
    load_snapshot,
    write_snapshot,
)
from .wal import WalCommit, WriteAheadLog

CURRENT_NAME = "CURRENT"
WAL_NAME = "wal.log"
CACHE_DIR_NAME = "cache"


class StorageError(RuntimeError):
    """The data directory is unusable (missing/corrupt CURRENT, ...)."""


@dataclass
class RecoveryStats:
    """What one boot-time recovery did (logged and exposed in /stats)."""

    snapshot_epoch: int
    epoch: int
    replayed_commits: int
    replayed_changes: int
    wal_tail_truncated: bool
    snapshot_load_seconds: float
    replay_seconds: float
    cache_entries: int
    cache_bytes: int

    def as_dict(self) -> Dict:
        return {
            "snapshot_epoch": self.snapshot_epoch,
            "epoch": self.epoch,
            "replayed_commits": self.replayed_commits,
            "replayed_changes": self.replayed_changes,
            "wal_tail_truncated": self.wal_tail_truncated,
            "snapshot_load_seconds": round(self.snapshot_load_seconds, 6),
            "replay_seconds": round(self.replay_seconds, 6),
            "cache_entries": self.cache_entries,
            "cache_bytes": self.cache_bytes,
        }


@dataclass
class RecoveredState:
    """The result of :meth:`DatasetStorage.recover`."""

    database: Database
    epoch: int
    stats: RecoveryStats


class DatasetStorage:
    """Durable storage for one dataset: snapshots, WAL, cache tier.

    Typical lifecycles::

        storage = DatasetStorage(path)
        if storage.has_snapshot():
            recovered = storage.recover()      # snapshot + WAL replay
        else:
            storage.initialize(database)       # first boot
        ...
        storage.log_commit(epoch, deltas)      # on every delta commit
        storage.compact(database, epoch)       # fold WAL away
        storage.close()
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: bool = True,
        cache_budget_bytes: Optional[int] = None,
    ):
        self.directory = os.path.abspath(directory)
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        # resume the snapshot counter past every name already on disk:
        # a fresh process must never regenerate the name CURRENT points
        # at (write_snapshot's replace path is not crash-atomic; with
        # unique names it is never taken for a live snapshot)
        self._snap_counter = self._max_existing_snap_counter()
        self._last_compaction: Optional[Dict] = None
        # lazily cached: stats() must not re-read the manifest per call
        self._snapshot_epoch: Optional[int] = None
        self.cache_store = CacheStore(
            os.path.join(self.directory, CACHE_DIR_NAME),
            budget_bytes=cache_budget_bytes,
        )
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_NAME), fsync=fsync
        )

    # -- the CURRENT pointer -----------------------------------------------

    def _current_path(self) -> str:
        return os.path.join(self.directory, CURRENT_NAME)

    def current_snapshot_dir(self) -> Optional[str]:
        try:
            with open(self._current_path()) as handle:
                name = handle.read().strip()
        except OSError:
            return None
        if not name:
            return None
        return os.path.join(self.directory, name)

    def has_snapshot(self) -> bool:
        directory = self.current_snapshot_dir()
        return directory is not None and os.path.isdir(directory)

    def _set_current(self, snapshot_name: str) -> None:
        path = self._current_path()
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(snapshot_name + "\n")
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync:
            # the rename itself must be durable before anything relies
            # on the new snapshot being live (compaction truncates the
            # WAL right after this — losing the rename but not the
            # truncate would roll recovery back past acked commits)
            _fsync_dir(self.directory)

    def _max_existing_snap_counter(self) -> int:
        highest = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not name.startswith("snap-"):
                continue
            try:
                highest = max(highest, int(name.rsplit("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return highest

    def _gc_snapshots(self, keep: str) -> None:
        for name in os.listdir(self.directory):
            if not name.startswith("snap-") or name == keep:
                continue
            shutil.rmtree(
                os.path.join(self.directory, name), ignore_errors=True
            )

    def _write_versioned_snapshot(
        self, database: Database, epoch: int
    ) -> SnapshotInfo:
        with self._lock:
            self._snap_counter += 1
            name = f"snap-{int(epoch):08d}-{self._snap_counter}"
        info = write_snapshot(
            database,
            os.path.join(self.directory, name),
            epoch=epoch,
            fsync=self.fsync,
        )
        self._set_current(name)
        self._gc_snapshots(keep=name)
        with self._lock:
            self._snapshot_epoch = int(epoch)
        return info

    # -- lifecycle ---------------------------------------------------------

    def initialize(
        self, database: Database, *, epoch: int = 0
    ) -> SnapshotInfo:
        """First boot: persist the loaded database as the base snapshot.

        Any pre-existing WAL is truncated *before* the new base goes
        live: ``initialize`` establishes a new base, and commits logged
        against an earlier one must never replay over it (they may not
        even refer to the same rows).  Truncate-first makes the bad
        crash window benign — a crash between truncate and snapshot
        leaves the old base with an empty WAL, i.e. a state the
        operator explicitly asked to abandon, rather than old commits
        silently corrupting the new base.
        """
        if self.wal.n_commits or self.wal.nbytes:
            self.wal.truncate()
        return self._write_versioned_snapshot(database, epoch)

    def load_base(self) -> Tuple[Database, SnapshotInfo, float]:
        """Load the ``CURRENT`` snapshot without replaying the WAL.

        Returns ``(database, snapshot info, load seconds)``.  Callers
        that own an incremental-maintenance layer pair this with
        :meth:`pending_commits` so WAL replay flows through the same
        delta-propagation code live commits use (and a recovered view
        cache matches the live one); :meth:`recover` remains the
        self-contained database-level fold.
        """
        snapshot_dir = self.current_snapshot_dir()
        if snapshot_dir is None or not os.path.isdir(snapshot_dir):
            raise StorageError(
                f"no snapshot to recover in {self.directory!r}"
            )
        t0 = time.perf_counter()
        database, info = load_snapshot(snapshot_dir)
        seconds = time.perf_counter() - t0
        with self._lock:
            self._snapshot_epoch = info.epoch
        return database, info, seconds

    def pending_commits(self, after_epoch: int) -> Iterator[WalCommit]:
        """WAL commits newer than ``after_epoch``, in commit order.

        The monotonic guard covers two cases with one test: commits
        already folded into the snapshot, and a resurrected duplicate
        of an epoch a later commit reused (possible only if a failed
        append's scrub was lost to a power cut) — never apply an epoch
        twice.
        """
        epoch = int(after_epoch)
        for commit in self.wal.replay():
            if commit.epoch <= epoch:
                continue
            epoch = commit.epoch
            yield commit

    def recover(self) -> RecoveredState:
        """Load the current snapshot and replay the WAL over it."""
        database, info, load_seconds = self.load_base()
        t1 = time.perf_counter()
        epoch = info.epoch
        replayed = 0
        changes = 0
        for commit in self.pending_commits(info.epoch):
            for delta in commit.deltas:
                if delta.is_empty:
                    continue
                step = database.apply_delta(delta)
                database = step.database
                changes += delta.n_changes()
            epoch = commit.epoch
            replayed += 1
        stats = RecoveryStats(
            snapshot_epoch=info.epoch,
            epoch=epoch,
            replayed_commits=replayed,
            replayed_changes=changes,
            wal_tail_truncated=self.wal.tail_truncated,
            snapshot_load_seconds=load_seconds,
            replay_seconds=time.perf_counter() - t1,
            cache_entries=len(self.cache_store),
            cache_bytes=self.cache_store.spilled_bytes,
        )
        return RecoveredState(database=database, epoch=epoch, stats=stats)

    def log_commit(self, epoch: int, deltas) -> None:
        """Durably record one commit before its epoch is published."""
        self.wal.append(epoch, [d for d in deltas if not d.is_empty])

    def compact(self, database: Database, epoch: int) -> SnapshotInfo:
        """Fold the WAL into a fresh snapshot of ``database`` at ``epoch``.

        The WAL is truncated only after the new snapshot is live, so a
        crash mid-compaction replays the old snapshot + full WAL.
        """
        info = self._write_versioned_snapshot(database, epoch)
        self.wal.truncate()
        with self._lock:
            self._last_compaction = {
                "epoch": int(epoch),
                "unix_time": time.time(),
            }
        return info

    def sync(self) -> None:
        """Fsync the WAL (used by graceful-shutdown handlers)."""
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DatasetStorage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    @property
    def wal_len(self) -> int:
        return self.wal.n_commits

    @property
    def last_compaction(self) -> Optional[Dict]:
        with self._lock:
            return dict(self._last_compaction) if self._last_compaction else None

    def snapshot_epoch(self) -> Optional[int]:
        """Epoch of the live snapshot (cached; manifest read at most
        once per writer event — initialize/recover/compact refresh it)."""
        with self._lock:
            if self._snapshot_epoch is not None:
                return self._snapshot_epoch
        directory = self.current_snapshot_dir()
        if directory is None:
            return None
        try:
            from .snapshot import read_manifest

            epoch = int(read_manifest(directory)["epoch"])
        except (SnapshotError, KeyError, ValueError):
            return None
        with self._lock:
            self._snapshot_epoch = epoch
        return epoch

    def stats(self) -> Dict:
        """The ``storage`` section of ``GET /stats`` for one dataset."""
        cache = self.cache_store.stats()
        return {
            "data_dir": self.directory,
            "wal_len": self.wal_len,
            "wal_bytes": self.wal.nbytes,
            "snapshot_epoch": self.snapshot_epoch(),
            "last_compaction": self.last_compaction,
            "spilled_entries": cache["entries"],
            "spilled_bytes": cache["spilled_bytes"],
            "cache_loads": cache["loads"],
            "cache_load_failures": cache["load_failures"],
        }


def dataset_dirs(data_dir: str) -> List[str]:
    """Sub-directories of ``data_dir`` that hold dataset storage.

    A directory with a ``CURRENT`` file *is* a dataset storage dir (the
    single-dataset layout); otherwise every child with one is returned.
    """
    data_dir = os.path.abspath(data_dir)
    if os.path.isfile(os.path.join(data_dir, CURRENT_NAME)):
        return [data_dir]
    found: List[str] = []
    try:
        names = sorted(os.listdir(data_dir))
    except OSError:
        return []
    for name in names:
        child = os.path.join(data_dir, name)
        if os.path.isfile(os.path.join(child, CURRENT_NAME)):
            found.append(child)
    return found


__all__ = [
    "DatasetStorage",
    "RecoveredState",
    "RecoveryStats",
    "StorageError",
    "WalCommit",
    "dataset_dirs",
]
