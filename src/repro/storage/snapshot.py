"""Versioned columnar on-disk snapshots of a :class:`Database`.

A snapshot is one directory::

    <dir>/manifest.json            # schema, row counts, checksums, fps
    <dir>/data/<relation>/<column>.col   # raw little-endian column bytes

The format is deliberately primitive — raw ``ndarray.tobytes()`` per
column plus a JSON manifest — because primitive is what recovers: any
tool that can read JSON and ``np.fromfile`` can open it, and every
column carries a CRC32 so torn or bit-rotted files are detected at
load, not silently served.

**The round-trip property.**  The manifest records each relation's
content fingerprint (:func:`repro.engine.viewcache.signature.
relation_fingerprint`, the same hash the view cache keys on).  Loading
verifies bytes (CRC) *and* recomputes the fingerprint, so a loaded
relation is guaranteed to re-key to exactly the digests the original
produced — which is what lets a restarted process serve warm cache
hits from a persisted :class:`~repro.storage.cachestore.CacheStore`
against a snapshot-loaded database.

Writes are atomic at directory granularity: everything lands in a
temp sibling first, files are fsynced, then the directory is renamed
into place.  A crash mid-write leaves at worst a ``*.tmp-*`` orphan,
never a half-valid snapshot.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Attribute, Schema
from ..engine.viewcache.signature import relation_fingerprint

FORMAT_NAME = "repro-snapshot"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"


class SnapshotError(RuntimeError):
    """A snapshot directory is missing, malformed, or corrupt."""


@dataclass(frozen=True)
class SnapshotInfo:
    """What one snapshot holds (from its manifest)."""

    directory: str
    epoch: int
    database_name: str
    n_relations: int
    n_rows: int
    nbytes: int
    created_unix: float
    #: relation name -> content fingerprint at write time
    fingerprints: Dict[str, str]


def _safe_name(name: str) -> str:
    """A relation/column name usable as a path component."""
    if not name or name != os.path.basename(name) or name.startswith("."):
        raise SnapshotError(f"name {name!r} is not snapshot-safe")
    return name


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def write_snapshot(
    database: Database,
    directory: str,
    *,
    epoch: int = 0,
    fsync: bool = True,
) -> SnapshotInfo:
    """Write a snapshot of ``database`` at ``directory`` (atomically).

    An existing snapshot at ``directory`` is replaced only after the
    new one is fully on disk.
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    os.makedirs(parent, exist_ok=True)
    tmp = f"{directory}.tmp-{os.getpid()}"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(os.path.join(tmp, "data"))
    relations: List[dict] = []
    total_rows = 0
    total_bytes = 0
    fingerprints: Dict[str, str] = {}
    for relation in database:
        rel_dir = os.path.join(tmp, "data", _safe_name(relation.name))
        os.makedirs(rel_dir)
        columns: List[dict] = []
        for attr in relation.schema:
            column = np.ascontiguousarray(relation.column(attr.name))
            raw = column.tobytes()
            file_rel = os.path.join(
                "data", relation.name, f"{_safe_name(attr.name)}.col"
            )
            path = os.path.join(tmp, file_rel)
            with open(path, "wb") as handle:
                handle.write(raw)
            if fsync:
                _fsync_file(path)
            columns.append(
                {
                    "name": attr.name,
                    "dtype": str(column.dtype),
                    "file": file_rel,
                    "nbytes": len(raw),
                    "crc32": zlib.crc32(raw) & 0xFFFFFFFF,
                }
            )
            total_bytes += len(raw)
        fingerprint = relation_fingerprint(relation)
        fingerprints[relation.name] = fingerprint
        total_rows += relation.n_rows
        relations.append(
            {
                "name": relation.name,
                "n_rows": relation.n_rows,
                "attributes": [
                    {
                        "name": a.name,
                        "kind": a.kind,
                        "dtype": str(a.dtype),
                    }
                    for a in relation.schema
                ],
                "columns": columns,
                "fingerprint": fingerprint,
            }
        )
    created = time.time()
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "database": database.name,
        "epoch": int(epoch),
        "created_unix": created,
        "relations": relations,
    }
    manifest_path = os.path.join(tmp, MANIFEST_NAME)
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=1)
    if fsync:
        _fsync_file(manifest_path)
        _fsync_dir(tmp)
    old: Optional[str] = None
    if os.path.exists(directory):
        old = f"{directory}.old-{os.getpid()}"
        os.rename(directory, old)
    os.rename(tmp, directory)
    if fsync:
        _fsync_dir(parent)
    if old is not None:
        shutil.rmtree(old, ignore_errors=True)
    return SnapshotInfo(
        directory=directory,
        epoch=int(epoch),
        database_name=database.name,
        n_relations=len(database),
        n_rows=total_rows,
        nbytes=total_bytes,
        created_unix=created,
        fingerprints=fingerprints,
    )


def read_manifest(directory: str) -> dict:
    """The parsed (and format-checked) manifest of a snapshot dir."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {directory!r}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable manifest {path!r}: {exc}") from None
    if manifest.get("format") != FORMAT_NAME:
        raise SnapshotError(f"{path!r} is not a {FORMAT_NAME} manifest")
    if manifest.get("version") != FORMAT_VERSION:
        raise SnapshotError(
            f"{path!r}: unsupported snapshot version "
            f"{manifest.get('version')!r} (expected {FORMAT_VERSION})"
        )
    return manifest


def load_snapshot(
    directory: str, *, verify: bool = True
) -> Tuple[Database, SnapshotInfo]:
    """Load a snapshot back into an in-memory :class:`Database`.

    With ``verify`` (the default) every column's CRC32 and every
    relation's content fingerprint are checked against the manifest;
    any mismatch raises :class:`SnapshotError` rather than serving
    silently corrupt data.
    """
    directory = os.path.abspath(directory)
    manifest = read_manifest(directory)
    relations: List[Relation] = []
    total_rows = 0
    total_bytes = 0
    fingerprints: Dict[str, str] = {}
    for spec in manifest["relations"]:
        attrs = [
            Attribute(a["name"], a["kind"], np.dtype(a["dtype"]))
            for a in spec["attributes"]
        ]
        n_rows = int(spec["n_rows"])
        columns: Dict[str, np.ndarray] = {}
        for col in spec["columns"]:
            path = os.path.join(directory, col["file"])
            dtype = np.dtype(col["dtype"])
            try:
                raw = np.fromfile(path, dtype=dtype)
            except (OSError, ValueError) as exc:
                raise SnapshotError(
                    f"column file {path!r} unreadable: {exc}"
                ) from None
            if raw.nbytes != col["nbytes"] or len(raw) != n_rows:
                raise SnapshotError(
                    f"column file {path!r} truncated: {raw.nbytes} bytes, "
                    f"manifest says {col['nbytes']}"
                )
            if verify:
                crc = zlib.crc32(raw.tobytes()) & 0xFFFFFFFF
                if crc != col["crc32"]:
                    raise SnapshotError(
                        f"column file {path!r} failed its checksum"
                    )
            columns[col["name"]] = raw
            total_bytes += raw.nbytes
        relation = Relation(spec["name"], Schema(attrs), columns)
        if verify:
            fingerprint = relation_fingerprint(relation)
            if fingerprint != spec["fingerprint"]:
                raise SnapshotError(
                    f"relation {spec['name']!r} fingerprint mismatch: "
                    "snapshot does not round-trip"
                )
            fingerprints[spec["name"]] = fingerprint
        else:
            fingerprints[spec["name"]] = spec["fingerprint"]
        relations.append(relation)
        total_rows += relation.n_rows
    database = Database(relations, name=manifest["database"])
    info = SnapshotInfo(
        directory=directory,
        epoch=int(manifest["epoch"]),
        database_name=manifest["database"],
        n_relations=len(relations),
        n_rows=total_rows,
        nbytes=total_bytes,
        created_unix=float(manifest.get("created_unix", 0.0)),
        fingerprints=fingerprints,
    )
    return database, info
