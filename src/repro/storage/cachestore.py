"""The persistent second tier of the content-addressed view cache.

A :class:`CacheStore` spills materialized views to disk, one file per
content digest, and serves them back across process restarts: a fresh
:class:`~repro.engine.viewcache.cache.ViewCache` wired to a populated
store answers its first probes from disk (*warm hits*) instead of
recomputing.

Because keys are content addresses over relation fingerprints, disk
entries need **no invalidation protocol**: after a delta commit the new
epoch's signatures hash the new fingerprints, so stale entries are
simply never asked for again.  They are garbage, not hazards — an
optional byte budget prunes the oldest files when the tier grows.

Corruption safety is absolute by construction: any failure to read,
parse, or checksum an entry is a *miss* (and the bad file is removed),
never an exception escaping to the engine.  A half-written file cannot
exist — writes land in a temp file and ``os.replace`` into place.

File framing (one view per file, ``<digest>.view``)::

    b"RVC1" | u32 body_len | u32 crc32(body) | body
    body = u32 header_len | header_json | raw column bytes
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.interpreter import ViewData
from ..engine.viewcache.signature import ViewSignature

_MAGIC = b"RVC1"
_FRAME = struct.Struct("<4sII")

_SUFFIX = ".view"


def _encode_entry(sig: ViewSignature, data: ViewData) -> bytes:
    blobs: List[bytes] = []
    key_specs = []
    for name, col in zip(data.group_by, data.key_cols):
        arr = np.ascontiguousarray(col)
        raw = arr.tobytes()
        key_specs.append([name, str(arr.dtype), len(raw)])
        blobs.append(raw)
    agg_specs = []
    for col in data.agg_cols:
        arr = np.ascontiguousarray(col)
        raw = arr.tobytes()
        agg_specs.append([str(arr.dtype), len(raw)])
        blobs.append(raw)
    support_spec = None
    if data.support is not None:
        arr = np.ascontiguousarray(data.support)
        raw = arr.tobytes()
        support_spec = [str(arr.dtype), len(raw)]
        blobs.append(raw)
    header = {
        "digest": sig.digest,
        "relations": sorted(sig.relations),
        "keys": key_specs,
        "aggs": agg_specs,
        "support": support_spec,
    }
    header_bytes = json.dumps(header).encode()
    body = (
        struct.pack("<I", len(header_bytes))
        + header_bytes
        + b"".join(blobs)
    )
    return _FRAME.pack(_MAGIC, len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def _decode_entry(raw: bytes, digest: str) -> Tuple[ViewSignature, ViewData]:
    magic, body_len, crc = _FRAME.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError("bad magic")
    body = raw[_FRAME.size : _FRAME.size + body_len]
    if len(body) != body_len or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        raise ValueError("checksum mismatch")
    (header_len,) = struct.unpack_from("<I", body, 0)
    header = json.loads(body[4 : 4 + header_len].decode())
    if header["digest"] != digest:
        raise ValueError("digest mismatch")
    offset = 4 + header_len

    def take(dtype: str, nbytes: int) -> np.ndarray:
        nonlocal offset
        chunk = body[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError("entry truncated")
        offset += nbytes
        # copy: frombuffer views are read-only and the cache may merge
        return np.frombuffer(chunk, dtype=np.dtype(dtype)).copy()

    group_by = tuple(spec[0] for spec in header["keys"])
    key_cols = [take(spec[1], spec[2]) for spec in header["keys"]]
    agg_cols = [take(spec[0], spec[1]) for spec in header["aggs"]]
    support = (
        take(header["support"][0], header["support"][1])
        if header["support"] is not None
        else None
    )
    sig = ViewSignature(
        digest=digest,
        relations=frozenset(header["relations"]),
        cacheable=True,
        structure=None,
    )
    data = ViewData(
        group_by=group_by,
        key_cols=key_cols,
        agg_cols=agg_cols,
        support=support,
    )
    return sig, data


class CacheStore:
    """A directory of spilled views, keyed by content digest.

    Implements the duck-typed second-tier protocol the in-memory
    :class:`~repro.engine.viewcache.cache.ViewCache` probes: ``save``
    and ``load``.  ``budget_bytes`` (optional) bounds the tier — when
    exceeded, the oldest entries (by mtime) are pruned.
    """

    def __init__(
        self,
        directory: str,
        *,
        budget_bytes: Optional[int] = None,
        fsync: bool = False,
    ):
        self.directory = os.path.abspath(directory)
        self.budget_bytes = budget_bytes
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._saves = 0
        self._loads = 0
        self._load_failures = 0
        self._pruned = 0
        # running totals so budget checks (every save) and stats
        # (every GET /stats) are O(1), not a directory scan; one scan
        # at construction, bookkept by save/delete, re-anchored to the
        # exact scan by every prune()
        self._tracked_bytes = 0
        self._tracked_entries = 0
        self._rescan_tracked()

    def _rescan_tracked(self) -> None:
        total = 0
        count = 0
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    if not entry.name.endswith(_SUFFIX):
                        continue
                    try:
                        total += entry.stat().st_size
                    except OSError:
                        continue
                    count += 1
        except OSError:
            pass
        with self._lock:
            self._tracked_bytes = total
            self._tracked_entries = count

    # -- paths -------------------------------------------------------------

    def _path(self, digest: str) -> str:
        if not digest or any(c in digest for c in "/\\.") or len(digest) > 128:
            raise ValueError(f"bad digest {digest!r}")
        return os.path.join(self.directory, digest + _SUFFIX)

    # -- the second-tier protocol ------------------------------------------

    def save(self, sig: ViewSignature, data: ViewData) -> bool:
        """Spill one view to disk; returns whether it was persisted."""
        if not sig.cacheable:
            return False
        try:
            record = _encode_entry(sig, data)
            path = self._path(sig.digest)
            try:
                replaced_bytes = os.path.getsize(path)
            except OSError:
                replaced_bytes = None
            tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
            with open(tmp, "wb") as handle:
                handle.write(record)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except (OSError, ValueError):
            return False
        over_budget = False
        with self._lock:
            self._saves += 1
            self._tracked_bytes += len(record) - (replaced_bytes or 0)
            if replaced_bytes is None:
                self._tracked_entries += 1
            over_budget = (
                self.budget_bytes is not None
                and self._tracked_bytes > self.budget_bytes
            )
        if over_budget:
            self.prune()
        return True

    def load(
        self, digest: str
    ) -> Optional[Tuple[ViewSignature, ViewData]]:
        """The spilled view for a digest, or None.

        Never raises: a missing, torn, or corrupt file is a miss, and
        corrupt files are deleted so they are not re-probed forever.
        """
        try:
            path = self._path(digest)
        except ValueError:
            return None
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            sig, data = _decode_entry(raw, digest)
        except Exception:  # noqa: BLE001 - bad entry => miss, never crash
            with self._lock:
                self._load_failures += 1
            try:
                os.remove(path)
            except OSError:
                pass
            else:
                with self._lock:
                    self._tracked_bytes -= len(raw)
                    self._tracked_entries -= 1
            return None
        with self._lock:
            self._loads += 1
        # refresh mtime so warm-served entries survive budget pruning
        try:
            os.utime(path)
        except OSError:
            pass
        return sig, data

    # -- maintenance -------------------------------------------------------

    def delete(self, digest: str) -> bool:
        try:
            path = self._path(digest)
            size = os.path.getsize(path)
            os.remove(path)
        except (OSError, ValueError):
            return False
        with self._lock:
            self._tracked_bytes -= size
            self._tracked_entries -= 1
        return True

    def digests(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name[: -len(_SUFFIX)]
            for name in names
            if name.endswith(_SUFFIX)
        )

    def clear(self) -> None:
        for digest in self.digests():
            self.delete(digest)

    @property
    def spilled_bytes(self) -> int:
        total = 0
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    if entry.name.endswith(_SUFFIX):
                        try:
                            total += entry.stat().st_size
                        except OSError:
                            pass
        except OSError:
            pass
        return total

    def __len__(self) -> int:
        return len(self.digests())

    def prune(self) -> int:
        """Remove oldest entries until the byte budget holds.

        Prunes down to 90% of the budget, not to the line: without the
        hysteresis, a tier sitting at its budget would pay this full
        directory scan on every subsequent save.
        """
        if self.budget_bytes is None:
            return 0
        target = int(self.budget_bytes * 0.9)
        entries: List[Tuple[float, int, str]] = []
        try:
            with os.scandir(self.directory) as scan:
                for entry in scan:
                    if not entry.name.endswith(_SUFFIX):
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    entries.append(
                        (stat.st_mtime, stat.st_size, entry.path)
                    )
        except OSError:
            return 0
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in sorted(entries):
            if total <= target:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        with self._lock:
            self._pruned += removed
            # re-anchor the running totals to this scan's exact values
            self._tracked_bytes = total
            self._tracked_entries = len(entries) - removed
        return removed

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """O(1) counters (no directory scan — safe to poll).

        ``entries``/``spilled_bytes`` are the bookkept running totals;
        they track the scanned truth exactly except across external
        file-system mutation, and every :meth:`prune` re-anchors them.
        """
        with self._lock:
            return {
                "saves": self._saves,
                "loads": self._loads,
                "load_failures": self._load_failures,
                "pruned": self._pruned,
                "entries": self._tracked_entries,
                "spilled_bytes": self._tracked_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStore({self.directory!r}, {len(self)} entries, "
            f"{self.spilled_bytes / (1 << 20):.2f} MiB)"
        )
