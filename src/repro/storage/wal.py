"""An append-only, fsync'd, checksummed write-ahead log of delta commits.

Each record is one *commit*: an epoch number plus the ordered
:class:`~repro.data.database.DeltaBatch` list that produced it.  The
serving layer appends the record (and fsyncs) *before* publishing the
epoch, so every epoch a client has ever been told about is
reconstructible by replaying the log over the last snapshot.

On-disk framing, per record::

    b"WALR" | u32 body_len | u32 crc32(body) | body
    body  = u32 header_len | header_json | payload
    header_json = {"epoch": N, "deltas": [{"relation", "inserts", ...}]}
    payload = the raw column / index bytes, concatenated in header order

Crash behavior is the classic one: a record is only *in* the log if its
magic, length, and CRC all check out.  A torn tail (the process died
mid-``write``) makes the trailing record invalid; :meth:`recover`
truncates the file back to the last valid record so subsequent appends
extend a clean log.  Corruption never propagates past the first bad
frame — everything before it replays, everything after is discarded.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..data.database import DeltaBatch

_MAGIC = b"WALR"
_FRAME = struct.Struct("<4sII")  # magic, body length, body crc32


class WalError(RuntimeError):
    """The write-ahead log could not be written."""


@dataclass(frozen=True)
class WalCommit:
    """One replayable commit: the epoch it produced and its deltas."""

    epoch: int
    deltas: Tuple[DeltaBatch, ...]

    def n_changes(self) -> int:
        return sum(d.n_changes() for d in self.deltas)


def _encode_commit(epoch: int, deltas: Sequence[DeltaBatch]) -> bytes:
    header: Dict = {"epoch": int(epoch), "deltas": []}
    blobs: List[bytes] = []
    for delta in deltas:
        spec: Dict = {"relation": delta.relation}
        if delta.inserts is not None:
            cols = []
            for name, values in delta.inserts.items():
                arr = np.ascontiguousarray(np.asarray(values))
                raw = arr.tobytes()
                cols.append([name, str(arr.dtype), len(raw)])
                blobs.append(raw)
            spec["inserts"] = cols
        else:
            spec["inserts"] = None
        if delta.delete_indices is not None:
            arr = np.ascontiguousarray(
                np.asarray(delta.delete_indices, dtype=np.int64)
            )
            raw = arr.tobytes()
            spec["deletes"] = [str(arr.dtype), len(raw)]
            blobs.append(raw)
        else:
            spec["deletes"] = None
        header["deltas"].append(spec)
    header_bytes = json.dumps(header).encode()
    body = (
        struct.pack("<I", len(header_bytes))
        + header_bytes
        + b"".join(blobs)
    )
    return _FRAME.pack(_MAGIC, len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def _decode_body(body: bytes) -> WalCommit:
    (header_len,) = struct.unpack_from("<I", body, 0)
    header = json.loads(body[4 : 4 + header_len].decode())
    offset = 4 + header_len
    deltas: List[DeltaBatch] = []
    for spec in header["deltas"]:
        inserts: Optional[Dict[str, np.ndarray]] = None
        if spec["inserts"] is not None:
            inserts = {}
            for name, dtype, nbytes in spec["inserts"]:
                raw = body[offset : offset + nbytes]
                inserts[name] = np.frombuffer(raw, dtype=np.dtype(dtype))
                offset += nbytes
        delete_indices: Optional[np.ndarray] = None
        if spec["deletes"] is not None:
            dtype, nbytes = spec["deletes"]
            raw = body[offset : offset + nbytes]
            delete_indices = np.frombuffer(raw, dtype=np.dtype(dtype))
            offset += nbytes
        deltas.append(
            DeltaBatch(
                relation=spec["relation"],
                inserts=inserts,
                delete_indices=delete_indices,
            )
        )
    return WalCommit(epoch=int(header["epoch"]), deltas=tuple(deltas))


def _iter_frames(path: str) -> Iterator[Tuple[WalCommit, int]]:
    """Yield ``(commit, end_offset)`` for every valid leading frame.

    The single source of truth for frame validation: both the opening
    scan and :meth:`WriteAheadLog.replay` consume it, so what is
    *counted* is always exactly what recovery *applies*.  Iteration
    stops at the first invalid frame (bad magic, short read, CRC
    mismatch, undecodable body).
    """
    try:
        handle = open(path, "rb")
    except OSError:
        return
    with handle:
        while True:
            frame = handle.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return
            magic, body_len, crc = _FRAME.unpack(frame)
            if magic != _MAGIC:
                return
            body = handle.read(body_len)
            if len(body) < body_len or (
                zlib.crc32(body) & 0xFFFFFFFF
            ) != crc:
                return
            try:
                commit = _decode_body(body)
            except Exception:  # noqa: BLE001 - any decode failure = bad frame
                return
            yield commit, handle.tell()


def _scan(path: str) -> Tuple[int, int, int, bool]:
    """(valid_bytes, n_commits, last_epoch, torn) of a WAL file."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0, 0, 0, False
    valid = 0
    commits = 0
    last_epoch = 0
    for commit, end_offset in _iter_frames(path):
        valid = end_offset
        commits += 1
        last_epoch = commit.epoch
    return valid, commits, last_epoch, valid < size


class WriteAheadLog:
    """One append-only log file of delta commits.

    Opening scans the existing file: valid records are counted, and a
    torn/corrupt tail is truncated away (``tail_truncated`` reports
    whether that happened) so appends always extend a clean log.
    ``fsync=False`` trades durability for speed (tests, benchmarks).
    """

    def __init__(self, path: str, *, fsync: bool = True):
        self.path = os.path.abspath(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        valid, commits, last_epoch, torn = _scan(self.path)
        self.tail_truncated = torn
        if torn:
            with open(self.path, "ab") as handle:
                handle.truncate(valid)
        self._n_commits = commits
        self._last_epoch = last_epoch
        self._nbytes = valid
        self._failed = False
        self._file = open(self.path, "ab")

    # -- introspection -----------------------------------------------------

    @property
    def n_commits(self) -> int:
        with self._lock:
            return self._n_commits

    @property
    def last_epoch(self) -> int:
        with self._lock:
            return self._last_epoch

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    # -- writing -----------------------------------------------------------

    def append(self, epoch: int, deltas: Sequence[DeltaBatch]) -> None:
        """Durably append one commit (write + flush + fsync).

        All-or-nothing: if the write or fsync fails, the file is
        truncated back to the pre-append offset so the log stays
        exactly the prefix of acknowledged commits — a half-landed
        frame would otherwise either replay a rolled-back commit
        (complete frame) or render every later commit unreachable
        (torn frame).  If even the scrub fails, the log is marked
        failed and refuses further appends.
        """
        record = _encode_commit(epoch, deltas)
        with self._lock:
            if self._file.closed:
                raise WalError(f"WAL {self.path!r} is closed")
            if self._failed:
                raise WalError(
                    f"WAL {self.path!r} failed a previous append and "
                    "could not be scrubbed; refusing to extend it"
                )
            offset = self._nbytes
            try:
                self._file.write(record)
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
            except BaseException:
                try:
                    self._file.truncate(offset)
                    self._file.flush()
                    # the scrub itself must be durable: if the frame's
                    # bytes reached disk but the truncation does not,
                    # a power loss resurrects a commit whose caller
                    # was told it failed
                    os.fsync(self._file.fileno())
                except OSError:
                    self._failed = True
                raise
            self._n_commits += 1
            self._last_epoch = int(epoch)
            self._nbytes += len(record)

    def truncate(self) -> None:
        """Reset the log to empty (after a compaction folded it away)."""
        with self._lock:
            self._file.truncate(0)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._n_commits = 0
            self._last_epoch = 0
            self._nbytes = 0
            self._failed = False  # an empty log is clean again

    def sync(self) -> None:
        """Force the OS to persist everything appended so far."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def replay(self) -> Iterator[WalCommit]:
        """Yield every valid commit in append order.

        Reads from a fresh handle, so replay is safe while the append
        handle is open; iteration stops at the first invalid frame
        (which :meth:`__init__` already truncated for the common case).
        """
        for commit, _end in _iter_frames(self.path):
            yield commit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({self.path!r}, commits={self._n_commits}, "
            f"last_epoch={self._last_epoch}, {self._nbytes}B)"
        )
