"""The Group Views layer (paper §3.4, Figure 3 right).

Views going out of the same join-tree node are clustered into *view
groups* such that no view in a group depends (transitively) on another
view of the same group.  A group is LMFAO's computational unit: the
Multi-Output Optimization evaluates all of a group's views in one shared
pass over the node's relation.

We assign each view a *rank* — the length of the longest reference chain
below it — and group by ``(source node, rank)``.  Ranks strictly increase
along dependency chains, so same-rank views at a node are independent.
The groups form a DAG used by the Parallelization layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .pushdown import DecomposedBatch
from .views import View


@dataclass
class ViewGroup:
    """A set of independent views computed together at one node."""

    id: int
    node: str
    view_ids: List[int]
    #: ids of groups this group reads views from
    depends_on: Set[int] = field(default_factory=set)


@dataclass
class GroupedPlan:
    """All view groups in a topological execution order.

    ``groups`` is ordered so that every group appears after all groups
    it depends on — consumers may simply iterate it front to back.  The
    old level-barrier API (``execution_levels()``) is gone: scheduling
    is the dependency-counting
    :class:`~repro.engine.executor.DataflowScheduler`'s job now.
    """

    groups: List[ViewGroup]
    #: group id per view id
    group_of: Dict[int, int]

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def group_views(
    decomposed: DecomposedBatch, group_enabled: bool = True
) -> GroupedPlan:
    """Cluster views into groups; ``group_enabled=False`` puts every view
    in its own group (the no-MOO ablation)."""
    views = decomposed.views
    ranks = _ranks(views)
    groups: List[ViewGroup] = []
    group_of: Dict[int, int] = {}
    if group_enabled:
        bucket: Dict[Tuple[str, int], ViewGroup] = {}
        # iterate in rank order so groups come out topological
        for view in sorted(views, key=lambda v: (ranks[v.id], v.id)):
            key = (view.source, ranks[view.id])
            group = bucket.get(key)
            if group is None:
                group = ViewGroup(id=len(groups), node=view.source, view_ids=[])
                groups.append(group)
                bucket[key] = group
            group.view_ids.append(view.id)
            group_of[view.id] = group.id
    else:
        for view in sorted(views, key=lambda v: (ranks[v.id], v.id)):
            group = ViewGroup(
                id=len(groups), node=view.source, view_ids=[view.id]
            )
            groups.append(group)
            group_of[view.id] = group.id
    for group in groups:
        for vid in group.view_ids:
            for ref_vid in views[vid].referenced_view_ids():
                dep = group_of[ref_vid]
                if dep != group.id:
                    group.depends_on.add(dep)
    return GroupedPlan(groups=groups, group_of=group_of)


def _ranks(views: Sequence[View]) -> Dict[int, int]:
    """Longest reference-chain length per view (0 for leaf views)."""
    ranks: Dict[int, int] = {}

    def rank(view_id: int) -> int:
        if view_id in ranks:
            return ranks[view_id]
        refs = views[view_id].referenced_view_ids()
        value = 0 if not refs else 1 + max(rank(r) for r in refs)
        ranks[view_id] = value
        return value

    for view in views:
        rank(view.id)
    return ranks
