"""Multi-output group plans: a step IR shared by interpreter and codegen.

For each view group the :class:`GroupPlanBuilder` emits a linear list of
*steps* (a small SSA-like IR).  The builder performs the Multi-Output
Optimization of §3.5:

* the node relation is scanned once per *join context* — aggregates that
  reference the same incoming views share the join index computation;
* evaluated factor columns are shared across aggregates (local variables
  in the paper's generated code);
* partial products are shared via prefix caching (the paper's "reuse of
  arithmetic operations");
* group-by key encodings are shared across all aggregates of a view and
  across views with equal group-by.

The same steps are either interpreted (``interpreter.py``) or rendered to
specialized Python source (``codegen.py``), which guarantees the two
execution modes agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.relation import Relation
from ..query.functions import Function
from .grouping import ViewGroup
from .views import View

# ---------------------------------------------------------------------------
# Step IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gather:
    """out = source_column[index]  (index=None means the column itself).

    ``origin`` is ``("rel", attr)``, ``("viewkey", vid, pos)`` or
    ``("viewagg", vid, pos)``.
    """

    out: str
    origin: tuple
    index: Optional[str]


@dataclass(frozen=True)
class JoinStep:
    """Equi-join the current context with an incoming view.

    ``left_vars``/``right_vars`` are the already-gathered key columns.
    Outputs the two index arrays ``out_left``/``out_right``.
    """

    out_left: str
    out_right: str
    left_vars: Tuple[str, ...]
    right_vars: Tuple[str, ...]


@dataclass(frozen=True)
class IndexStep:
    """out = arr[idx] — re-aligns an index array after a join."""

    out: str
    arr: str
    idx: str


@dataclass(frozen=True)
class FactorStep:
    """Evaluate one aggregate factor function over context columns.

    Static functions carry an inline NumPy expression; dynamic functions
    are called through the plan's parameter table (slot).
    """

    out: str
    function: Function
    col_vars: Tuple[Tuple[str, str], ...]  # (attr, var)
    dyn_slot: Optional[int]


@dataclass(frozen=True)
class MulStep:
    """out = a * b (both row-aligned arrays)."""

    out: str
    a: str
    b: str


@dataclass(frozen=True)
class GroupKeyStep:
    """Encode composite group-by keys of a context.

    Outputs ``out_codes`` (row-aligned int codes) and ``out_keys`` (list
    of per-group key columns in lexicographic order).
    """

    out_codes: str
    out_keys: str
    key_vars: Tuple[str, ...]


@dataclass(frozen=True)
class GroupSumStep:
    """One aggregate column: grouped (or scalar) summation.

    ``values`` is the product array var, or ``None`` for pure counts.
    ``codes``/``keys`` are ``None`` for scalar (no group-by) aggregates;
    then ``n_var`` holds the context length var for counts.
    ``scalar_vars`` multiply the result (scalar incoming views).
    """

    out: str
    codes: Optional[str]
    keys: Optional[str]
    values: Optional[str]
    n_var: Optional[str]
    coefficient: float
    scalar_vars: Tuple[str, ...]


@dataclass(frozen=True)
class ScalarViewStep:
    """out = incoming[vid].agg_cols[pos][0] — a scalar child view value."""

    out: str
    view_id: int
    agg_index: int


@dataclass(frozen=True)
class EmitStep:
    """Assemble one output view from key columns + aggregate columns.

    ``support_var`` optionally names a per-group context-row count used by
    incremental maintenance to retire group keys whose support reaches
    zero after retractions (``None`` when support is not tracked).
    """

    view_id: int
    group_by: Tuple[str, ...]
    keys_var: Optional[str]  # var of GroupKeyStep.out_keys, None if scalar
    agg_vars: Tuple[str, ...]
    support_var: Optional[str] = None


Step = object  # union of the dataclasses above


@dataclass
class GroupPlan:
    """The executable plan of one view group."""

    group: ViewGroup
    node: str
    steps: List[Step]
    #: view ids this plan consumes
    input_view_ids: Tuple[int, ...]
    #: relation attrs this plan reads
    relation_attrs: Tuple[str, ...]

    def describe(self) -> str:
        """Human-readable plan dump (the Figure 4 analog)."""
        lines = [f"group {self.group.id} @ {self.node}:"]
        for step in self.steps:
            lines.append(f"  {step}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


@dataclass
class _Context:
    """Symbolic join context: relation rows joined with some views."""

    key: Tuple[int, ...]  # sorted view ids joined so far
    base_idx: Optional[str]  # var of indices into the relation (None=identity)
    view_idx: Dict[int, str]  # view id -> var of indices into its columns
    n_var: str  # var holding the context length


class ViewMeta:
    """What the builder needs to know about an incoming view."""

    def __init__(self, view: View):
        self.view_id = view.id
        self.group_by = view.group_by
        self.n_aggregates = len(view.aggregates)

    @property
    def is_scalar(self) -> bool:
        return not self.group_by


class GroupPlanBuilder:
    """Builds the step list for one view group."""

    def __init__(
        self,
        group: ViewGroup,
        views: Sequence[View],
        relation_attrs: Sequence[str],
        dyn_slots: Dict[int, int],
        track_support: bool = False,
    ):
        self.group = group
        self.views = views
        self.node = group.node
        self.relation_attrs = tuple(relation_attrs)
        self.dyn_slots = dyn_slots  # id(function) -> slot
        self.track_support = track_support
        self.steps: List[Step] = []
        self._var_count = 0
        self._contexts: Dict[Tuple[int, ...], _Context] = {}
        # caches for sharing
        self._gather_cache: Dict[tuple, str] = {}
        self._factor_cache: Dict[tuple, str] = {}
        self._product_cache: Dict[tuple, str] = {}
        self._groupkey_cache: Dict[tuple, Tuple[str, str]] = {}
        self._scalar_cache: Dict[tuple, str] = {}
        self._input_views: Dict[int, None] = {}

    # -- var bookkeeping -----------------------------------------------------

    def _new_var(self, hint: str = "v") -> str:
        self._var_count += 1
        return f"{hint}{self._var_count}"

    # -- build ----------------------------------------------------------------

    def build(self) -> GroupPlan:
        base = _Context(key=(), base_idx=None, view_idx={}, n_var="_n_rel")
        self._contexts[()] = base
        for view_id in self.group.view_ids:
            self._build_view(self.views[view_id])
        return GroupPlan(
            group=self.group,
            node=self.node,
            steps=self.steps,
            input_view_ids=tuple(self._input_views),
            relation_attrs=self.relation_attrs,
        )

    def _build_view(self, view: View) -> None:
        agg_vars: List[str] = []
        keys_var: Optional[str] = None
        codes_var: Optional[str] = None
        last_ctx: Optional[_Context] = None
        for spec in view.aggregates:
            joinable = []
            scalar_refs = []
            for ref in spec.refs:
                meta = ViewMeta(self.views[ref.view_id])
                self._input_views.setdefault(ref.view_id, None)
                if meta.is_scalar:
                    scalar_refs.append(ref)
                else:
                    joinable.append(ref)
            ctx = self._context_for(
                tuple(sorted({r.view_id for r in joinable}))
            )
            product_var = self._build_product(ctx, spec, joinable)
            scalar_vars = tuple(
                self._scalar_view_var(r.view_id, r.agg_index)
                for r in sorted(scalar_refs, key=lambda r: (r.view_id, r.agg_index))
            )
            if view.group_by:
                codes_var, keys = self._group_keys(ctx, view.group_by)
                keys_var = keys
                last_ctx = ctx
                out = self._new_var("agg")
                self.steps.append(
                    GroupSumStep(
                        out=out,
                        codes=codes_var,
                        keys=keys,
                        values=product_var,
                        n_var=ctx.n_var,
                        coefficient=spec.coefficient,
                        scalar_vars=scalar_vars,
                    )
                )
            else:
                out = self._new_var("agg")
                self.steps.append(
                    GroupSumStep(
                        out=out,
                        codes=None,
                        keys=None,
                        values=product_var,
                        n_var=ctx.n_var,
                        coefficient=spec.coefficient,
                        scalar_vars=scalar_vars,
                    )
                )
            agg_vars.append(out)
        support_var: Optional[str] = None
        if self.track_support and keys_var is not None and last_ctx is not None:
            # context-row count per emitted group key: the multiplicity
            # incremental maintenance needs to retire keys on retraction
            support_var = self._new_var("sup")
            self.steps.append(
                GroupSumStep(
                    out=support_var,
                    codes=codes_var,
                    keys=keys_var,
                    values=None,
                    n_var=last_ctx.n_var,
                    coefficient=1.0,
                    scalar_vars=(),
                )
            )
        self.steps.append(
            EmitStep(
                view_id=view.id,
                group_by=view.group_by,
                keys_var=keys_var,
                agg_vars=tuple(agg_vars),
                support_var=support_var,
            )
        )

    # -- contexts --------------------------------------------------------------

    def _context_for(self, view_ids: Tuple[int, ...]) -> _Context:
        """Get/build the context joining the relation with these views.

        Contexts are built incrementally and cached on the sorted view-id
        tuple; a group's aggregates that share incoming views share the
        join work — the "one pass over the relation" of §3.5.
        """
        if view_ids in self._contexts:
            return self._contexts[view_ids]
        prefix = view_ids[:-1]
        ctx = self._context_for(prefix)
        new_ctx = self._join(ctx, view_ids[-1], view_ids)
        self._contexts[view_ids] = new_ctx
        return new_ctx

    def _join(
        self, ctx: _Context, view_id: int, new_key: Tuple[int, ...]
    ) -> _Context:
        meta = ViewMeta(self.views[view_id])
        join_attrs = [
            a for a in meta.group_by if self._available(ctx, a) is not None
        ]
        if not join_attrs:
            raise RuntimeError(
                f"view {view_id} shares no attributes with the context at "
                f"node {self.node}"
            )
        left_vars = tuple(
            self._gather(ctx, self._available(ctx, a)) for a in join_attrs
        )
        right_vars = tuple(
            self._gather_view_key(view_id, meta.group_by.index(a))
            for a in join_attrs
        )
        li = self._new_var("li")
        ri = self._new_var("ri")
        self.steps.append(
            JoinStep(
                out_left=li,
                out_right=ri,
                left_vars=left_vars,
                right_vars=right_vars,
            )
        )
        # realign existing index arrays
        if ctx.base_idx is None:
            new_base = li
        else:
            new_base = self._new_var("ix")
            self.steps.append(IndexStep(out=new_base, arr=ctx.base_idx, idx=li))
        new_view_idx = {}
        for vid, var in ctx.view_idx.items():
            realigned = self._new_var("ix")
            self.steps.append(IndexStep(out=realigned, arr=var, idx=li))
            new_view_idx[vid] = realigned
        new_view_idx[view_id] = ri
        return _Context(
            key=new_key,
            base_idx=new_base,
            view_idx=new_view_idx,
            n_var=li,  # length of li defines the context length
        )

    def _available(self, ctx: _Context, attr: str) -> Optional[tuple]:
        """Where ``attr`` can be read in this context (origin tuple)."""
        if attr in self.relation_attrs:
            return ("rel", attr)
        for vid in ctx.key:
            group_by = ViewMeta(self.views[vid]).group_by
            if attr in group_by:
                return ("viewkey", vid, group_by.index(attr))
        return None

    # -- gathers ----------------------------------------------------------------

    def _gather(self, ctx: _Context, origin: tuple) -> str:
        """Row-aligned column of the context for the given origin."""
        if origin[0] == "rel":
            index = ctx.base_idx
        else:
            vid = origin[1]
            index = ctx.view_idx.get(vid)
            if index is None and vid not in ctx.key:
                raise RuntimeError(
                    f"origin {origin} not joined into context {ctx.key}"
                )
        cache_key = (ctx.key, origin)
        if cache_key in self._gather_cache:
            return self._gather_cache[cache_key]
        out = self._new_var("c")
        self.steps.append(Gather(out=out, origin=origin, index=index))
        self._gather_cache[cache_key] = out
        return out

    def _gather_view_key(self, view_id: int, pos: int) -> str:
        """A view's own key column (pre-join, identity index)."""
        cache_key = (("viewkey", view_id, pos), None)
        if cache_key in self._gather_cache:
            return self._gather_cache[cache_key]
        out = self._new_var("k")
        self.steps.append(
            Gather(out=out, origin=("viewkey", view_id, pos), index=None)
        )
        self._gather_cache[cache_key] = out
        return out

    def _scalar_view_var(self, view_id: int, agg_index: int) -> str:
        cache_key = (view_id, agg_index)
        if cache_key in self._scalar_cache:
            return self._scalar_cache[cache_key]
        out = self._new_var("s")
        self.steps.append(
            ScalarViewStep(out=out, view_id=view_id, agg_index=agg_index)
        )
        self._scalar_cache[cache_key] = out
        return out

    # -- products ----------------------------------------------------------------

    def _build_product(self, ctx: _Context, spec, joinable_refs) -> Optional[str]:
        """Row-aligned product of factor functions and view aggregates.

        Returns ``None`` when there is nothing row-wise to multiply (a
        pure count); the coefficient and scalar views are applied by the
        GroupSumStep.
        """
        factor_vars: List[str] = []
        for function in sorted(
            spec.functions, key=lambda f: repr(f.signature())
        ):
            factor_vars.append(self._factor(ctx, function))
        for ref in sorted(
            joinable_refs, key=lambda r: (r.view_id, r.agg_index)
        ):
            origin = ("viewagg", ref.view_id, ref.agg_index)
            factor_vars.append(self._gather(ctx, origin))
        if not factor_vars:
            return None
        # prefix-cached folding: shared leading sub-products are computed
        # once (the paper's reuse of repeated multiplications)
        current = factor_vars[0]
        prefix = (ctx.key, current)
        for var in factor_vars[1:]:
            prefix = (prefix, var)
            if prefix in self._product_cache:
                current = self._product_cache[prefix]
                continue
            out = self._new_var("p")
            self.steps.append(MulStep(out=out, a=current, b=var))
            self._product_cache[prefix] = out
            current = out
        return current

    def _factor(self, ctx: _Context, function: Function) -> str:
        slot = self.dyn_slots.get(id(function))
        sig = (
            ("dyn", slot)
            if function.dynamic
            else function.signature()
        )
        cache_key = (ctx.key, sig)
        if cache_key in self._factor_cache:
            return self._factor_cache[cache_key]
        col_vars = tuple(
            (attr, self._gather(ctx, self._require(ctx, attr)))
            for attr in function.attrs
        )
        out = self._new_var("f")
        self.steps.append(
            FactorStep(
                out=out,
                function=function,
                col_vars=col_vars,
                dyn_slot=slot if function.dynamic else None,
            )
        )
        self._factor_cache[cache_key] = out
        return out

    def _require(self, ctx: _Context, attr: str) -> tuple:
        origin = self._available(ctx, attr)
        if origin is None:
            raise RuntimeError(
                f"attribute {attr!r} unavailable in context {ctx.key} at "
                f"node {self.node}; plan construction bug"
            )
        return origin

    # -- group keys ----------------------------------------------------------------

    def _group_keys(
        self, ctx: _Context, group_by: Tuple[str, ...]
    ) -> Tuple[str, str]:
        cache_key = (ctx.key, group_by)
        if cache_key in self._groupkey_cache:
            return self._groupkey_cache[cache_key]
        key_vars = tuple(
            self._gather(ctx, self._require(ctx, a)) for a in group_by
        )
        codes = self._new_var("codes")
        keys = self._new_var("keys")
        self.steps.append(
            GroupKeyStep(out_codes=codes, out_keys=keys, key_vars=key_vars)
        )
        self._groupkey_cache[cache_key] = (codes, keys)
        return codes, keys


def build_group_plan(
    group: ViewGroup,
    views: Sequence[View],
    relation: Relation,
    dyn_slots: Dict[int, int],
    track_support: bool = False,
) -> GroupPlan:
    """Build the multi-output plan for one view group."""
    builder = GroupPlanBuilder(
        group=group,
        views=views,
        relation_attrs=relation.schema.names,
        dyn_slots=dyn_slots,
        track_support=track_support,
    )
    return builder.build()
