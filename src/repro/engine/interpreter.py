"""Interpreted execution of group plans.

Walks the step IR of :mod:`repro.engine.plan` directly.  This is the
AC/DC-style execution mode ("interpreted version of LMFAO", paper §4.1);
the Compilation layer (``codegen.py``) runs the same steps as generated
specialized source.  Differential tests assert both modes agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import ops
from ..data.relation import Relation
from .plan import (
    EmitStep,
    FactorStep,
    Gather,
    GroupKeyStep,
    GroupPlan,
    GroupSumStep,
    IndexStep,
    JoinStep,
    MulStep,
    ScalarViewStep,
)


@dataclass
class ViewData:
    """The materialized result of a view.

    ``key_cols`` holds one array per group-by attribute (aligned rows, in
    lexicographic key order); ``agg_cols`` one float array per aggregate.
    Scalar views have no key columns and length-1 aggregate arrays.

    ``support`` (optional) counts the context rows contributing to each
    group key.  Plans built with ``track_support=True`` populate it; the
    incremental-maintenance layer uses it to drop keys whose support
    reaches zero after retractions.  Supports are integer-valued floats,
    so they add and cancel exactly under the distributive-SUM merge.
    """

    group_by: Tuple[str, ...]
    key_cols: List[np.ndarray]
    agg_cols: List[np.ndarray]
    support: Optional[np.ndarray] = None

    def negated(self) -> "ViewData":
        """This view's data with all sums (and support) sign-flipped.

        A retraction delta is an insertion delta with negated payload:
        every aggregate is a SUM over context rows, so removed rows
        contribute the additive inverse of what they contributed.
        """
        return ViewData(
            group_by=self.group_by,
            key_cols=list(self.key_cols),
            agg_cols=[-col for col in self.agg_cols],
            support=None if self.support is None else -self.support,
        )

    @property
    def n_rows(self) -> int:
        if self.key_cols:
            return len(self.key_cols[0])
        return 1

    def to_relation(self, name: str, schema_lookup=None) -> Relation:
        """Convert to a Relation (used for query outputs)."""
        from ..data.schema import Attribute, Schema

        attrs = []
        columns = {}
        for attr_name, col in zip(self.group_by, self.key_cols):
            if schema_lookup is not None:
                attrs.append(schema_lookup(attr_name))
            else:
                attrs.append(Attribute(attr_name, "categorical", col.dtype))
            columns[attr_name] = col
        for i, col in enumerate(self.agg_cols):
            col_name = f"agg_{i}"
            attrs.append(Attribute(col_name, "continuous", np.float64))
            columns[col_name] = col
        return Relation(name, Schema(attrs), columns)


def execute_plan(
    plan: GroupPlan,
    relation: Relation,
    incoming: Dict[int, ViewData],
    dyn: Sequence,
) -> Dict[int, ViewData]:
    """Run one group plan; returns the produced views by id."""
    env: Dict[str, object] = {"_n_rel": relation.n_rows}
    produced: Dict[int, ViewData] = {}
    for step in plan.steps:
        if isinstance(step, Gather):
            env[step.out] = _gather(step, relation, incoming, env)
        elif isinstance(step, JoinStep):
            lcodes, rcodes = ops.shared_codes(
                [env[v] for v in step.left_vars],
                [env[v] for v in step.right_vars],
            )
            li, ri = ops.join_indices(lcodes, rcodes)
            env[step.out_left] = li
            env[step.out_right] = ri
        elif isinstance(step, IndexStep):
            env[step.out] = env[step.arr][env[step.idx]]
        elif isinstance(step, FactorStep):
            columns = {attr: env[var] for attr, var in step.col_vars}
            if step.dyn_slot is not None:
                env[step.out] = dyn[step.dyn_slot].evaluate(columns)
            else:
                env[step.out] = step.function.evaluate(columns)
        elif isinstance(step, MulStep):
            env[step.out] = env[step.a] * env[step.b]
        elif isinstance(step, GroupKeyStep):
            codes, keys = ops.factorize_rows(
                [env[v] for v in step.key_vars]
            )
            env[step.out_codes] = codes
            env[step.out_keys] = keys
        elif isinstance(step, GroupSumStep):
            env[step.out] = _group_sum(step, env)
        elif isinstance(step, ScalarViewStep):
            env[step.out] = float(
                incoming[step.view_id].agg_cols[step.agg_index][0]
            )
        elif isinstance(step, EmitStep):
            keys = env[step.keys_var] if step.keys_var is not None else []
            support = (
                np.asarray(env[step.support_var], dtype=np.float64)
                if step.support_var is not None
                else None
            )
            produced[step.view_id] = ViewData(
                group_by=step.group_by,
                key_cols=list(keys),
                agg_cols=[
                    np.asarray(env[v], dtype=np.float64)
                    for v in step.agg_vars
                ],
                support=support,
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step {step!r}")
    return produced


def execute_plan_delta(
    plan: GroupPlan,
    delta_relation: Relation,
    incoming: Dict[int, ViewData],
    dyn: Sequence,
    sign: int = 1,
) -> Dict[int, ViewData]:
    """Run one group plan over a delta partition of its node relation.

    Every view aggregate is a SUM over context rows, and context rows
    partition with the node relation's rows (the same property the
    domain-parallel layer exploits), so evaluating the unchanged plan
    over only the inserted (``sign=+1``) or deleted (``sign=-1``) rows
    yields exactly the additive change of each view.  The caller merges
    the result into cached :class:`ViewData` with
    :func:`repro.engine.executor.store.merge_partials`-style re-aggregation.
    """
    if sign not in (1, -1):
        raise ValueError(f"sign must be +1 or -1, got {sign}")
    produced = execute_plan(plan, delta_relation, incoming, dyn)
    if sign == 1:
        return produced
    return {vid: vd.negated() for vid, vd in produced.items()}


def _gather(step: Gather, relation: Relation, incoming, env) -> np.ndarray:
    kind = step.origin[0]
    if kind == "rel":
        column = relation.column(step.origin[1])
    elif kind == "viewkey":
        column = incoming[step.origin[1]].key_cols[step.origin[2]]
    elif kind == "viewagg":
        column = incoming[step.origin[1]].agg_cols[step.origin[2]]
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown gather origin {step.origin!r}")
    if step.index is None:
        return column
    return column[env[step.index]]


def _context_length(env: Dict[str, object], n_var: str) -> int:
    value = env[n_var]
    if isinstance(value, (int, np.integer)):
        return int(value)
    return len(value)


def _group_sum(step: GroupSumStep, env: Dict[str, object]) -> np.ndarray:
    if step.codes is not None:
        keys = env[step.keys]
        n_groups = len(keys[0]) if keys else 0
        codes = env[step.codes]
        if step.values is None:
            column = np.bincount(codes, minlength=n_groups).astype(
                np.float64
            )
        else:
            column = ops.group_sums(codes, env[step.values], n_groups)
    else:
        if step.values is None:
            total = float(_context_length(env, step.n_var))
        else:
            values = env[step.values]
            total = float(np.sum(values)) if len(values) else 0.0
        column = np.asarray([total], dtype=np.float64)
    if step.coefficient != 1.0:
        column = column * step.coefficient
    for scalar_var in step.scalar_vars:
        column = column * env[scalar_var]
    return column
