"""The LMFAO engine facade: all layers wired together (paper Figure 1).

    Aggregates -> Join Tree -> Find Roots -> Aggregate Pushdown
    -> Merge Views -> Group Views -> Multi-Output Optimization
    -> Parallelization -> Compilation

Planning (this module + the layers it calls) produces an
:class:`EnginePlan`; execution is delegated to the pluggable executor
subsystem (:mod:`repro.engine.executor`): a :class:`DataflowScheduler`
launches each view group the moment its inputs are ready, an
:class:`ExecutionBackend` decides how a group is evaluated (interpreted,
compiled, or process-partitioned), and materialized views live in a
:class:`ViewStore` with ref-counted eviction of interior views.

Usage::

    engine = LMFAO(database)                     # compiled, serial
    engine = LMFAO(database, backend="process")  # multiprocess partitions
    results = engine.run(batch)                  # query name -> Relation
    stats = engine.plan(batch).statistics
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Attribute, Schema
from ..jointree.join_tree import JoinTree, join_tree_from_database
from ..query.query import QueryBatch
from . import codegen
from .attribute_order import sort_database
from .executor import (
    BackendSpec,
    DataflowScheduler,
    GroupTask,
    ViewStore,
    make_backend,
)
from .grouping import GroupedPlan, group_views
from .interpreter import ViewData
from .plan import GroupPlan, build_group_plan
from .pushdown import DecomposedBatch, Decomposer
from .roots import assign_roots
from .stats import PlanStatistics, compute_statistics
from .viewcache.cache import CacheRunReport, PatchRecipe, ViewCache
from .viewcache.signature import (
    ViewSignature,
    dyn_binding_key,
    view_signatures,
)


@dataclass
class EnginePlan:
    """A fully planned (and possibly compiled) batch."""

    decomposed: DecomposedBatch
    grouped: GroupedPlan
    group_plans: List[GroupPlan]
    compiled_fns: List[Optional[Callable]]
    statistics: PlanStatistics
    n_dynamic: int
    #: planning-time ``id(function) -> dyn slot`` (content signatures
    #: resolve dynamic functions to their runtime bindings through it)
    dyn_slots: Dict[int, int]

    def describe(self) -> str:
        """Dump all group plans (Figure 4 analog)."""
        return "\n\n".join(p.describe() for p in self.group_plans)

    def generated_source(self) -> str:
        """The generated specialized code (Figure 7 analog)."""
        return "\n\n".join(
            codegen.render_source(p, fn_name=f"group_fn_{p.group.id}")
            for p in self.group_plans
        )

    def dependencies(self) -> Dict[int, set]:
        """Group id -> ids of the groups it reads views from."""
        return {g.id: set(g.depends_on) for g in self.grouped.groups}

    def view_consumers(self) -> Dict[int, int]:
        """View id -> number of groups that read it (for eviction)."""
        consumers: Dict[int, int] = {}
        for group_plan in self.group_plans:
            for vid in group_plan.input_view_ids:
                consumers[vid] = consumers.get(vid, 0) + 1
        return consumers

    def output_view_ids(self) -> set:
        """Ids of views referenced by query outputs (never evictable)."""
        return {
            ref.view_id
            for output in self.decomposed.outputs
            for refs in output.term_refs
            for ref in refs
        }


class BatchResult(dict):
    """Query name -> result Relation, plus timing metadata.

    ``cache_report`` is a
    :class:`~repro.engine.viewcache.cache.CacheRunReport` (per-view
    hit/miss events) when the engine ran with a view cache attached,
    else None.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan_seconds: float = 0.0
        self.execute_seconds: float = 0.0
        self.cache_report: Optional[CacheRunReport] = None


class LMFAO:
    """Layered multiple functional aggregate optimization engine.

    Parameters mirror the paper's optimization layers so ablations
    (Figure 5) can switch each one off:

    * ``multi_root`` — Find Roots uses per-query roots (§3.3);
    * ``merge_mode`` — ``"full"`` / ``"dedup"`` / ``"none"`` (§3.4);
    * ``group_views`` — Multi-Output groups (§3.5) vs one view per plan;
    * ``compile`` — generate + compile specialized code vs interpret;
    * ``n_threads`` — task/domain parallelism (1 = serial);
    * ``sort_inputs`` — sort relations by their attribute orders.

    ``backend`` selects the execution backend: ``"interpret"``,
    ``"compiled"``, ``"process"``, an :class:`ExecutionBackend`
    instance, or ``None`` to derive it from ``compile``.  ``n_threads``
    bounds both the scheduler's task parallelism and the backend's
    domain parallelism (for ``"process"``, values > 1 set the worker
    count; 1 means "all cores").

    Two extra knobs serve the incremental-maintenance layer
    (:mod:`repro.engine.ivm`):

    * ``root`` — force every query to root at one named join-tree node
      (so that node's view groups become sinks whose outputs merge under
      deltas);
    * ``track_support`` — plans additionally maintain a per-group
      context-row count per view, letting delta merges retire group keys
      whose support drops to zero.

    ``view_cache`` (optional) attaches a cross-run
    :class:`~repro.engine.viewcache.cache.ViewCache`: before execution
    every planned view's content signature is probed, groups whose
    outputs are all cached are skipped, and newly materialized views
    are admitted back into the cache (interior views via the store's
    eviction handoff).  The cache may be shared between engines and
    sessions — keys are content addresses, so a hit is always the data
    the engine would have recomputed.
    """

    def __init__(
        self,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        *,
        multi_root: bool = True,
        merge_mode: str = "full",
        group_views: bool = True,
        compile: bool = True,
        n_threads: int = 1,
        sort_inputs: bool = True,
        partition_threshold: int = 20_000,
        root: Optional[str] = None,
        track_support: bool = False,
        backend: BackendSpec = None,
        view_cache: Optional[ViewCache] = None,
    ):
        self.join_tree = join_tree or join_tree_from_database(database)
        self.database = (
            sort_database(database, self.join_tree)
            if sort_inputs
            else database
        )
        if root is not None and root not in self.join_tree.nodes:
            raise ValueError(
                f"root {root!r} is not a join-tree node; nodes are "
                f"{list(self.join_tree.nodes)}"
            )
        self.multi_root = multi_root
        self.merge_mode = merge_mode
        self.group_views_enabled = group_views
        self.n_threads = max(1, int(n_threads))
        self.partition_threshold = partition_threshold
        self.root = root
        self.track_support = track_support
        self.backend = make_backend(
            backend,
            n_threads=self.n_threads,
            partition_threshold=partition_threshold,
            compile_enabled=compile,
        )
        # the process backend executes generated source; plans must
        # carry compiled groups regardless of the legacy compile knob
        self.compile_enabled = compile or self.backend.name == "process"
        self.view_cache = view_cache
        self._plan_cache: Dict[tuple, EnginePlan] = {}
        # id(plan) -> (plan, database, signatures); both identities are
        # re-checked so IVM database swaps invalidate stale signatures
        self._sig_memo: Dict[int, tuple] = {}

    def close(self) -> None:
        """Release the backend's worker pools (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "LMFAO":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- planning -----------------------------------------------------------

    def plan(self, batch: QueryBatch) -> EnginePlan:
        """Plan (and compile) a batch; cached on structural signature."""
        cache_key = (
            batch.structural_signature(),
            self.multi_root,
            self.merge_mode,
            self.group_views_enabled,
            self.compile_enabled,
            self.root,
            self.track_support,
        )
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            return cached
        dyn_functions = batch.dynamic_functions()
        dyn_slots = {id(f): i for i, f in enumerate(dyn_functions)}
        if self.root is not None:
            roots = {query.name: self.root for query in batch}
        else:
            roots = assign_roots(
                batch,
                self.join_tree,
                self.database,
                multi_root=self.multi_root,
            )
        decomposer = Decomposer(
            self.join_tree, merge_mode=self.merge_mode, dyn_slots=dyn_slots
        )
        decomposed = decomposer.decompose(batch, roots)
        grouped = group_views(
            decomposed, group_enabled=self.group_views_enabled
        )
        # support counts only matter where delta merges happen: groups no
        # other group consumes (the sinks).  Interior groups skip the
        # extra per-view bincount.
        consumed = {
            dep for group in grouped.groups for dep in group.depends_on
        }
        group_plans = [
            build_group_plan(
                group,
                decomposed.views,
                self.database.relation(group.node),
                dyn_slots,
                track_support=(
                    self.track_support and group.id not in consumed
                ),
            )
            for group in grouped.groups
        ]
        compiled: List[Optional[Callable]] = [None] * len(group_plans)
        if self.compile_enabled:
            compiled = [codegen.compile_plan(p) for p in group_plans]
        plan = EnginePlan(
            decomposed=decomposed,
            grouped=grouped,
            group_plans=group_plans,
            compiled_fns=compiled,
            statistics=compute_statistics(batch, decomposed, grouped),
            n_dynamic=len(dyn_functions),
            dyn_slots=dyn_slots,
        )
        self._plan_cache[cache_key] = plan
        return plan

    # -- execution -----------------------------------------------------------

    def run(
        self, batch: QueryBatch, *, database: Optional[Database] = None
    ) -> BatchResult:
        """Evaluate a batch; returns query name -> result Relation.

        ``database`` (optional) pins the run to an explicit database
        version — the *epoch hook*: every relation read, content
        signature, and result column of this run comes from that one
        snapshot, even if ``self.database`` is swapped mid-run by a
        concurrent delta commit.  Defaults to the engine's current
        database.
        """
        result, _, _ = self._run(
            batch, retain_interior=False, database=database
        )
        return result

    def run_with_views(
        self, batch: QueryBatch, *, database: Optional[Database] = None
    ) -> Tuple[BatchResult, EnginePlan, ViewStore]:
        """Evaluate a batch, also returning the plan and materialized views.

        The returned :class:`ViewStore` retains every interior view —
        it is what the incremental-maintenance layer caches and patches
        under deltas.
        """
        return self._run(batch, retain_interior=True, database=database)

    def _run(
        self,
        batch: QueryBatch,
        *,
        retain_interior: bool,
        database: Optional[Database] = None,
    ) -> Tuple[BatchResult, EnginePlan, ViewStore]:
        # snapshot once: everything below reads this one version
        db = database if database is not None else self.database
        t0 = time.perf_counter()
        plan = self.plan(batch)
        t1 = time.perf_counter()
        dyn = batch.dynamic_functions()
        if len(dyn) != plan.n_dynamic:
            raise ValueError(
                "batch dynamic-function count changed between planning "
                "and execution"
            )
        store, report = self._execute_impl(
            plan, dyn, retain_interior=retain_interior, database=db
        )
        result = self.assemble(batch, plan, store, database=db)
        result.plan_seconds = t1 - t0
        result.execute_seconds = time.perf_counter() - t1
        result.cache_report = report
        return result, plan, store

    def view_signatures_for(
        self,
        plan: EnginePlan,
        dyn: Sequence = (),
        *,
        database: Optional[Database] = None,
    ) -> Dict[int, ViewSignature]:
        """Content signatures of a plan's views against one database version.

        ``dyn`` is this run's dynamic-function binding (slot order);
        signatures hash those values, not the planning-time ones, so a
        plan-cache-shared plan re-bound to new thresholds gets fresh
        digests.  ``database`` defaults to the engine's current one;
        epoch-pinned runs pass their snapshot so signatures address that
        version's data.  Memoized per (plan, database, binding); an IVM
        database swap or re-binding recomputes on the next run.
        """
        db = database if database is not None else self.database
        dyn_key = dyn_binding_key(dyn)
        memo = self._sig_memo.get(id(plan))
        if (
            memo is not None
            and memo[0] is plan
            and memo[1] is db
            and memo[2] == dyn_key
        ):
            return memo[3]
        sigs = view_signatures(
            plan.decomposed.views, db, plan.dyn_slots, dyn
        )
        self._sig_memo[id(plan)] = (plan, db, dyn_key, sigs)
        return sigs

    def execute(
        self,
        plan: EnginePlan,
        dyn: Sequence,
        *,
        retain_interior: bool = False,
        database: Optional[Database] = None,
    ) -> ViewStore:
        """Materialize every view of a planned batch.

        The dataflow scheduler launches each view group as soon as its
        input views are published; the backend decides how a group is
        evaluated.  With ``retain_interior=False`` interior views are
        evicted once their last consumer finishes (output views are
        pinned and always survive).  ``database`` pins execution to an
        explicit database version (see :meth:`run`).
        """
        store, _ = self._execute_impl(
            plan, dyn, retain_interior=retain_interior, database=database
        )
        return store

    def _execute_impl(
        self,
        plan: EnginePlan,
        dyn: Sequence,
        *,
        retain_interior: bool,
        database: Optional[Database] = None,
    ) -> Tuple[ViewStore, Optional[CacheRunReport]]:
        db = database if database is not None else self.database
        cache = self.view_cache
        report: Optional[CacheRunReport] = None
        sigs: Dict[int, ViewSignature] = {}
        preloaded: Dict[int, ViewData] = {}
        recipes: Dict[int, PatchRecipe] = {}
        skip: set = set()
        if cache is not None:
            sigs = self.view_signatures_for(plan, dyn, database=db)
            report = CacheRunReport(total_groups=len(plan.group_plans))
            for view in plan.decomposed.views:
                report.names[view.id] = view.name
                sig = sigs[view.id]
                if not sig.cacheable:
                    report.events[view.id] = "uncacheable"
                    continue
                data = cache.get(sig.digest)
                if data is None:
                    report.events[view.id] = "miss"
                else:
                    report.events[view.id] = "hit"
                    preloaded[view.id] = data
            for group_plan in plan.group_plans:
                if all(
                    report.events.get(vid) == "hit"
                    for vid in group_plan.group.view_ids
                ):
                    skip.add(group_plan.group.id)
                    continue
                # remember how to repair this group's views after
                # updates: leaf groups re-run over delta partitions,
                # interior groups re-run over their node relation with
                # the re-keyed child views (a cacheable view's inputs
                # are all cacheable, so every input has a digest)
                for vid in group_plan.group.view_ids:
                    sig = sigs[vid]
                    if sig.cacheable and sig.structure is not None:
                        recipes[vid] = PatchRecipe(
                            plan=group_plan,
                            view_id=vid,
                            dyn=tuple(dyn),
                            structure=sig.structure,
                            input_digests=tuple(
                                (ivid, sigs[ivid].digest)
                                for ivid in group_plan.input_view_ids
                            ),
                        )
            report.skipped_groups = len(skip)

        def handoff(vid: int, data: ViewData) -> None:
            # an interior view just lost its last in-batch consumer:
            # admit it to the cross-run cache instead of dropping it
            if report is not None and report.events.get(vid) == "miss":
                cache.put(
                    sigs[vid], data, recipe=recipes.get(vid), database=db
                )

        store = ViewStore(
            consumers=plan.view_consumers(),
            pinned=plan.output_view_ids(),
            retain_all=retain_interior,
            on_evict=handoff if cache is not None else None,
        )
        for vid, data in preloaded.items():
            store.put(vid, data)
        scheduler = DataflowScheduler(n_workers=self.n_threads)

        def task(group_id: int) -> Dict[int, ViewData]:
            if group_id in skip:
                return {}  # every output of this group came from cache
            group_plan = plan.group_plans[group_id]
            return self.backend.run_group(
                GroupTask(
                    plan=group_plan,
                    relation=db.relation(group_plan.node),
                    incoming=store.snapshot(group_plan.input_view_ids),
                    dyn=dyn,
                    compiled_fn=plan.compiled_fns[group_id],
                )
            )

        def publish(group_id: int, produced: Dict[int, ViewData]) -> None:
            store.put_group(produced)
            store.group_finished(
                plan.group_plans[group_id].input_view_ids
            )

        scheduler.run(plan.dependencies(), task, publish)
        if cache is not None:
            # views still resident (pinned outputs; all views when the
            # store retains) that were cache misses are admitted too
            for vid, data in store.items():
                if report.events.get(vid) == "miss":
                    cache.put(
                        sigs[vid],
                        data,
                        recipe=recipes.get(vid),
                        database=db,
                    )
        return store, report

    def _execute(self, plan: EnginePlan, dyn: Sequence) -> ViewStore:
        """Back-compat alias retained for the pre-executor call sites.

        Retains interior views, matching the old behavior of returning
        the complete view dictionary.
        """
        return self.execute(plan, dyn, retain_interior=True)

    def run_group(
        self,
        plan: EnginePlan,
        group_id: int,
        relation: Relation,
        incoming: Mapping[int, ViewData],
        dyn: Sequence,
    ) -> Dict[int, ViewData]:
        """Evaluate one view group over an explicit relation.

        The incremental-maintenance layer uses this to run a cached
        group plan over a delta partition instead of the group's node
        relation.
        """
        return self.backend.run_group(
            GroupTask(
                plan=plan.group_plans[group_id],
                relation=relation,
                incoming=dict(incoming),
                dyn=dyn,
                compiled_fn=plan.compiled_fns[group_id],
            )
        )

    # -- output assembly ------------------------------------------------------

    def assemble(
        self,
        batch: QueryBatch,
        plan: EnginePlan,
        view_data: Mapping[int, ViewData],
        *,
        database: Optional[Database] = None,
    ) -> BatchResult:
        """Assemble per-query result relations from materialized views."""
        db = database if database is not None else self.database
        result = BatchResult()
        outputs_by_name = {o.query_name: o for o in plan.decomposed.outputs}
        for query in batch:
            output = outputs_by_name[query.name]
            result[query.name] = self._assemble_query(
                query, output, view_data, db
            )
        return result

    def _assemble_query(self, query, output, view_data, database) -> Relation:
        # key columns come from any referenced output view (all are
        # lexicographically aligned over the same group-by tuple set)
        first_ref = output.term_refs[0][0]
        base = view_data[first_ref.view_id]
        sorted_group_by = base.group_by
        columns: Dict[str, np.ndarray] = {}
        attrs: List[Attribute] = []
        for attr_name in query.group_by:
            pos = sorted_group_by.index(attr_name)
            columns[attr_name] = base.key_cols[pos]
            attrs.append(
                self._attribute(attr_name, base.key_cols[pos], database)
            )
        # group-by columns reserve their names; colliding aggregate names
        # get suffixed like duplicates
        used_names: Dict[str, int] = {name: 0 for name in query.group_by}
        for agg, refs in zip(query.aggregates, output.term_refs):
            total = None
            for ref in refs:
                col = view_data[ref.view_id].agg_cols[ref.agg_index]
                total = col if total is None else total + col
            name = agg.name or "agg"
            if name in used_names:
                used_names[name] += 1
                name = f"{name}_{used_names[name]}"
            else:
                used_names[name] = 0
            columns[name] = np.asarray(total, dtype=np.float64)
            attrs.append(Attribute(name, "continuous", np.float64))
        return Relation(query.name, Schema(attrs), columns)

    def _attribute(
        self, name: str, column: np.ndarray, database: Database
    ) -> Attribute:
        try:
            kind = database.attribute_kind(name)
        except KeyError:
            kind = "categorical"
        return Attribute(name, kind, column.dtype)
