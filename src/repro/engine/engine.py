"""The LMFAO engine facade: all layers wired together (paper Figure 1).

    Aggregates -> Join Tree -> Find Roots -> Aggregate Pushdown
    -> Merge Views -> Group Views -> Multi-Output Optimization
    -> Parallelization -> Compilation

Usage::

    engine = LMFAO(database)
    results = engine.run(batch)      # query name -> Relation
    stats = engine.plan(batch).statistics
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Attribute, Schema
from ..jointree.join_tree import JoinTree, join_tree_from_database
from ..query.query import QueryBatch
from . import codegen
from .attribute_order import sort_database
from .grouping import GroupedPlan, group_views
from .interpreter import ViewData, execute_plan
from .parallel import merge_partials, run_partitioned
from .plan import GroupPlan, build_group_plan
from .pushdown import DecomposedBatch, Decomposer
from .roots import assign_roots
from .stats import PlanStatistics, compute_statistics


@dataclass
class EnginePlan:
    """A fully planned (and possibly compiled) batch."""

    decomposed: DecomposedBatch
    grouped: GroupedPlan
    group_plans: List[GroupPlan]
    compiled_fns: List[Optional[Callable]]
    statistics: PlanStatistics
    n_dynamic: int

    def describe(self) -> str:
        """Dump all group plans (Figure 4 analog)."""
        return "\n\n".join(p.describe() for p in self.group_plans)

    def generated_source(self) -> str:
        """The generated specialized code (Figure 7 analog)."""
        return "\n\n".join(
            codegen.render_source(p, fn_name=f"group_fn_{p.group.id}")
            for p in self.group_plans
        )


class BatchResult(dict):
    """Query name -> result Relation, plus timing metadata."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan_seconds: float = 0.0
        self.execute_seconds: float = 0.0


class LMFAO:
    """Layered multiple functional aggregate optimization engine.

    Parameters mirror the paper's optimization layers so ablations
    (Figure 5) can switch each one off:

    * ``multi_root`` — Find Roots uses per-query roots (§3.3);
    * ``merge_mode`` — ``"full"`` / ``"dedup"`` / ``"none"`` (§3.4);
    * ``group_views`` — Multi-Output groups (§3.5) vs one view per plan;
    * ``compile`` — generate + compile specialized code vs interpret;
    * ``n_threads`` — task/domain parallelism (1 = serial);
    * ``sort_inputs`` — sort relations by their attribute orders.

    Two extra knobs serve the incremental-maintenance layer
    (:mod:`repro.engine.ivm`):

    * ``root`` — force every query to root at one named join-tree node
      (so that node's view groups become sinks whose outputs merge under
      deltas);
    * ``track_support`` — plans additionally maintain a per-group
      context-row count per view, letting delta merges retire group keys
      whose support drops to zero.
    """

    def __init__(
        self,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        *,
        multi_root: bool = True,
        merge_mode: str = "full",
        group_views: bool = True,
        compile: bool = True,
        n_threads: int = 1,
        sort_inputs: bool = True,
        partition_threshold: int = 20_000,
        root: Optional[str] = None,
        track_support: bool = False,
    ):
        self.join_tree = join_tree or join_tree_from_database(database)
        self.database = (
            sort_database(database, self.join_tree)
            if sort_inputs
            else database
        )
        if root is not None and root not in self.join_tree.nodes:
            raise ValueError(
                f"root {root!r} is not a join-tree node; nodes are "
                f"{list(self.join_tree.nodes)}"
            )
        self.multi_root = multi_root
        self.merge_mode = merge_mode
        self.group_views_enabled = group_views
        self.compile_enabled = compile
        self.n_threads = max(1, int(n_threads))
        self.partition_threshold = partition_threshold
        self.root = root
        self.track_support = track_support
        self._plan_cache: Dict[tuple, EnginePlan] = {}

    # -- planning -----------------------------------------------------------

    def plan(self, batch: QueryBatch) -> EnginePlan:
        """Plan (and compile) a batch; cached on structural signature."""
        cache_key = (
            batch.structural_signature(),
            self.multi_root,
            self.merge_mode,
            self.group_views_enabled,
            self.compile_enabled,
            self.root,
            self.track_support,
        )
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            return cached
        dyn_functions = batch.dynamic_functions()
        dyn_slots = {id(f): i for i, f in enumerate(dyn_functions)}
        if self.root is not None:
            roots = {query.name: self.root for query in batch}
        else:
            roots = assign_roots(
                batch,
                self.join_tree,
                self.database,
                multi_root=self.multi_root,
            )
        decomposer = Decomposer(
            self.join_tree, merge_mode=self.merge_mode, dyn_slots=dyn_slots
        )
        decomposed = decomposer.decompose(batch, roots)
        grouped = group_views(
            decomposed, group_enabled=self.group_views_enabled
        )
        # support counts only matter where delta merges happen: groups no
        # other group consumes (the sinks).  Interior groups skip the
        # extra per-view bincount.
        consumed = {
            dep for group in grouped.groups for dep in group.depends_on
        }
        group_plans = [
            build_group_plan(
                group,
                decomposed.views,
                self.database.relation(group.node),
                dyn_slots,
                track_support=(
                    self.track_support and group.id not in consumed
                ),
            )
            for group in grouped.groups
        ]
        compiled: List[Optional[Callable]] = [None] * len(group_plans)
        if self.compile_enabled:
            compiled = [codegen.compile_plan(p) for p in group_plans]
        plan = EnginePlan(
            decomposed=decomposed,
            grouped=grouped,
            group_plans=group_plans,
            compiled_fns=compiled,
            statistics=compute_statistics(batch, decomposed, grouped),
            n_dynamic=len(dyn_functions),
        )
        self._plan_cache[cache_key] = plan
        return plan

    # -- execution -----------------------------------------------------------

    def run(self, batch: QueryBatch) -> BatchResult:
        """Evaluate a batch; returns query name -> result Relation."""
        result, _, _ = self.run_with_views(batch)
        return result

    def run_with_views(
        self, batch: QueryBatch
    ) -> Tuple[BatchResult, EnginePlan, Dict[int, "ViewData"]]:
        """Evaluate a batch, also returning the plan and materialized views.

        The view dictionary is what the incremental-maintenance layer
        caches and patches under deltas.
        """
        t0 = time.perf_counter()
        plan = self.plan(batch)
        t1 = time.perf_counter()
        dyn = batch.dynamic_functions()
        if len(dyn) != plan.n_dynamic:
            raise ValueError(
                "batch dynamic-function count changed between planning "
                "and execution"
            )
        view_data = self._execute(plan, dyn)
        result = self.assemble(batch, plan, view_data)
        result.plan_seconds = t1 - t0
        result.execute_seconds = time.perf_counter() - t1
        return result, plan, view_data

    def _execute(
        self, plan: EnginePlan, dyn: Sequence
    ) -> Dict[int, ViewData]:
        view_data: Dict[int, ViewData] = {}
        levels = plan.grouped.execution_levels()
        if self.n_threads == 1:
            for level in levels:
                for gid in level:
                    view_data.update(self._run_group(plan, gid, view_data, dyn))
            return view_data
        with ThreadPoolExecutor(max_workers=self.n_threads) as executor:
            for level in levels:
                futures = [
                    executor.submit(
                        self._run_group, plan, gid, view_data, dyn, executor
                    )
                    for gid in level
                ]
                for future in futures:
                    view_data.update(future.result())
        return view_data

    def _run_group(
        self,
        plan: EnginePlan,
        group_id: int,
        view_data: Dict[int, ViewData],
        dyn: Sequence,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> Dict[int, ViewData]:
        group_plan = plan.group_plans[group_id]
        relation = self.database.relation(group_plan.node)
        incoming = {
            vid: view_data[vid] for vid in group_plan.input_view_ids
        }
        runner = self._runner(plan, group_id)
        if (
            executor is not None
            and relation.n_rows >= self.partition_threshold
        ):
            return run_partitioned(
                runner, relation, incoming, dyn, self.n_threads, executor
            )
        return runner(relation, incoming, dyn)

    def _runner(self, plan: EnginePlan, group_id: int):
        group_plan = plan.group_plans[group_id]
        compiled = plan.compiled_fns[group_id]
        if compiled is None:
            def run(relation, incoming, dyn):
                return execute_plan(group_plan, relation, incoming, dyn)

            return run

        def run_compiled(relation, incoming, dyn):
            rel_cols = {
                name: relation.column(name)
                for name in group_plan.relation_attrs
            }
            key_cols = {vid: vd.key_cols for vid, vd in incoming.items()}
            agg_cols = {vid: vd.agg_cols for vid, vd in incoming.items()}
            raw = compiled(rel_cols, relation.n_rows, key_cols, agg_cols, dyn)
            out: Dict[int, ViewData] = {}
            for vid, emitted in raw.items():
                # support-tracking plans emit (group_by, keys, aggs,
                # support); plain plans the historical 3-tuple
                if len(emitted) == 4:
                    group_by, keys, aggs, support = emitted
                else:
                    group_by, keys, aggs = emitted
                    support = None
                out[vid] = ViewData(
                    group_by=group_by,
                    key_cols=list(keys),
                    agg_cols=[
                        np.asarray(a, dtype=np.float64) for a in aggs
                    ],
                    support=(
                        None
                        if support is None
                        else np.asarray(support, dtype=np.float64)
                    ),
                )
            return out

        return run_compiled

    # -- output assembly ------------------------------------------------------

    def assemble(
        self,
        batch: QueryBatch,
        plan: EnginePlan,
        view_data: Dict[int, ViewData],
    ) -> BatchResult:
        """Assemble per-query result relations from materialized views."""
        result = BatchResult()
        outputs_by_name = {o.query_name: o for o in plan.decomposed.outputs}
        for query in batch:
            output = outputs_by_name[query.name]
            result[query.name] = self._assemble_query(query, output, view_data)
        return result

    def _assemble_query(self, query, output, view_data) -> Relation:
        # key columns come from any referenced output view (all are
        # lexicographically aligned over the same group-by tuple set)
        first_ref = output.term_refs[0][0]
        base = view_data[first_ref.view_id]
        sorted_group_by = base.group_by
        columns: Dict[str, np.ndarray] = {}
        attrs: List[Attribute] = []
        for attr_name in query.group_by:
            pos = sorted_group_by.index(attr_name)
            columns[attr_name] = base.key_cols[pos]
            attrs.append(self._attribute(attr_name, base.key_cols[pos]))
        # group-by columns reserve their names; colliding aggregate names
        # get suffixed like duplicates
        used_names: Dict[str, int] = {name: 0 for name in query.group_by}
        for agg, refs in zip(query.aggregates, output.term_refs):
            total = None
            for ref in refs:
                col = view_data[ref.view_id].agg_cols[ref.agg_index]
                total = col if total is None else total + col
            name = agg.name or "agg"
            if name in used_names:
                used_names[name] += 1
                name = f"{name}_{used_names[name]}"
            else:
                used_names[name] = 0
            columns[name] = np.asarray(total, dtype=np.float64)
            attrs.append(Attribute(name, "continuous", np.float64))
        return Relation(query.name, Schema(attrs), columns)

    def _attribute(self, name: str, column: np.ndarray) -> Attribute:
        try:
            kind = self.database.attribute_kind(name)
        except KeyError:
            kind = "categorical"
        return Attribute(name, kind, column.dtype)
