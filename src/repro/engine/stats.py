"""Plan statistics — the quantities reported in Table 2 of the paper.

* **A** — application aggregates (what the application asked for);
* **I** — additional intermediate aggregates LMFAO synthesizes;
* **V** — number of consolidated views;
* **G** — number of view groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..query.query import QueryBatch
from .grouping import GroupedPlan
from .pushdown import DecomposedBatch


@dataclass(frozen=True)
class PlanStatistics:
    """The A/I/V/G statistics of one planned batch."""

    n_application_aggregates: int
    n_intermediate_aggregates: int
    n_views: int
    n_groups: int
    n_queries: int
    views_per_node: Dict[str, int]
    roots: Dict[str, str]

    @property
    def n_total_aggregates(self) -> int:
        return self.n_application_aggregates + self.n_intermediate_aggregates

    def table2_row(self) -> str:
        """One formatted row in the layout of the paper's Table 2."""
        return (
            f"A+I: {self.n_application_aggregates} + "
            f"{self.n_intermediate_aggregates}  "
            f"V: {self.n_views}  G: {self.n_groups}"
        )


def compute_statistics(
    batch: QueryBatch,
    decomposed: DecomposedBatch,
    grouped: GroupedPlan,
) -> PlanStatistics:
    """Derive the Table 2 statistics from a planned batch.

    Intermediate aggregates are all aggregate columns materialized across
    views beyond the application aggregates themselves.  Deduplication can
    make the total smaller than A (shared application aggregates); I is
    then reported as 0.
    """
    n_app = batch.n_application_aggregates
    n_total = decomposed.n_total_aggregates
    views_per_node: Dict[str, int] = {}
    for view in decomposed.views:
        views_per_node[view.source] = views_per_node.get(view.source, 0) + 1
    return PlanStatistics(
        n_application_aggregates=n_app,
        n_intermediate_aggregates=max(0, n_total - n_app),
        n_views=decomposed.n_views,
        n_groups=grouped.n_groups,
        n_queries=len(batch),
        views_per_node=views_per_node,
        roots=dict(decomposed.roots),
    )
