"""SQL rendering of LMFAO plans.

Section 1 of the paper: "Aspects of LMFAO's optimized execution for
query batches can be cast in SQL and fed to a database system.  Such SQL
queries capture decomposition of aggregates into components that can be
pushed past joins and shared across aggregates."  This module performs
that cast: every directional view becomes a ``CREATE VIEW`` statement
over its node relation and incoming views, and every output view becomes
a ``SELECT``.

The rendered script is executable SQL in spirit (SUM/GROUP BY over
joins); functions without a SQL form (UDFs, exponentials) are rendered
as named function calls.  The paper observes that feeding these scripts
to PostgreSQL/MonetDB *hurts* them (too many intermediate views, column
limits) — rendering them still documents precisely what LMFAO computes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..query.functions import Constant, Delta, Exp, Identity, Log, Power, Udf
from .pushdown import DecomposedBatch
from .views import AggregateSpec, View

_DELTA_SQL_OPS = {
    "<=": "<=",
    "<": "<",
    ">=": ">=",
    ">": ">",
    "==": "=",
    "!=": "<>",
}


def view_name(view: View) -> str:
    if view.is_output:
        return f"q_{view.id}_{view.source.lower()}"
    return f"v_{view.id}_{view.source.lower()}_to_{view.target.lower()}"


def function_sql(function) -> str:
    """Render one factor function as a SQL expression."""
    if isinstance(function, Identity):
        return function.attr
    if isinstance(function, Power):
        if function.exponent == 1:
            return function.attr
        return f"POWER({function.attr}, {function.exponent})"
    if isinstance(function, Delta):
        if function.op == "in":
            values = ", ".join(str(v) for v in function.value)
            condition = f"{function.attr} IN ({values})"
        else:
            op = _DELTA_SQL_OPS[function.op]
            condition = f"{function.attr} {op} {function.value}"
        return f"(CASE WHEN {condition} THEN 1.0 ELSE 0.0 END)"
    if isinstance(function, Log):
        return f"LN({function.attr})"
    if isinstance(function, Exp):
        terms = " + ".join(
            f"{theta} * {attr}"
            for attr, theta in zip(function.attrs, function.thetas)
        )
        return f"EXP({terms})"
    if isinstance(function, Udf):
        args = ", ".join(function.attrs)
        return f"{function.name}({args})"
    if isinstance(function, Constant):
        return str(function.value)
    raise TypeError(f"no SQL form for {function!r}")  # pragma: no cover


def aggregate_sql(
    spec: AggregateSpec, views: Sequence[View], alias: str
) -> str:
    """Render one aggregate column: SUM of the factor product."""
    factors: List[str] = []
    if spec.coefficient != 1.0:
        factors.append(str(spec.coefficient))
    for function in spec.functions:
        factors.append(function_sql(function))
    for ref in spec.refs:
        ref_view = views[ref.view_id]
        factors.append(f"{view_name(ref_view)}.agg_{ref.agg_index}")
    product = " * ".join(factors) if factors else "1"
    return f"SUM({product}) AS {alias}"


def view_sql(view: View, views: Sequence[View]) -> str:
    """Render one view as CREATE VIEW (or SELECT for output views)."""
    select_parts = list(view.group_by)
    for i, spec in enumerate(view.aggregates):
        select_parts.append(aggregate_sql(spec, views, f"agg_{i}"))
    from_parts = [view.source]
    joined = {view.source}
    for ref_id in view.referenced_view_ids():
        ref_view = views[ref_id]
        if not ref_view.group_by:
            # scalar views join without a key (cross join of one row)
            from_parts.append(f"CROSS JOIN {view_name(ref_view)}")
            continue
        name = view_name(ref_view)
        if name in joined:
            continue
        joined.add(name)
        from_parts.append(f"NATURAL JOIN {name}")
    body = (
        f"SELECT {', '.join(select_parts)}\n"
        f"  FROM {' '.join(from_parts)}"
    )
    if view.group_by:
        body += f"\n  GROUP BY {', '.join(view.group_by)}"
    if view.is_output:
        return f"-- output {view_name(view)}\n{body};"
    return f"CREATE VIEW {view_name(view)} AS\n{body};"


def render_batch_sql(decomposed: DecomposedBatch) -> str:
    """The full SQL script for a decomposed batch, in dependency order."""
    views = decomposed.views
    ordered = _topological(views)
    statements = [view_sql(views[vid], views) for vid in ordered]
    header = (
        "-- LMFAO view decomposition cast to SQL\n"
        f"-- {len(views)} views, "
        f"{sum(len(v.aggregates) for v in views)} aggregate columns\n"
    )
    return header + "\n\n".join(statements) + "\n"


def _topological(views: Sequence[View]) -> List[int]:
    order: List[int] = []
    seen: Dict[int, bool] = {}

    def visit(vid: int) -> None:
        if vid in seen:
            return
        seen[vid] = True
        for ref in views[vid].referenced_view_ids():
            visit(ref)
        order.append(vid)

    for view in views:
        visit(view.id)
    return order
