"""The Compilation layer: specialized Python source per view group.

LMFAO generates C++ specialized to the join tree and schema; here we
render each :class:`GroupPlan` into a dedicated Python function that is
``compile()``d once and cached with the plan.  The generated code shows
the optimizations of §3.5/Appendix C in Python form:

* static functions are **inlined** as NumPy expressions;
* **dynamic functions** (decision-tree conditions) are invoked through a
  parameter table ``dyn`` so re-binding does not regenerate code;
* shared partial products and join indices appear once as local
  variables;
* aggregate columns of one view are produced contiguously and emitted as
  one fixed-layout tuple (the fixed-size aggregate array analog).

``render_source`` exposes the generated code for inspection (the paper's
Figure 7 analog).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..data import ops
from .plan import (
    EmitStep,
    FactorStep,
    Gather,
    GroupKeyStep,
    GroupPlan,
    GroupSumStep,
    IndexStep,
    JoinStep,
    MulStep,
    ScalarViewStep,
)


def render_source(plan: GroupPlan, fn_name: str = "group_fn") -> str:
    """Render a group plan to Python source."""
    lines: List[str] = [
        f"def {fn_name}(rel_cols, n_rel, key_cols, agg_cols, dyn):",
        f"    # multi-output plan for view group {plan.group.id} at node "
        f"{plan.node!r}",
        "    out = {}",
    ]
    for step in plan.steps:
        lines.extend("    " + line for line in _render_step(step))
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def compile_plan(plan: GroupPlan) -> Callable:
    """Compile a group plan; returns the specialized function.

    The function signature is
    ``fn(rel_cols, n_rel, key_cols, agg_cols, dyn) -> dict`` where
    ``rel_cols`` maps attribute name to column, ``key_cols``/``agg_cols``
    map incoming view id to its column lists, and ``dyn`` is the dynamic
    function table.  The result maps view id to
    ``(group_by, key_col_list, agg_col_list)``.
    """
    source = render_source(plan)
    namespace: Dict[str, object] = {"np": np, "ops": ops}
    code = compile(source, f"<lmfao-group-{plan.group.id}>", "exec")
    exec(code, namespace)  # noqa: S102 - the source is engine-generated
    return namespace["group_fn"]  # type: ignore[return-value]


def _render_step(step) -> List[str]:
    if isinstance(step, Gather):
        return [_render_gather(step)]
    if isinstance(step, JoinStep):
        left = ", ".join(step.left_vars)
        right = ", ".join(step.right_vars)
        tmp_l = f"_lc_{step.out_left}"
        tmp_r = f"_rc_{step.out_left}"
        return [
            f"{tmp_l}, {tmp_r} = ops.shared_codes([{left}], [{right}])",
            f"{step.out_left}, {step.out_right} = "
            f"ops.join_indices({tmp_l}, {tmp_r})",
        ]
    if isinstance(step, IndexStep):
        return [f"{step.out} = {step.arr}[{step.idx}]"]
    if isinstance(step, FactorStep):
        if step.dyn_slot is not None:
            cols = ", ".join(
                f"{attr!r}: {var}" for attr, var in step.col_vars
            )
            return [
                f"{step.out} = dyn[{step.dyn_slot}].evaluate({{{cols}}})"
            ]
        col_vars = {attr: var for attr, var in step.col_vars}
        return [f"{step.out} = {step.function.expr(col_vars)}"]
    if isinstance(step, MulStep):
        return [f"{step.out} = {step.a} * {step.b}"]
    if isinstance(step, GroupKeyStep):
        key_list = ", ".join(step.key_vars)
        return [
            f"{step.out_codes}, {step.out_keys} = "
            f"ops.factorize_rows([{key_list}])"
        ]
    if isinstance(step, GroupSumStep):
        return _render_group_sum(step)
    if isinstance(step, ScalarViewStep):
        return [
            f"{step.out} = float("
            f"agg_cols[{step.view_id}][{step.agg_index}][0])"
        ]
    if isinstance(step, EmitStep):
        keys = step.keys_var if step.keys_var is not None else "[]"
        aggs = ", ".join(step.agg_vars)
        if step.support_var is not None:
            return [
                f"out[{step.view_id}] = ({step.group_by!r}, {keys}, "
                f"[{aggs}], {step.support_var})"
            ]
        return [
            f"out[{step.view_id}] = ({step.group_by!r}, {keys}, [{aggs}])"
        ]
    raise TypeError(f"unknown step {step!r}")  # pragma: no cover


def _render_gather(step: Gather) -> str:
    kind = step.origin[0]
    if kind == "rel":
        base = f"rel_cols[{step.origin[1]!r}]"
    elif kind == "viewkey":
        base = f"key_cols[{step.origin[1]}][{step.origin[2]}]"
    else:
        base = f"agg_cols[{step.origin[1]}][{step.origin[2]}]"
    if step.index is None:
        return f"{step.out} = {base}"
    return f"{step.out} = {base}[{step.index}]"


def _render_group_sum(step: GroupSumStep) -> List[str]:
    lines: List[str] = []
    if step.codes is not None:
        n_expr = f"(len({step.keys}[0]) if {step.keys} else 0)"
        if step.values is None:
            expr = (
                f"np.bincount({step.codes}, minlength={n_expr})"
                ".astype(np.float64)"
            )
        else:
            expr = f"ops.group_sums({step.codes}, {step.values}, {n_expr})"
    else:
        if step.values is None:
            if step.n_var == "_n_rel":
                total = "float(n_rel)"
            else:
                total = f"float(len({step.n_var}))"
        else:
            total = (
                f"(float(np.sum({step.values})) if len({step.values}) "
                "else 0.0)"
            )
        expr = f"np.asarray([{total}], dtype=np.float64)"
    factors = []
    if step.coefficient != 1.0:
        factors.append(repr(step.coefficient))
    factors.extend(step.scalar_vars)
    if factors:
        expr = f"({expr}) * " + " * ".join(factors)
    lines.append(f"{step.out} = {expr}")
    return lines
