"""The Parallelization layer (paper §1.2).

Two forms of parallelism, as in LMFAO:

* **task parallelism** — view groups that do not depend on each other run
  concurrently (the group dependency graph of Figure 3 right);
* **domain parallelism** — the largest relations are partitioned and a
  worker evaluates the multi-output plan per partition; partial view
  outputs are merged by grouped re-aggregation (SUM is distributive over
  row partitions).

NumPy releases the GIL inside its kernels, so a ``ThreadPoolExecutor``
yields genuine overlap for the join/aggregation work.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..data import ops
from ..data.relation import Relation
from .interpreter import ViewData

#: a group runner takes (relation, incoming views, dyn table) and returns
#: the produced views by id
GroupRunner = Callable[[Relation, Dict[int, ViewData], Sequence], Dict[int, ViewData]]


def run_partitioned(
    runner: GroupRunner,
    relation: Relation,
    incoming: Dict[int, ViewData],
    dyn: Sequence,
    n_parts: int,
    executor: ThreadPoolExecutor,
) -> Dict[int, ViewData]:
    """Evaluate one group plan over row partitions of its relation.

    Valid because every view aggregate is a SUM over context rows, and
    context rows partition with the relation rows.
    """
    if n_parts <= 1 or relation.n_rows < n_parts:
        return runner(relation, incoming, dyn)
    bounds = np.linspace(0, relation.n_rows, n_parts + 1, dtype=np.int64)
    parts = [
        relation.take(np.arange(bounds[i], bounds[i + 1]))
        for i in range(n_parts)
        if bounds[i] < bounds[i + 1]
    ]
    futures = [
        executor.submit(runner, part, incoming, dyn) for part in parts
    ]
    partials = [f.result() for f in futures]
    return merge_partials(partials)


def merge_partials(partials: List[Dict[int, ViewData]]) -> Dict[int, ViewData]:
    """Merge per-partition view outputs by grouped re-aggregation.

    Support counts (when every piece tracks them) merge like any other
    SUM column; they are integer-valued, so partition counts add exactly.
    """
    merged: Dict[int, ViewData] = {}
    view_ids = {vid for partial in partials for vid in partial}
    for vid in sorted(view_ids):
        pieces = [p[vid] for p in partials if vid in p]
        first = pieces[0]
        if not first.group_by:
            agg_cols = [
                np.asarray(
                    [sum(float(p.agg_cols[i][0]) for p in pieces)],
                    dtype=np.float64,
                )
                for i in range(len(first.agg_cols))
            ]
            merged[vid] = ViewData(
                group_by=first.group_by, key_cols=[], agg_cols=agg_cols
            )
            continue
        with_support = all(p.support is not None for p in pieces)
        key_cols = [
            np.concatenate([p.key_cols[k] for p in pieces])
            for k in range(len(first.key_cols))
        ]
        value_cols = [
            np.concatenate([p.agg_cols[i] for p in pieces])
            for i in range(len(first.agg_cols))
        ]
        if with_support:
            value_cols.append(np.concatenate([p.support for p in pieces]))
        keys, sums = ops.group_aggregate(key_cols, value_cols)
        support = sums.pop() if with_support else None
        merged[vid] = ViewData(
            group_by=first.group_by,
            key_cols=list(keys),
            agg_cols=list(sums),
            support=support,
        )
    return merged
