"""Deprecated back-compat shim for the old Parallelization-layer module.

The Parallelization layer (paper §1.2) now lives in the executor
subsystem: task parallelism is the dependency-counting
:class:`repro.engine.executor.DataflowScheduler`, and domain
parallelism (partition the largest relations, merge partial views)
is implemented inside the execution backends
(:mod:`repro.engine.executor.backend`).

This module re-exports the distributive-SUM merge primitive under its
historical import path and warns on import; import from
:mod:`repro.engine.executor` instead.
"""

from __future__ import annotations

import warnings

from .executor.store import merge_partials

warnings.warn(
    "repro.engine.parallel is deprecated; import merge_partials from "
    "repro.engine.executor instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["merge_partials"]
