"""The executor subsystem: pluggable execution of planned view groups.

Three layers, composed by the :class:`repro.engine.engine.LMFAO` facade:

* :mod:`~repro.engine.executor.backend` — *how* one view group runs
  (interpreted, compiled, or process-partitioned);
* :mod:`~repro.engine.executor.scheduler` — *when* each group runs
  (dependency-counting dataflow over the group DAG, no level barriers);
* :mod:`~repro.engine.executor.store` — *where* materialized views live
  (thread-safe :class:`ViewStore` with ref-counted eviction and the
  pin/merge API used by incremental maintenance).
"""

from .backend import (
    DEFAULT_PARTITION_THRESHOLD,
    BackendSpec,
    CompiledBackend,
    ExecutionBackend,
    GroupTask,
    InterpreterBackend,
    ProcessBackend,
    make_backend,
    partition_bounds,
    partition_rows,
    views_from_raw,
)
from .scheduler import DataflowScheduler
from .store import ViewStore, merge_partials, retire_dead_keys

__all__ = [
    "BackendSpec",
    "CompiledBackend",
    "DataflowScheduler",
    "DEFAULT_PARTITION_THRESHOLD",
    "ExecutionBackend",
    "GroupTask",
    "InterpreterBackend",
    "ProcessBackend",
    "ViewStore",
    "make_backend",
    "merge_partials",
    "partition_bounds",
    "partition_rows",
    "retire_dead_keys",
    "views_from_raw",
]
