"""The :class:`ViewStore`: materialized views with ref-counted eviction.

Execution materializes a DAG of views; most of them are *interior* —
consumed by downstream view groups and never read again once every
consumer has run.  The store tracks a remaining-consumer count per view
and evicts interior views the moment their last consumer finishes, so a
batch's peak memory is bounded by the working frontier of the DAG rather
than its total view volume.

Views that outlive execution opt out of eviction in two ways:

* **pinning** — query-output views are pinned by the engine; the
  incremental-maintenance layer additionally pins its cached sink views
  (:meth:`ViewStore.pin`);
* **retain_all** — stores built for caching (``run_with_views`` /
  :class:`repro.engine.ivm.IncrementalEngine`) keep every view so deltas
  can later be merged against any group's inputs.

Eviction need not mean the data is lost: an ``on_evict`` callback turns
the drop into a *handoff* — the engine uses it to move interior views
into the cross-run :class:`~repro.engine.viewcache.cache.ViewCache`
the moment their last in-batch consumer finishes, instead of
unconditionally discarding them.

The store is thread-safe: the dataflow scheduler publishes finished
groups from its completion loop while worker threads snapshot inputs
for groups still in flight.  :class:`ViewData` values are treated as
immutable — a put replaces the binding, never mutates the value — which
is what makes the snapshot/publish protocol race-free (the bug class
this replaces: the old engine ``dict.update``-ed a shared ``view_data``
while same-level futures were reading it).

This module also owns the distributive-SUM merge primitives
(:func:`merge_partials`, :func:`retire_dead_keys`) shared by the
domain-parallel backends and the IVM layer.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
)

import numpy as np

from ...data import ops
from ..interpreter import ViewData


def merge_partials(partials: List[Dict[int, ViewData]]) -> Dict[int, ViewData]:
    """Merge per-partition view outputs by grouped re-aggregation.

    Valid because every view aggregate is a SUM over context rows, and
    context rows partition with the node relation's rows.  Support
    counts (when every piece tracks them) merge like any other SUM
    column; they are integer-valued, so partition counts add exactly.
    """
    merged: Dict[int, ViewData] = {}
    view_ids = {vid for partial in partials for vid in partial}
    for vid in sorted(view_ids):
        pieces = [p[vid] for p in partials if vid in p]
        first = pieces[0]
        if not first.group_by:
            agg_cols = [
                np.asarray(
                    [sum(float(p.agg_cols[i][0]) for p in pieces)],
                    dtype=np.float64,
                )
                for i in range(len(first.agg_cols))
            ]
            merged[vid] = ViewData(
                group_by=first.group_by, key_cols=[], agg_cols=agg_cols
            )
            continue
        with_support = all(p.support is not None for p in pieces)
        key_cols = [
            np.concatenate([p.key_cols[k] for p in pieces])
            for k in range(len(first.key_cols))
        ]
        value_cols = [
            np.concatenate([p.agg_cols[i] for p in pieces])
            for i in range(len(first.agg_cols))
        ]
        if with_support:
            value_cols.append(np.concatenate([p.support for p in pieces]))
        keys, sums = ops.group_aggregate(key_cols, value_cols)
        support = sums.pop() if with_support else None
        merged[vid] = ViewData(
            group_by=first.group_by,
            key_cols=list(keys),
            agg_cols=list(sums),
            support=support,
        )
    return merged


def retire_dead_keys(view: ViewData) -> ViewData:
    """Drop group keys whose support cancelled to zero.

    Supports are integer-valued floats maintained purely by addition, so
    the zero test is exact; a key's support hits zero exactly when every
    context row that produced it has been retracted — the same condition
    under which a from-scratch run would not emit the key at all.
    """
    if view.support is None or not view.group_by:
        return view
    alive = view.support > 0.5
    if bool(alive.all()):
        return view
    return ViewData(
        group_by=view.group_by,
        key_cols=[col[alive] for col in view.key_cols],
        agg_cols=[col[alive] for col in view.agg_cols],
        support=view.support[alive],
    )


class ViewStore:
    """Materialized views by id, with consumer-counted eviction.

    ``consumers`` maps each view id to the number of view groups that
    will read it; :meth:`group_finished` decrements the counts of a
    finished group's inputs, and a view whose count reaches zero is
    evicted unless pinned (or the store was built with
    ``retain_all=True``).  Views absent from ``consumers`` are never
    evicted — eviction is strictly an opt-in optimization.

    ``on_evict`` (optional) is called as ``on_evict(vid, data)`` for
    every view dropped by ref-counted eviction, outside the store lock,
    from the thread that triggered the eviction.  The engine hands
    evicted interior views to the cross-run view cache this way.

    The mapping protocol (``store[vid]``, ``vid in store``, ``len``,
    iteration, ``items``) is supported so the store drops in wherever a
    plain ``Dict[int, ViewData]`` was used before.
    """

    def __init__(
        self,
        consumers: Optional[Mapping[int, int]] = None,
        pinned: Iterable[int] = (),
        *,
        retain_all: bool = False,
        on_evict: Optional[Callable[[int, ViewData], None]] = None,
    ):
        self._data: Dict[int, ViewData] = {}
        self._lock = threading.Lock()
        self._remaining: Dict[int, int] = dict(consumers or {})
        self._pinned = set(pinned)
        self.retain_all = retain_all
        self._on_evict = on_evict
        #: ids of views dropped by ref-counted eviction (for tests/stats)
        self.evicted: set = set()

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, vid: int) -> ViewData:
        with self._lock:
            try:
                return self._data[vid]
            except KeyError:
                if vid in self.evicted:
                    raise KeyError(
                        f"view {vid} was evicted after its last consumer "
                        "finished; pin it (or build the store with "
                        "retain_all=True) to keep it"
                    ) from None
                raise

    def __setitem__(self, vid: int, data: ViewData) -> None:
        self.put(vid, data)

    def __contains__(self, vid: int) -> bool:
        with self._lock:
            return vid in self._data

    def __iter__(self) -> Iterator[int]:
        with self._lock:
            return iter(list(self._data))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self):
        with self._lock:
            return list(self._data)

    def items(self):
        with self._lock:
            return list(self._data.items())

    def values(self):
        with self._lock:
            return list(self._data.values())

    def get(self, vid: int, default=None):
        with self._lock:
            return self._data.get(vid, default)

    # -- writes -----------------------------------------------------------

    def put(self, vid: int, data: ViewData) -> None:
        """Publish (or replace) one view's materialization."""
        with self._lock:
            self._data[vid] = data
            self.evicted.discard(vid)

    def put_group(self, produced: Mapping[int, ViewData]) -> None:
        """Publish every view a finished group produced."""
        with self._lock:
            for vid, data in produced.items():
                self._data[vid] = data
                self.evicted.discard(vid)

    # -- reads ------------------------------------------------------------

    def snapshot(self, vids: Iterable[int]) -> Dict[int, ViewData]:
        """A consistent {vid: ViewData} snapshot of the named views.

        Workers call this once at task start; later puts/evictions never
        mutate the returned dict or its (immutable) values.
        """
        with self._lock:
            return {vid: self._data[vid] for vid in vids}

    def views(self) -> Dict[int, ViewData]:
        """A plain-dict copy of everything currently stored."""
        with self._lock:
            return dict(self._data)

    # -- pinning / eviction ------------------------------------------------

    def pin(self, vid: int) -> None:
        """Exempt a view from eviction (idempotent)."""
        with self._lock:
            self._pinned.add(vid)

    def unpin(self, vid: int) -> None:
        with self._lock:
            self._pinned.discard(vid)

    def is_pinned(self, vid: int) -> bool:
        with self._lock:
            return vid in self._pinned

    def group_finished(self, input_view_ids: Iterable[int]) -> None:
        """Record that one consumer of each given view has finished.

        Called by the engine once per completed view group with that
        group's input view ids; inputs whose remaining-consumer count
        hits zero are evicted unless pinned.  Evicted views are handed
        to ``on_evict`` (when configured) after the lock is released.
        """
        handoff: List[tuple] = []
        with self._lock:
            for vid in input_view_ids:
                if vid not in self._remaining:
                    continue
                self._remaining[vid] -= 1
                if (
                    self._remaining[vid] <= 0
                    and not self.retain_all
                    and vid not in self._pinned
                    and vid in self._data
                ):
                    data = self._data.pop(vid)
                    self.evicted.add(vid)
                    if self._on_evict is not None:
                        handoff.append((vid, data))
        for vid, data in handoff:
            self._on_evict(vid, data)

    def remaining_consumers(self, vid: int) -> Optional[int]:
        with self._lock:
            return self._remaining.get(vid)

    # -- merging (the IVM API) ---------------------------------------------

    def merge_parts(
        self,
        parts: List[Dict[int, ViewData]],
        *,
        retire_dead: bool = False,
    ) -> Dict[int, ViewData]:
        """Merge partial view outputs and store the results.

        This is the incremental-maintenance entry point: the IVM layer
        passes ``[current sink views, +delta views, -delta views]`` and
        the distributive-SUM re-aggregation of :func:`merge_partials`
        produces the maintained views, optionally retiring group keys
        whose support cancelled to zero.  Returns the merged views.
        """
        merged = merge_partials(parts)
        if retire_dead:
            merged = {
                vid: retire_dead_keys(view) for vid, view in merged.items()
            }
        with self._lock:
            self._data.update(merged)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ViewStore({len(self._data)} views, "
                f"{len(self._pinned)} pinned, "
                f"{len(self.evicted)} evicted)"
            )
