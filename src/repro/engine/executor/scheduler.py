"""Dependency-counting dataflow scheduling of the view-group DAG.

The Parallelization layer (paper §1.2) used to run the group DAG in
*levels*: every group of level k waited for all of level k-1, even
groups whose actual inputs finished long before.  The
:class:`DataflowScheduler` replaces those barriers with dependency
counting: each node carries its unmet-input count, a node is submitted
the instant the count reaches zero, and completions are drained as they
happen (``FIRST_COMPLETED``, not level joins).  On DAGs with uneven
branch depths — e.g. a long chain next to a wide fan-in — this keeps
workers busy where the level schedule would idle them.

Results are published through a single ``on_result`` callback invoked in
the scheduler's own thread, so downstream bookkeeping (view-store puts,
ref-count decrements) needs no locking of its own and a node only ever
starts after all of its inputs' results are fully published — the
ordering discipline that fixes the old engine's same-level read/write
race on the shared view dict.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional


class DataflowScheduler:
    """Run a DAG of tasks, launching each node when its inputs are done.

    ``n_workers`` bounds task parallelism: 1 executes serially in a
    deterministic topological order (dependency counting with a sorted
    ready list); >1 runs ready nodes on a thread pool.  The scheduler is
    agnostic to what a task does — backends decide how a node computes.
    """

    def __init__(self, n_workers: int = 1):
        self.n_workers = max(1, int(n_workers))

    def run(
        self,
        dependencies: Mapping[Hashable, Iterable[Hashable]],
        task: Callable[[Hashable], Any],
        on_result: Optional[Callable[[Hashable, Any], None]] = None,
    ) -> Dict[Hashable, Any]:
        """Execute every node; returns {node: task(node) result}.

        ``dependencies`` maps each node to the nodes it reads from.
        ``on_result`` (if given) is called exactly once per node, in the
        scheduler thread, after the node's task returns and before any
        dependent of the node can start.  Raises ``ValueError`` on
        unknown dependencies or cycles; a task exception cancels all
        not-yet-started nodes and propagates.
        """
        indegree, dependents = self._prepare(dependencies)
        if self.n_workers == 1:
            return self._run_serial(indegree, dependents, task, on_result)
        return self._run_parallel(indegree, dependents, task, on_result)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _prepare(dependencies):
        indegree: Dict[Hashable, int] = {}
        dependents: Dict[Hashable, List[Hashable]] = {}
        for node, deps in dependencies.items():
            deps = set(deps)
            deps.discard(node)  # self-loops would never fire
            indegree[node] = len(deps)
            dependents.setdefault(node, [])
        for node, deps in dependencies.items():
            for dep in set(deps) - {node}:
                if dep not in indegree:
                    raise ValueError(
                        f"node {node!r} depends on unknown node {dep!r}"
                    )
                dependents[dep].append(node)
        return indegree, dependents

    def _run_serial(self, indegree, dependents, task, on_result):
        ready = sorted(
            (n for n, count in indegree.items() if count == 0), key=repr
        )
        results: Dict[Hashable, Any] = {}
        while ready:
            node = ready.pop(0)
            result = task(node)
            results[node] = result
            if on_result is not None:
                on_result(node, result)
            unlocked = []
            for dependent in dependents[node]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    unlocked.append(dependent)
            ready.extend(sorted(unlocked, key=repr))
        if len(results) != len(indegree):
            raise ValueError(
                f"dependency cycle: {len(indegree) - len(results)} of "
                f"{len(indegree)} nodes unreachable"
            )
        return results

    def _run_parallel(self, indegree, dependents, task, on_result):
        results: Dict[Hashable, Any] = {}
        pending: Dict[Future, Hashable] = {}
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:

            def submit(node):
                pending[pool.submit(task, node)] = node

            for node in sorted(
                (n for n, count in indegree.items() if count == 0),
                key=repr,
            ):
                submit(node)
            try:
                while pending:
                    done, _ = wait(
                        set(pending), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        node = pending.pop(future)
                        result = future.result()  # re-raises task errors
                        results[node] = result
                        if on_result is not None:
                            on_result(node, result)
                        for dependent in dependents[node]:
                            indegree[dependent] -= 1
                            if indegree[dependent] == 0:
                                submit(dependent)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
        if len(results) != len(indegree):
            raise ValueError(
                f"dependency cycle: {len(indegree) - len(results)} of "
                f"{len(indegree)} nodes unreachable"
            )
        return results
