"""The cross-workload view cache: content-addressed materialized views.

A :class:`ViewCache` maps content digests
(:mod:`~repro.engine.viewcache.signature`) to materialized
:class:`~repro.engine.interpreter.ViewData` under a byte budget with
LRU eviction.  Because keys are content addresses, the cache is safe to
share across batches, models, engines, and sessions: a hit is *by
construction* the same data the engine would recompute.

Consistency under updates is event-driven: the incremental-maintenance
layer forwards every applied :class:`~repro.data.database.DeltaBatch`
to :meth:`ViewCache.on_delta`, which touches exactly the entries whose
relation footprint contains the updated relation, bottom-up through
the reference DAG —

* entries *at* the updated relation are **delta-patched**: the cached
  group plan is re-evaluated over only the delta partition and merged
  through :meth:`ViewStore.merge_parts` (retractions as negated
  payload; a retraction on a view without support counts falls back to
  re-running the group over the full updated relation);
* *interior* entries above them are **telescoped**: their group plan
  is re-run over its (unchanged) node relation with the already
  re-keyed child views resolved from the cache;
* entries that cannot be repaired — no recipe (revived from disk),
  stale epoch, a child view missing from both cache tiers — are
  **evicted**.

Every repaired entry is re-keyed under the digest the next run's
signatures will compute (updated relation fingerprint at the changed
node, substituted child digests above it), so patches replace
evictions throughout the DAG.  Entries whose footprint does not
contain the updated relation keep their digests — their content
addresses still match — and survive.

Admission is epoch-gated: each delta advances a per-relation
fingerprint watermark, and a :meth:`ViewCache.put` offered from an
older database version (a reader pinned to a pre-delta epoch snapshot
finishing after the commit) is rejected — counted as a
``stale_reject`` — rather than admitted only to be evicted, unpatchable,
by the next delta.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ...data.database import AppliedDelta
from ...data.relation import Relation
from ..interpreter import ViewData, execute_plan
from ..plan import GroupPlan
from .signature import (
    ViewSignature,
    rekey_structure,
    relation_fingerprint,
    structure_digest,
)

#: default cache budget: 64 MiB of view payload
DEFAULT_BUDGET_BYTES = 64 << 20


def view_nbytes(data: ViewData) -> int:
    """Approximate in-memory size of one materialized view."""
    total = sum(col.nbytes for col in data.key_cols)
    total += sum(col.nbytes for col in data.agg_cols)
    if data.support is not None:
        total += data.support.nbytes
    return int(total)


@dataclass
class PatchRecipe:
    """How to repair a cached view in place after a delta.

    ``plan`` is the multi-output group plan that produced the view;
    ``dyn`` is the dynamic-function table it was executed with.
    ``structure`` is the structural half of the view's digest (child
    views embedded by digest), used to detect stale entries and to
    re-key the repaired entry; ``input_digests`` maps the plan's input
    view ids to the digests their data was read under, so re-execution
    can resolve the same (or re-keyed) children from the cache.
    """

    plan: GroupPlan
    view_id: int
    dyn: tuple
    structure: tuple
    input_digests: Tuple[Tuple[int, str], ...] = ()


#: back-compat alias (recipes once existed only for leaf groups)
LeafRecipe = PatchRecipe


@dataclass
class CacheStats:
    """Counters over the life of one :class:`ViewCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0  # LRU byte-budget evictions
    invalidations: int = 0  # delta-driven evictions
    patches: int = 0  # delta-repaired (and re-keyed) entries
    rejects: int = 0  # entries larger than the whole budget
    stale_rejects: int = 0  # admissions from a pre-delta database version
    warm_hits: int = 0  # hits served from the persistent second tier
    spills: int = 0  # entries written through to the second tier

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "patches": self.patches,
            "rejects": self.rejects,
            "stale_rejects": self.stale_rejects,
            "warm_hits": self.warm_hits,
            "spills": self.spills,
        }


@dataclass
class _Entry:
    sig: ViewSignature
    data: ViewData
    nbytes: int
    recipe: Optional[PatchRecipe] = None
    pinned: bool = False


@dataclass
class CacheRunReport:
    """Per-view cache outcome of one engine run.

    ``events`` maps view id to ``"hit"``, ``"miss"`` or
    ``"uncacheable"``; ``names`` carries the views' display names for
    reports.
    """

    events: Dict[int, str] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)
    skipped_groups: int = 0
    total_groups: int = 0

    @property
    def n_hits(self) -> int:
        return sum(1 for e in self.events.values() if e == "hit")

    @property
    def n_misses(self) -> int:
        return sum(1 for e in self.events.values() if e == "miss")

    def lines(self) -> List[str]:
        """One ``status  view-name`` line per view, hits first."""
        order = {"hit": 0, "miss": 1, "uncacheable": 2}
        return [
            f"  {event:11} {self.names.get(vid, f'view {vid}')}"
            for vid, event in sorted(
                self.events.items(),
                key=lambda kv: (order[kv[1]], kv[0]),
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheRunReport({self.n_hits} hits, {self.n_misses} misses, "
            f"{self.skipped_groups}/{self.total_groups} groups skipped)"
        )


class ViewCache:
    """A byte-budget LRU cache of materialized views, by content digest.

    Thread-safe: engine schedulers publish evicted interior views from
    worker completion threads while the engine thread probes for hits.

    ``store`` (optional) attaches a persistent second tier — any object
    with ``save(sig, data) -> bool`` and ``load(digest) ->
    Optional[(sig, data)]``, e.g. a
    :class:`~repro.storage.cachestore.CacheStore`.  Cacheable entries
    are written through on :meth:`put`, and an in-memory miss probes
    the store before reporting a miss: a disk hit is admitted back into
    memory and counted as a *warm hit*.  Entries revived from disk
    carry no patch recipe, so a later delta evicts rather than repairs
    them — always safe, merely less incremental.
    """

    def __init__(
        self, budget_bytes: int = DEFAULT_BUDGET_BYTES, *, store=None
    ):
        if budget_bytes <= 0:
            raise ValueError(
                f"cache budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._stats = CacheStats()
        self._store = store
        # relation name -> fingerprint of the latest delta'd database;
        # admissions from runs pinned to older versions are rejected
        # (see :meth:`put`).  Empty until the first delta: before any
        # update there is only one database version to admit from.
        self._current_fp: Dict[str, str] = {}

    # -- introspection -----------------------------------------------------

    def stats(self) -> CacheStats:
        """One snapshot-consistent copy of the counters.

        Taken atomically under the cache lock, so a reader never
        observes (say) ``hits`` from before a concurrent update and
        ``misses`` from after it — which is what ``GET /stats`` on the
        analytics service reports.  The returned object is a copy;
        mutating it does not touch the cache.
        """
        with self._lock:
            return replace(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def digests(self) -> List[str]:
        """All cached digests, least recently used first."""
        with self._lock:
            return list(self._entries)

    def entries_containing(self, relation: str) -> List[str]:
        """Digests of entries whose relation footprint includes ``relation``."""
        with self._lock:
            return [
                digest
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            ]

    # -- lookup / insert ---------------------------------------------------

    def get(self, digest: str) -> Optional[ViewData]:
        """The cached view for a digest, or None (counts hit/miss).

        An in-memory miss probes the persistent second tier when one is
        attached; a disk hit is admitted back into memory and counted
        as both a hit and a ``warm_hit``.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self._stats.hits += 1
                return entry.data
            if self._store is None:
                self._stats.misses += 1
                return None
        loaded = self._store.load(digest)
        if loaded is None:
            with self._lock:
                self._stats.misses += 1
            return None
        sig, data = loaded
        self._admit(sig, data, recipe=None)
        with self._lock:
            self._stats.hits += 1
            self._stats.warm_hits += 1
        return data

    def peek(self, digest: str) -> Optional[ViewData]:
        """Like :meth:`get` but without touching LRU order or stats."""
        with self._lock:
            entry = self._entries.get(digest)
            return None if entry is None else entry.data

    def put(
        self,
        sig: ViewSignature,
        data: ViewData,
        recipe: Optional[PatchRecipe] = None,
        *,
        database=None,
    ) -> bool:
        """Admit one materialized view; returns whether it was cached.

        Uncacheable signatures and views larger than the whole budget
        are rejected; admitting evicts least-recently-used unpinned
        entries until the budget holds.  With a second tier attached,
        cacheable entries are also written through to disk — including
        budget-rejected ones, since the disk tier is typically larger
        than memory and a spilled entry still serves warm restarts.

        ``database`` (optional) names the database version the view was
        computed from.  When given, the admission is rejected — counted
        as a ``stale_reject`` — if any relation in the view's footprint
        has since been delta'd past that version: a reader pinned to an
        older epoch must not publish entries the next delta could only
        evict.  Callers that guarantee currency themselves (the repair
        path) omit it.
        """
        if not sig.cacheable:
            return False
        if database is not None and self._stale_admission(sig, database):
            with self._lock:
                self._stats.stale_rejects += 1
            return False
        admitted = self._admit(sig, data, recipe=recipe)
        if self._store is not None and self._store.save(sig, data):
            with self._lock:
                self._stats.spills += 1
        return admitted

    def _stale_admission(self, sig: ViewSignature, database) -> bool:
        """Whether an offered entry predates the last applied delta.

        Exact, not heuristic: the entry is stale iff some relation in
        its footprint carries a different fingerprint in the offering
        run's database than in the latest delta'd database.  Interior
        views are covered through their footprint — a stale child cone
        stales the parent even when the parent's own node relation is
        unchanged.  Fingerprints are memoized per relation object, so
        the common all-current case costs dictionary lookups only.
        """
        with self._lock:
            if not self._current_fp:
                return False
            current = {
                name: self._current_fp[name]
                for name in sig.relations
                if name in self._current_fp
            }
        for name, fingerprint in current.items():
            if relation_fingerprint(database.relation(name)) != fingerprint:
                return True
        return False

    def _admit(
        self,
        sig: ViewSignature,
        data: ViewData,
        recipe: Optional[PatchRecipe] = None,
    ) -> bool:
        """Insert into the in-memory tier only (no write-through)."""
        nbytes = view_nbytes(data)
        with self._lock:
            if nbytes > self.budget_bytes:
                self._stats.rejects += 1
                return False
            old = self._entries.pop(sig.digest, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[sig.digest] = _Entry(
                sig=sig,
                data=data,
                nbytes=nbytes,
                recipe=recipe,
                pinned=False if old is None else old.pinned,
            )
            self._bytes += nbytes
            self._stats.puts += 1
            self._shrink_locked()
        return True

    def _shrink_locked(self) -> None:
        while self._bytes > self.budget_bytes:
            victim = next(
                (
                    digest
                    for digest, entry in self._entries.items()
                    if not entry.pinned
                ),
                None,
            )
            if victim is None:  # everything pinned: allow overflow
                return
            self._bytes -= self._entries.pop(victim).nbytes
            self._stats.evictions += 1

    # -- pinning -----------------------------------------------------------

    def pin(self, digest: str) -> None:
        """Exempt an entry from LRU eviction (idempotent)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.pinned = True

    def unpin(self, digest: str) -> None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.pinned = False
            self._shrink_locked()

    def is_pinned(self, digest: str) -> bool:
        with self._lock:
            entry = self._entries.get(digest)
            return entry is not None and entry.pinned

    # -- invalidation ------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def invalidate(self, relation: str) -> int:
        """Drop every entry whose footprint contains ``relation``."""
        with self._lock:
            victims = [
                digest
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            ]
            for digest in victims:
                self._bytes -= self._entries.pop(digest).nbytes
            self._stats.invalidations += len(victims)
        return len(victims)

    def on_delta(self, applied: AppliedDelta) -> Dict[str, str]:
        """Reconcile the cache with one applied delta.

        Affected entries (footprint contains the updated relation) are
        repaired bottom-up through the reference DAG: entries at the
        updated relation are delta-patched (or recomputed over the full
        updated relation when a retraction cannot be retired exactly),
        interior entries above them re-run their group plan with the
        already re-keyed children, and every repaired entry is re-keyed
        under its new content digest so the next run's signatures find
        it.  Entries that cannot be repaired — no recipe, stale epoch,
        a child view missing from the cache — are evicted.

        Returns {old digest: "patched" | "evicted"} for the affected
        entries; untouched entries (footprint disjoint from the updated
        relation) do not appear.
        """
        relation = applied.relation
        new_fp = relation_fingerprint(applied.database.relation(relation))
        # patching is only sound for entries that hold the *pre-delta*
        # version of the relation's data: an entry admitted by a reader
        # pinned to an older epoch (its digest hangs off an older
        # fingerprint) must be evicted, not patched forward past the
        # deltas it never saw
        old_fp = (
            None
            if applied.previous is None
            else relation_fingerprint(applied.previous.relation(relation))
        )
        # advance the admission watermark FIRST: from here on, puts by
        # readers still pinned to the pre-delta database are rejected
        # (stale_rejects) instead of entering only to be evicted by the
        # next delta — see :meth:`put`
        fingerprints = {
            rel.name: relation_fingerprint(rel) for rel in applied.database
        }
        with self._lock:
            self._current_fp.update(fingerprints)
            pending: Dict[str, _Entry] = {
                digest: entry
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            }
        outcome: Dict[str, str] = {}
        rekey: Dict[str, str] = {}  # old digest -> repaired digest
        executed: Dict[tuple, Dict[int, ViewData]] = {}  # group-run memo
        progress = True
        while pending and progress:
            progress = False
            for digest in list(pending):
                status = self._repair(
                    digest,
                    pending[digest],
                    applied,
                    old_fp,
                    new_fp,
                    rekey,
                    pending,
                    executed,
                )
                if status is None:  # a child is still pending: defer
                    continue
                del pending[digest]
                progress = True
                outcome[digest] = status
        for digest in pending:  # reference cycles cannot happen; be safe
            self._evict_entry(digest)
            outcome[digest] = "evicted"
        return outcome

    def _evict_entry(self, digest: str, *, count: bool = True) -> bool:
        """Drop one entry by digest; returns whether it was pinned."""
        with self._lock:
            victim = self._entries.pop(digest, None)
            if victim is None:
                return False
            self._bytes -= victim.nbytes
            if count:
                self._stats.invalidations += 1
            return victim.pinned

    def _resolve_input(self, digest: str) -> Optional[ViewData]:
        """A repair input by digest: in-memory first, then the disk tier."""
        data = self.peek(digest)
        if data is None and self._store is not None:
            loaded = self._store.load(digest)
            if loaded is not None:
                data = loaded[1]
        return data

    def _repair(
        self,
        digest: str,
        entry: _Entry,
        applied: AppliedDelta,
        old_fp: Optional[str],
        new_fp: str,
        rekey: Dict[str, str],
        pending: Dict[str, _Entry],
        executed: Dict[tuple, Dict[int, ViewData]],
    ) -> Optional[str]:
        """Repair one affected entry in place.

        Returns ``"patched"`` or ``"evicted"``, or None when the entry
        must wait for a still-pending child to be re-keyed first.
        """
        recipe = entry.recipe
        if recipe is None or recipe.structure is None:
            self._evict_entry(digest)
            return "evicted"
        source = recipe.structure[0]
        node_changed = source == applied.relation
        if node_changed and old_fp is None:
            self._evict_entry(digest)
            return "evicted"
        node_old_fp = (
            old_fp
            if node_changed
            else relation_fingerprint(applied.database.relation(source))
        )
        if digest != structure_digest(recipe.structure, node_old_fp):
            # stale: admitted against an older database version; its
            # children resolve elsewhere (or nowhere), and repairing it
            # would publish data under an address no current run asks
            # for.  Content addressing makes eviction always correct.
            self._evict_entry(digest)
            return "evicted"
        incoming: Dict[int, ViewData] = {}
        new_inputs: List[Tuple[int, str]] = []
        inputs_changed = False
        for vid, child in recipe.input_digests:
            if child in pending:
                return None  # repair children first
            current = rekey.get(child)
            if current is None:
                current = child
            else:
                inputs_changed = True
            data = self._resolve_input(current)
            if data is None:  # child evicted (delta or LRU): give up
                self._evict_entry(digest)
                return "evicted"
            incoming[vid] = data
            new_inputs.append((vid, current))
        input_key = tuple(new_inputs)
        data = None
        if node_changed and not inputs_changed:
            data = self._delta_merge(
                entry, recipe, applied, incoming, executed, input_key
            )
        if data is None:
            # telescope: re-run the whole group plan over the full
            # (updated) node relation with the re-keyed child views
            data = self._run_plan(
                recipe,
                applied.database.relation(source),
                incoming,
                executed,
                "full",
                input_key,
            )[recipe.view_id]
        new_structure = rekey_structure(recipe.structure, rekey)
        new_digest = structure_digest(
            new_structure, new_fp if node_changed else node_old_fp
        )
        new_sig = ViewSignature(
            digest=new_digest,
            relations=entry.sig.relations,
            cacheable=True,
            structure=new_structure,
        )
        new_recipe = PatchRecipe(
            plan=recipe.plan,
            view_id=recipe.view_id,
            dyn=recipe.dyn,
            structure=new_structure,
            input_digests=input_key,
        )
        pinned = self._evict_entry(digest, count=False)
        if not self.put(new_sig, data, recipe=new_recipe):
            # e.g. the repaired view outgrew the budget
            with self._lock:
                self._stats.invalidations += 1
            return "evicted"
        with self._lock:
            self._stats.patches += 1
        if pinned:
            self.pin(new_digest)
        rekey[digest] = new_digest
        return "patched"

    def _delta_merge(
        self,
        entry: _Entry,
        recipe: PatchRecipe,
        applied: AppliedDelta,
        incoming: Dict[int, ViewData],
        executed: Dict[tuple, Dict[int, ViewData]],
        input_key: tuple,
    ) -> Optional[ViewData]:
        """Delta-partition merge for an entry at the updated relation.

        Returns None when the merge cannot be exact — a retraction on a
        view without per-key support counts would leave zero-valued
        group keys a from-scratch run never emits — so the caller falls
        back to re-running the group over the full updated relation.
        """
        has_deletes = (
            applied.deleted is not None and applied.deleted.n_rows > 0
        )
        # scalar views (no group-by) subtract exactly without support;
        # keyed views need support counts to retire dead keys
        if has_deletes and entry.data.support is None and entry.data.group_by:
            return None
        parts: List[Dict[int, ViewData]] = [{recipe.view_id: entry.data}]
        if applied.inserted is not None and applied.inserted.n_rows:
            produced = self._run_plan(
                recipe, applied.inserted, incoming, executed,
                "insert", input_key,
            )
            parts.append({recipe.view_id: produced[recipe.view_id]})
        if has_deletes:
            produced = self._run_plan(
                recipe, applied.deleted, incoming, executed,
                "delete", input_key,
            )
            parts.append(
                {recipe.view_id: produced[recipe.view_id].negated()}
            )
        if len(parts) == 1:  # empty delta: data unchanged
            return entry.data
        # reuse the executor's merge machinery (ViewStore.merge_parts):
        # distributive-SUM re-aggregation + support-count key retirement
        from ..executor.store import ViewStore

        scratch = ViewStore()
        merged = scratch.merge_parts(
            parts, retire_dead=entry.data.support is not None
        )
        return merged[recipe.view_id]

    def _run_plan(
        self,
        recipe: PatchRecipe,
        relation: Relation,
        incoming: Dict[int, ViewData],
        executed: Dict[tuple, Dict[int, ViewData]],
        kind: str,
        input_key: tuple,
    ) -> Dict[int, ViewData]:
        """Run a recipe's group plan once per reconciliation pass.

        Sibling views of one multi-output group share a plan object and
        dyn binding, so the memo collapses their repairs into a single
        execution per delta.
        """
        key = (
            id(recipe.plan),
            tuple(id(f) for f in recipe.dyn),
            kind,
            input_key,
        )
        produced = executed.get(key)
        if produced is None:
            produced = execute_plan(
                recipe.plan, relation, incoming, recipe.dyn
            )
            executed[key] = produced
        return produced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ViewCache({len(self._entries)} views, "
                f"{self._bytes / (1 << 20):.1f}/"
                f"{self.budget_bytes / (1 << 20):.1f} MiB, "
                f"hits={self._stats.hits} misses={self._stats.misses})"
            )
