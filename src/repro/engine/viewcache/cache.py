"""The cross-workload view cache: content-addressed materialized views.

A :class:`ViewCache` maps content digests
(:mod:`~repro.engine.viewcache.signature`) to materialized
:class:`~repro.engine.interpreter.ViewData` under a byte budget with
LRU eviction.  Because keys are content addresses, the cache is safe to
share across batches, models, engines, and sessions: a hit is *by
construction* the same data the engine would recompute.

Consistency under updates is event-driven: the incremental-maintenance
layer forwards every applied :class:`~repro.data.database.DeltaBatch`
to :meth:`ViewCache.on_delta`, which touches exactly the entries whose
relation footprint contains the updated relation —

* *leaf* entries (views with no incoming views) are **delta-patched**:
  the cached group plan is re-evaluated over only the delta partition
  and merged through :meth:`ViewStore.merge_parts` (retractions as
  negated payload), then re-keyed under the updated relation's
  fingerprint so the next run's signatures find them;
* all other affected entries are **evicted** (their digests hang off
  child digests recursively; patching them would be re-execution by
  another name).

Entries whose footprint does not contain the updated relation keep
their digests — their content addresses still match — and survive.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ...data.database import AppliedDelta
from ..interpreter import ViewData, execute_plan, execute_plan_delta
from ..plan import GroupPlan
from .signature import ViewSignature, leaf_digest, relation_fingerprint

#: default cache budget: 64 MiB of view payload
DEFAULT_BUDGET_BYTES = 64 << 20


def view_nbytes(data: ViewData) -> int:
    """Approximate in-memory size of one materialized view."""
    total = sum(col.nbytes for col in data.key_cols)
    total += sum(col.nbytes for col in data.agg_cols)
    if data.support is not None:
        total += data.support.nbytes
    return int(total)


@dataclass
class LeafRecipe:
    """How to delta-patch a cached leaf view.

    ``plan`` is the multi-output group plan that produced the view (it
    has no input views, so it can be re-run over any partition of its
    node relation); ``dyn`` is the dynamic-function table the plan was
    executed with.  ``leaf_structure`` is the structural half of the
    view's digest, used to re-key the patched entry against the updated
    relation fingerprint.
    """

    plan: GroupPlan
    view_id: int
    dyn: tuple
    leaf_structure: tuple


@dataclass
class CacheStats:
    """Counters over the life of one :class:`ViewCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0  # LRU byte-budget evictions
    invalidations: int = 0  # delta-driven evictions
    patches: int = 0  # delta-patched (and re-keyed) leaf entries
    rejects: int = 0  # entries larger than the whole budget
    warm_hits: int = 0  # hits served from the persistent second tier
    spills: int = 0  # entries written through to the second tier

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "patches": self.patches,
            "rejects": self.rejects,
            "warm_hits": self.warm_hits,
            "spills": self.spills,
        }


@dataclass
class _Entry:
    sig: ViewSignature
    data: ViewData
    nbytes: int
    recipe: Optional[LeafRecipe] = None
    pinned: bool = False


@dataclass
class CacheRunReport:
    """Per-view cache outcome of one engine run.

    ``events`` maps view id to ``"hit"``, ``"miss"`` or
    ``"uncacheable"``; ``names`` carries the views' display names for
    reports.
    """

    events: Dict[int, str] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)
    skipped_groups: int = 0
    total_groups: int = 0

    @property
    def n_hits(self) -> int:
        return sum(1 for e in self.events.values() if e == "hit")

    @property
    def n_misses(self) -> int:
        return sum(1 for e in self.events.values() if e == "miss")

    def lines(self) -> List[str]:
        """One ``status  view-name`` line per view, hits first."""
        order = {"hit": 0, "miss": 1, "uncacheable": 2}
        return [
            f"  {event:11} {self.names.get(vid, f'view {vid}')}"
            for vid, event in sorted(
                self.events.items(),
                key=lambda kv: (order[kv[1]], kv[0]),
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheRunReport({self.n_hits} hits, {self.n_misses} misses, "
            f"{self.skipped_groups}/{self.total_groups} groups skipped)"
        )


class ViewCache:
    """A byte-budget LRU cache of materialized views, by content digest.

    Thread-safe: engine schedulers publish evicted interior views from
    worker completion threads while the engine thread probes for hits.

    ``store`` (optional) attaches a persistent second tier — any object
    with ``save(sig, data) -> bool`` and ``load(digest) ->
    Optional[(sig, data)]``, e.g. a
    :class:`~repro.storage.cachestore.CacheStore`.  Cacheable entries
    are written through on :meth:`put`, and an in-memory miss probes
    the store before reporting a miss: a disk hit is admitted back into
    memory and counted as a *warm hit*.  Entries revived from disk
    carry no leaf recipe, so a later delta evicts rather than patches
    them — always safe, merely less incremental.
    """

    def __init__(
        self, budget_bytes: int = DEFAULT_BUDGET_BYTES, *, store=None
    ):
        if budget_bytes <= 0:
            raise ValueError(
                f"cache budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._stats = CacheStats()
        self._store = store

    # -- introspection -----------------------------------------------------

    def stats(self) -> CacheStats:
        """One snapshot-consistent copy of the counters.

        Taken atomically under the cache lock, so a reader never
        observes (say) ``hits`` from before a concurrent update and
        ``misses`` from after it — which is what ``GET /stats`` on the
        analytics service reports.  The returned object is a copy;
        mutating it does not touch the cache.
        """
        with self._lock:
            return replace(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def digests(self) -> List[str]:
        """All cached digests, least recently used first."""
        with self._lock:
            return list(self._entries)

    def entries_containing(self, relation: str) -> List[str]:
        """Digests of entries whose relation footprint includes ``relation``."""
        with self._lock:
            return [
                digest
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            ]

    # -- lookup / insert ---------------------------------------------------

    def get(self, digest: str) -> Optional[ViewData]:
        """The cached view for a digest, or None (counts hit/miss).

        An in-memory miss probes the persistent second tier when one is
        attached; a disk hit is admitted back into memory and counted
        as both a hit and a ``warm_hit``.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self._stats.hits += 1
                return entry.data
            if self._store is None:
                self._stats.misses += 1
                return None
        loaded = self._store.load(digest)
        if loaded is None:
            with self._lock:
                self._stats.misses += 1
            return None
        sig, data = loaded
        self._admit(sig, data, recipe=None)
        with self._lock:
            self._stats.hits += 1
            self._stats.warm_hits += 1
        return data

    def peek(self, digest: str) -> Optional[ViewData]:
        """Like :meth:`get` but without touching LRU order or stats."""
        with self._lock:
            entry = self._entries.get(digest)
            return None if entry is None else entry.data

    def put(
        self,
        sig: ViewSignature,
        data: ViewData,
        recipe: Optional[LeafRecipe] = None,
    ) -> bool:
        """Admit one materialized view; returns whether it was cached.

        Uncacheable signatures and views larger than the whole budget
        are rejected; admitting evicts least-recently-used unpinned
        entries until the budget holds.  With a second tier attached,
        cacheable entries are also written through to disk — including
        budget-rejected ones, since the disk tier is typically larger
        than memory and a spilled entry still serves warm restarts.
        """
        if not sig.cacheable:
            return False
        admitted = self._admit(sig, data, recipe=recipe)
        if self._store is not None and self._store.save(sig, data):
            with self._lock:
                self._stats.spills += 1
        return admitted

    def _admit(
        self,
        sig: ViewSignature,
        data: ViewData,
        recipe: Optional[LeafRecipe] = None,
    ) -> bool:
        """Insert into the in-memory tier only (no write-through)."""
        nbytes = view_nbytes(data)
        with self._lock:
            if nbytes > self.budget_bytes:
                self._stats.rejects += 1
                return False
            old = self._entries.pop(sig.digest, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[sig.digest] = _Entry(
                sig=sig,
                data=data,
                nbytes=nbytes,
                recipe=recipe,
                pinned=False if old is None else old.pinned,
            )
            self._bytes += nbytes
            self._stats.puts += 1
            self._shrink_locked()
        return True

    def _shrink_locked(self) -> None:
        while self._bytes > self.budget_bytes:
            victim = next(
                (
                    digest
                    for digest, entry in self._entries.items()
                    if not entry.pinned
                ),
                None,
            )
            if victim is None:  # everything pinned: allow overflow
                return
            self._bytes -= self._entries.pop(victim).nbytes
            self._stats.evictions += 1

    # -- pinning -----------------------------------------------------------

    def pin(self, digest: str) -> None:
        """Exempt an entry from LRU eviction (idempotent)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.pinned = True

    def unpin(self, digest: str) -> None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.pinned = False
            self._shrink_locked()

    def is_pinned(self, digest: str) -> bool:
        with self._lock:
            entry = self._entries.get(digest)
            return entry is not None and entry.pinned

    # -- invalidation ------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def invalidate(self, relation: str) -> int:
        """Drop every entry whose footprint contains ``relation``."""
        with self._lock:
            victims = [
                digest
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            ]
            for digest in victims:
                self._bytes -= self._entries.pop(digest).nbytes
            self._stats.invalidations += len(victims)
        return len(victims)

    def on_delta(self, applied: AppliedDelta) -> Dict[str, str]:
        """Reconcile the cache with one applied delta.

        Returns {old digest: "patched" | "evicted"} for the affected
        entries; untouched entries (footprint disjoint from the updated
        relation) do not appear.
        """
        relation = applied.relation
        new_fp = relation_fingerprint(applied.database.relation(relation))
        # patching is only sound for entries that hold the *pre-delta*
        # version of the relation's data: an entry admitted by a reader
        # pinned to an older epoch (its digest hangs off an older
        # fingerprint) must be evicted, not patched forward past the
        # deltas it never saw
        old_fp = (
            None
            if applied.previous is None
            else relation_fingerprint(applied.previous.relation(relation))
        )
        with self._lock:
            affected = [
                (digest, entry)
                for digest, entry in self._entries.items()
                if relation in entry.sig.relations
            ]
        outcome: Dict[str, str] = {}
        for digest, entry in affected:
            current = (
                old_fp is not None
                and entry.recipe is not None
                and digest
                == leaf_digest(entry.recipe.leaf_structure, old_fp)
            )
            patched = self._patch(entry, applied) if current else None
            with self._lock:
                victim = self._entries.pop(digest, None)
                if victim is not None:
                    self._bytes -= victim.nbytes
            if patched is None:
                with self._lock:
                    self._stats.invalidations += 1
                outcome[digest] = "evicted"
                continue
            new_sig = ViewSignature(
                digest=leaf_digest(entry.recipe.leaf_structure, new_fp),
                relations=entry.sig.relations,
                cacheable=True,
                leaf_structure=entry.recipe.leaf_structure,
            )
            admitted = self.put(new_sig, patched, recipe=entry.recipe)
            if not admitted:  # e.g. the patched view outgrew the budget
                with self._lock:
                    self._stats.invalidations += 1
                outcome[digest] = "evicted"
                continue
            with self._lock:
                self._stats.patches += 1
            if victim is not None and victim.pinned:
                self.pin(new_sig.digest)
            outcome[digest] = "patched"
        return outcome

    def _patch(
        self, entry: _Entry, applied: AppliedDelta
    ) -> Optional[ViewData]:
        """Delta-patched data for a leaf entry, or None (must evict).

        Patching a retraction without per-key support counts would leave
        zero-valued group keys a from-scratch run never emits, so such
        entries are evicted instead.
        """
        recipe = entry.recipe
        if recipe is None:
            return None
        has_deletes = (
            applied.deleted is not None and applied.deleted.n_rows > 0
        )
        if has_deletes and entry.data.support is None:
            return None
        parts: List[Dict[int, ViewData]] = [{recipe.view_id: entry.data}]
        if applied.inserted is not None and applied.inserted.n_rows:
            produced = execute_plan(
                recipe.plan, applied.inserted, {}, recipe.dyn
            )
            parts.append({recipe.view_id: produced[recipe.view_id]})
        if has_deletes:
            produced = execute_plan_delta(
                recipe.plan, applied.deleted, {}, recipe.dyn, sign=-1
            )
            parts.append({recipe.view_id: produced[recipe.view_id]})
        if len(parts) == 1:  # empty delta: data unchanged
            return entry.data
        # reuse the executor's merge machinery (ViewStore.merge_parts):
        # distributive-SUM re-aggregation + support-count key retirement
        from ..executor.store import ViewStore

        scratch = ViewStore()
        merged = scratch.merge_parts(
            parts, retire_dead=entry.data.support is not None
        )
        return merged[recipe.view_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ViewCache({len(self._entries)} views, "
                f"{self._bytes / (1 << 20):.1f}/"
                f"{self.budget_bytes / (1 << 20):.1f} MiB, "
                f"hits={self._stats.hits} misses={self._stats.misses})"
            )
