"""Cross-workload view cache & fusion: shareable materialized views.

Three pieces, layered on the executor subsystem:

* :mod:`~repro.engine.viewcache.signature` — canonical *content
  signatures* for views (relation fingerprints + structure), so two
  independently planned batches agree on structurally equal views;
* :mod:`~repro.engine.viewcache.cache` — :class:`ViewCache`, a
  byte-budget LRU of materialized views keyed by content digest, with
  hit/miss/eviction stats, pinning, and delta-driven repair: affected
  entries are patched bottom-up and re-keyed, with eviction only as
  the fallback;
* :mod:`~repro.engine.viewcache.fusion` — :class:`WorkloadSession`,
  which fuses several query batches into one deduplicated DAG, executes
  shared views once, and fans results back out per workload.
"""

from .cache import (
    DEFAULT_BUDGET_BYTES,
    CacheRunReport,
    CacheStats,
    LeafRecipe,
    PatchRecipe,
    ViewCache,
    view_nbytes,
)
from .signature import (
    ViewSignature,
    database_fingerprint,
    relation_fingerprint,
    view_signatures,
)

__all__ = [
    "CacheRunReport",
    "CacheStats",
    "DEFAULT_BUDGET_BYTES",
    "FusionReport",
    "LeafRecipe",
    "PatchRecipe",
    "SessionResult",
    "ViewCache",
    "ViewSignature",
    "WorkloadSession",
    "database_fingerprint",
    "relation_fingerprint",
    "view_nbytes",
    "view_signatures",
]


def __getattr__(name):
    # fusion imports the engine facade, which imports this package; the
    # deferred import breaks the cycle without an import-order landmine
    if name in ("WorkloadSession", "SessionResult", "FusionReport"):
        from . import fusion

        return getattr(fusion, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
