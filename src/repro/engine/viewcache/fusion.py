"""Cross-workload fusion: execute several query batches as one DAG.

LMFAO's sharing (paper §3.4) stops at the boundary of one
:class:`QueryBatch`: covar, linear-regression, and decision-tree
batches over the same dataset each rebuild near-identical view DAGs
from scratch.  A :class:`WorkloadSession` removes that boundary by
*fusing* the batches — every query is renamed ``workload::query`` and
the union is planned as one mega-batch, so the Merge Views layer's own
memo/bucketing deduplicates structurally equal views **across**
workloads.  Shared views execute once on whatever backend the engine
uses; results fan back out per workload with the original query names.

A :class:`~repro.engine.viewcache.cache.ViewCache` attached to the
session extends the sharing across *runs*: the fused plan's views are
content-addressed, so a warm re-run (or a later session over the same
data) serves them from cache instead of recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...data.database import Database
from ...jointree.join_tree import JoinTree
from ...query.query import Query, QueryBatch
from ..engine import LMFAO, BatchResult
from .cache import ViewCache

#: joins workload and query names in the fused batch
WORKLOAD_SEPARATOR = "::"


@dataclass
class FusionReport:
    """How much the fused plan shares versus independent plans."""

    n_workloads: int
    n_queries: int
    views_fused: int
    views_independent: int
    groups_fused: int
    groups_independent: int

    @property
    def views_saved(self) -> int:
        return self.views_independent - self.views_fused

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusionReport({self.n_workloads} workloads, "
            f"{self.n_queries} queries: {self.views_fused} fused views vs "
            f"{self.views_independent} independent, "
            f"{self.views_saved} saved)"
        )


class SessionResult(dict):
    """Workload name -> :class:`BatchResult`, plus session-level timing."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan_seconds: float = 0.0
        self.execute_seconds: float = 0.0
        self.fused: bool = False
        self.cache_report = None


class WorkloadSession:
    """Several query batches sharing one engine, one DAG, one cache.

    Usage::

        session = WorkloadSession(db, tree, cache=ViewCache(64 << 20))
        session.add_workload("covar", covar_batch)
        session.add_workload("linreg", linreg_batch)
        session.add_workload("trees", tree_node_batch)
        results = session.run()          # fused: shared views run once
        covar_results = results["covar"]  # plain BatchResult per workload

    ``run_independent()`` executes each batch separately through the
    same engine (and cache, if any) — the baseline fusion is measured
    against, and a way to share views across workloads purely through
    the content-addressed cache.
    """

    def __init__(
        self,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        *,
        cache: Optional[ViewCache] = None,
        engine: Optional[LMFAO] = None,
        **engine_kwargs,
    ):
        if engine is not None:
            if cache is not None and engine.view_cache is not cache:
                raise ValueError(
                    "pass either an engine or a cache, not both; attach "
                    "the cache via LMFAO(view_cache=...) instead"
                )
            self.engine = engine
        else:
            self.engine = LMFAO(
                database, join_tree, view_cache=cache, **engine_kwargs
            )
        self._workloads: Dict[str, QueryBatch] = {}
        self._fused: Optional[QueryBatch] = None

    @property
    def cache(self) -> Optional[ViewCache]:
        return self.engine.view_cache

    @property
    def workload_names(self) -> List[str]:
        return list(self._workloads)

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "WorkloadSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- workload registry -------------------------------------------------

    def add_workload(self, name: str, batch: QueryBatch) -> "WorkloadSession":
        """Register one named batch; returns self for chaining."""
        if WORKLOAD_SEPARATOR in name:
            raise ValueError(
                f"workload name {name!r} may not contain "
                f"{WORKLOAD_SEPARATOR!r}"
            )
        if name in self._workloads:
            raise ValueError(f"duplicate workload name {name!r}")
        self._workloads[name] = batch
        self._fused = None  # invalidate the memoized fused batch
        return self

    def fused_batch(self) -> QueryBatch:
        """The union of all workloads, queries renamed ``workload::query``.

        Aggregate objects are shared with the source batches, so dynamic
        functions keep their identities and plan-cache slots.
        """
        if not self._workloads:
            raise ValueError("session has no workloads")
        if self._fused is None:
            self._fused = QueryBatch(
                [
                    Query(
                        f"{workload}{WORKLOAD_SEPARATOR}{query.name}",
                        query.group_by,
                        query.aggregates,
                    )
                    for workload, batch in self._workloads.items()
                    for query in batch
                ]
            )
        return self._fused

    # -- execution ---------------------------------------------------------

    def run(self, *, database=None) -> SessionResult:
        """Execute all workloads as one fused DAG; fan results back out.

        ``database`` (optional) pins the run to one database version —
        the epoch hook the analytics service uses so fused requests read
        a consistent snapshot while deltas commit concurrently.
        """
        fused = self.fused_batch()
        merged = self.engine.run(fused, database=database)
        result = self._split(merged)
        result.fused = True
        return result

    def run_independent(self, *, database=None) -> SessionResult:
        """Execute each workload as its own batch (no DAG-level fusion)."""
        result = SessionResult()
        for workload, batch in self._workloads.items():
            batch_result = self.engine.run(batch, database=database)
            result[workload] = batch_result
            result.plan_seconds += batch_result.plan_seconds
            result.execute_seconds += batch_result.execute_seconds
            result.cache_report = batch_result.cache_report
        return result

    def _split(self, merged: BatchResult) -> SessionResult:
        result = SessionResult()
        for workload in self._workloads:
            result[workload] = BatchResult()
        for fused_name, relation in merged.items():
            workload, _, query_name = fused_name.partition(
                WORKLOAD_SEPARATOR
            )
            result[workload][query_name] = relation.rename(query_name)
        result.plan_seconds = merged.plan_seconds
        result.execute_seconds = merged.execute_seconds
        result.cache_report = merged.cache_report
        for batch_result in result.values():
            batch_result.plan_seconds = merged.plan_seconds
            batch_result.execute_seconds = merged.execute_seconds
            batch_result.cache_report = merged.cache_report
        return result

    # -- reporting -----------------------------------------------------------

    def fusion_report(self) -> FusionReport:
        """Plan-level sharing statistics: fused vs independent view DAGs."""
        fused_plan = self.engine.plan(self.fused_batch())
        views_independent = 0
        groups_independent = 0
        for batch in self._workloads.values():
            plan = self.engine.plan(batch)
            views_independent += plan.decomposed.n_views
            groups_independent += plan.grouped.n_groups
        return FusionReport(
            n_workloads=len(self._workloads),
            n_queries=len(self.fused_batch()),
            views_fused=fused_plan.decomposed.n_views,
            views_independent=views_independent,
            groups_fused=fused_plan.grouped.n_groups,
            groups_independent=groups_independent,
        )
