"""Canonical content signatures for materialized views.

A view's materialization is fully determined by

* the *data* of the relations in its subtree (captured transitively:
  every view hashes its own node relation and the signatures of the
  views it consumes), and
* its *structure*: group-by attributes plus the ordered list of
  aggregate columns (coefficient, factor functions, references into
  child views).

Hashing exactly those inputs yields a **content address**: two views
with equal digests hold bitwise-interchangeable :class:`ViewData`, no
matter which batch, plan, or engine produced them.  That is what lets
the :class:`~repro.engine.viewcache.cache.ViewCache` share materialized
views across batches, models, and sessions.

Canonicalization choices:

* view ids never enter a signature — a :class:`ViewRef` contributes the
  *digest* of the referenced view plus the referenced column position,
  so two plans built independently (with different id spaces) agree on
  structurally equal views;
* the view's ``target`` node is deliberately excluded: the edge a view
  flows along affects where its data is *consumed*, not what the data
  *is*, so views from differently-rooted plans can still share;
* factor functions use their value-inclusive :meth:`Function.signature`
  (a cached view computed for ``1_{X<=5}`` must never serve
  ``1_{X<=7}``, even though the plan cache treats both as one slot);
* *dynamic* functions are hashed through the **runtime** dyn table
  (``dyn_slots`` maps planning-time function identity to its batch
  slot, ``dyn`` holds the functions bound for this run) — the stored
  plan's function objects carry planning-time values, and execution
  substitutes the slot binding, so hashing the stored objects would
  alias every re-bound run onto the first one's digests.  A dynamic
  function with no known binding makes its view uncacheable;
* :class:`~repro.query.functions.Udf` factors make a view *uncacheable*
  — an arbitrary Python callable has no trustworthy content identity.

Relation fingerprints hash schema + raw column bytes and are memoized
per :class:`Relation` object (relations are immutable by convention),
so repeated runs over an unchanged database hash each relation once.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ...data.database import Database
from ...data.relation import Relation
from ...query.functions import Function, Udf
from ..views import View

#: memoized relation content hashes; entries die with their relation
_RELATION_FP_CACHE: "weakref.WeakKeyDictionary[Relation, str]" = (
    weakref.WeakKeyDictionary()
)


def relation_fingerprint(relation: Relation) -> str:
    """Content hash of one relation: schema plus raw column bytes."""
    cached = _RELATION_FP_CACHE.get(relation)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(
        repr(
            [
                (attr.name, attr.kind, str(attr.dtype))
                for attr in relation.schema
            ]
        ).encode()
    )
    for name in relation.schema.names:
        column = relation.column(name)
        digest.update(name.encode())
        digest.update(str(column.dtype).encode())
        digest.update(column.tobytes())
    fingerprint = digest.hexdigest()
    _RELATION_FP_CACHE[relation] = fingerprint
    return fingerprint


def database_fingerprint(database: Database) -> str:
    """Content hash of a whole database (order-insensitive)."""
    parts = sorted(
        (rel.name, relation_fingerprint(rel)) for rel in database
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def function_content_signature(
    function: Function,
) -> Tuple[bool, tuple]:
    """(cacheable, value-inclusive signature) of one factor function."""
    if isinstance(function, Udf):
        # a UDF's behavior lives in an opaque callable; its name is not
        # a content identity, so views built on it are never cached
        return False, ("udf", function.name, function.attrs)
    return True, function.signature()


def dyn_binding_key(dyn: Sequence[Function]) -> tuple:
    """Hashable identity of one run's dynamic-function bindings."""
    return tuple(function_content_signature(f) for f in dyn)


@dataclass(frozen=True)
class ViewSignature:
    """The content address of one view.

    ``digest`` is the cache key; ``relations`` names every base relation
    the view's data depends on (the invalidation footprint);
    ``cacheable`` is False when any factor in the view's subtree has no
    trustworthy content identity (UDFs).  ``structure`` is the
    structural half of the digest — ``(source, group_by, agg_parts)``
    with child views embedded by digest — which lets the cache *re-key*
    a delta-patched view against the updated relation fingerprint (and,
    for interior views, the re-keyed child digests) without replanning.
    """

    digest: str
    relations: frozenset
    cacheable: bool
    structure: Optional[tuple] = None


def view_digest(
    source: str,
    relation_fp: str,
    group_by: Tuple[str, ...],
    agg_parts: tuple,
) -> str:
    """The digest formula, shared with re-keying after deltas."""
    payload = repr(("view", source, relation_fp, group_by, agg_parts))
    return hashlib.sha256(payload.encode()).hexdigest()


def structure_digest(structure: tuple, relation_fp: str) -> str:
    """Digest of a view's structure against a node fingerprint."""
    source, group_by, agg_parts = structure
    return view_digest(source, relation_fp, group_by, agg_parts)


#: back-compat alias (the pre-propagation cache only re-keyed leaves)
leaf_digest = structure_digest


def rekey_structure(structure: tuple, rekey: Mapping[str, str]) -> tuple:
    """Substitute re-keyed child digests into a view structure.

    After a delta patches child views in place, their digests change;
    a parent's structure embeds them inside its ``agg_parts``, so the
    parent's new content address is the digest of this substituted
    structure.  Child references stay sorted by content, matching what
    :func:`view_signatures` would compute from scratch.
    """
    source, group_by, agg_parts = structure
    new_parts = []
    for coefficient, func_sigs, ref_parts in agg_parts:
        new_refs = tuple(
            sorted(
                (rekey.get(digest, digest), agg_index)
                for digest, agg_index in ref_parts
            )
        )
        new_parts.append((coefficient, func_sigs, new_refs))
    return (source, group_by, tuple(new_parts))


def view_signatures(
    views: Sequence[View],
    database: Database,
    dyn_slots: Optional[Mapping[int, int]] = None,
    dyn: Sequence[Function] = (),
) -> Dict[int, ViewSignature]:
    """Content signatures for every view of a decomposed batch.

    Signatures are computed bottom-up over the reference DAG; a view's
    ``relations`` set is the union of its node relation and its
    children's sets (the subtree of the join tree it aggregates over).

    ``dyn_slots`` (planning-time ``id(function) -> slot``) and ``dyn``
    (this run's slot bindings) resolve dynamic functions to the values
    execution will actually use; a dynamic function whose binding is
    unknown poisons its view's cacheability rather than risking a
    stale-value hit.
    """
    memo: Dict[int, ViewSignature] = {}
    slots = dict(dyn_slots or {})

    def function_sig(function: Function) -> Tuple[bool, tuple]:
        if function.dynamic:
            slot = slots.get(id(function))
            if slot is None or not 0 <= slot < len(dyn):
                return False, (
                    "dyn-unbound",
                    type(function).__name__,
                    function.attrs,
                )
            # hash the runtime binding: the stored plan's function
            # object carries planning-time values the executor ignores
            return function_content_signature(dyn[slot])
        return function_content_signature(function)

    def signature(view_id: int) -> ViewSignature:
        cached = memo.get(view_id)
        if cached is not None:
            return cached
        view = views[view_id]
        cacheable = True
        relations = {view.source}
        agg_parts = []
        for spec in view.aggregates:
            func_sigs = []
            for function in spec.functions:
                func_ok, func_sig = function_sig(function)
                cacheable = cacheable and func_ok
                func_sigs.append(func_sig)
            ref_parts = []
            for ref in spec.refs:
                child = signature(ref.view_id)
                cacheable = cacheable and child.cacheable
                relations |= child.relations
                ref_parts.append((child.digest, ref.agg_index))
            # sort refs by content, never by plan-local view id — two
            # plans assigning flipped ids to equal children must agree
            agg_parts.append(
                (
                    spec.coefficient,
                    tuple(sorted(func_sigs)),
                    tuple(sorted(ref_parts)),
                )
            )
        structure = (view.source, view.group_by, tuple(agg_parts))
        digest = view_digest(
            view.source,
            relation_fingerprint(database.relation(view.source)),
            view.group_by,
            tuple(agg_parts),
        )
        memo[view_id] = ViewSignature(
            digest=digest,
            relations=frozenset(relations),
            cacheable=cacheable,
            structure=structure,
        )
        return memo[view_id]

    for view in views:
        signature(view.id)
    return memo
