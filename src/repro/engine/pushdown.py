"""Aggregate Pushdown + Merge Views (paper §3.2 and §3.4).

Each product term of each query aggregate is decomposed into one
directional view per join-tree edge on the path from the leaves to the
query's root.  The decomposition partially pushes aggregates past joins
(eager aggregation) and exposes sharing:

* **Case 3 merging** (identical views) happens through a memo table — a
  term re-using an existing (edge, group-by, aggregate) triple gets a
  reference to the existing column instead of a new view.
* **Case 2/1 merging** (same group-by, same or different body) happens
  through bucketing: views on the same edge with the same group-by become
  one multi-aggregate view.  Correctness of case-1 merging is guaranteed
  by the executor, which joins each aggregate only with the views it
  references (fan-out views never pollute sibling aggregates).

``merge_mode`` selects how much consolidation happens:

* ``"full"``   — dedup + bucketing (LMFAO);
* ``"dedup"``  — only identical-view sharing (case 3);
* ``"none"``   — one view per (query, term, edge): the unconsolidated
  3,256-view regime the paper describes before merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..jointree.join_tree import JoinTree, RootedView
from ..query.aggregates import Product
from ..query.query import Query, QueryBatch
from .views import AggregateSpec, QueryOutput, View, ViewRef

MERGE_MODES = ("full", "dedup", "none")


@dataclass
class DecomposedBatch:
    """The full set of views plus per-query output assembly recipes."""

    views: List[View]
    outputs: List[QueryOutput]
    roots: Dict[str, str]

    def view(self, view_id: int) -> View:
        return self.views[view_id]

    @property
    def n_views(self) -> int:
        return len(self.views)

    @property
    def n_total_aggregates(self) -> int:
        return sum(len(v.aggregates) for v in self.views)


class Decomposer:
    """Decomposes a query batch into directional views over a join tree."""

    def __init__(
        self,
        tree: JoinTree,
        merge_mode: str = "full",
        dyn_slots: Optional[Dict[int, int]] = None,
    ):
        if merge_mode not in MERGE_MODES:
            raise ValueError(
                f"merge_mode must be one of {MERGE_MODES}, got {merge_mode!r}"
            )
        self.tree = tree
        self.merge_mode = merge_mode
        self.dyn_slots = dyn_slots or {}
        self.views: List[View] = []
        # (source, target, group_by) -> View   [case 2/1 bucketing]
        self._buckets: Dict[tuple, View] = {}
        # (source, target, group_by, agg signature) -> ViewRef  [case 3]
        self._memo: Dict[tuple, ViewRef] = {}

    # -- public API ---------------------------------------------------------

    def decompose(
        self, batch: QueryBatch, roots: Dict[str, str]
    ) -> DecomposedBatch:
        outputs: List[QueryOutput] = []
        for query in batch:
            root = roots[query.name]
            outputs.append(self._decompose_query(query, root))
        return DecomposedBatch(views=self.views, outputs=outputs, roots=roots)

    # -- internals ------------------------------------------------------------

    def _decompose_query(self, query: Query, root: str) -> QueryOutput:
        rooted = self.tree.rooted(root)
        self._check_attrs(query)
        out_group_by = tuple(sorted(query.group_by))
        term_refs: List[List[ViewRef]] = []
        for aggregate in query.aggregates:
            refs_for_agg: List[ViewRef] = []
            for term in aggregate.terms:
                spec = self._decompose_term(term, rooted, query)
                ref = self._place(root, None, out_group_by, spec)
                refs_for_agg.append(ref)
            term_refs.append(refs_for_agg)
        # with "full" merging all terms of a query land in the same output
        # view (the bucket key (root, None, group_by) is constant per
        # query); in other modes term_refs point at individual views
        view_id = term_refs[0][0].view_id if term_refs and term_refs[0] else -1
        return QueryOutput(
            query_name=query.name,
            group_by=query.group_by,
            view_id=view_id,
            term_refs=term_refs,
        )

    def _check_attrs(self, query: Query) -> None:
        known = self.tree.all_attrs()
        for attr in query.referenced_attrs():
            if attr not in known:
                raise ValueError(
                    f"query {query.name!r} references unknown attribute "
                    f"{attr!r}"
                )

    def _decompose_term(
        self, term: Product, rooted: RootedView, query: Query
    ) -> AggregateSpec:
        """Build the view hierarchy for one product term; returns the spec
        to be placed in the root output view."""
        factors_by_node = self._assign_eval_nodes(term, rooted)
        needed = frozenset(query.group_by)
        root = rooted.root
        spec = self._build_node(
            root, None, needed, factors_by_node, rooted, term.coefficient
        )
        return spec

    def _assign_eval_nodes(
        self, term: Product, rooted: RootedView
    ) -> Dict[str, List]:
        """Each factor is evaluated at the deepest node that sees all of
        its attributes — in its own schema if possible, otherwise in its
        subtree (attributes are then carried up as group-bys)."""
        tree = self.tree
        by_node: Dict[str, List] = {}
        for factor in term.factors:
            attrs = set(factor.attrs)
            local = [
                n for n in tree.nodes if attrs <= tree.attrs_of(n)
            ]
            if local:
                node = max(local, key=lambda n: (rooted.depth[n], n))
            else:
                spanning = [
                    n
                    for n in tree.nodes
                    if attrs <= rooted.subtree_attrs[n]
                ]
                if not spanning:
                    raise ValueError(
                        f"factor {factor!r} references attributes outside "
                        "the join tree"
                    )
                node = max(spanning, key=lambda n: (rooted.depth[n], n))
            by_node.setdefault(node, []).append(factor)
        return by_node

    def _build_node(
        self,
        node: str,
        parent: Optional[str],
        needed_above: FrozenSet[str],
        factors_by_node: Dict[str, List],
        rooted: RootedView,
        coefficient: float,
    ) -> AggregateSpec:
        """Recursively build child views; return this node's spec.

        For non-root nodes the caller places the spec into a directional
        view; for the root the caller places it into the output view.
        """
        own_factors = tuple(factors_by_node.get(node, ()))
        child_needed = needed_above | frozenset(
            a for f in own_factors for a in f.attrs
        )
        refs: List[ViewRef] = []
        for child in rooted.children[node]:
            child_spec = self._build_node(
                child, node, child_needed, factors_by_node, rooted, 1.0
            )
            group_by = self._view_group_by(child, node, child_needed, rooted)
            refs.append(self._place(child, node, group_by, child_spec))
        return AggregateSpec(
            coefficient=coefficient,
            functions=own_factors,
            refs=tuple(refs),
        )

    def _view_group_by(
        self,
        node: str,
        parent: str,
        needed_above: FrozenSet[str],
        rooted: RootedView,
    ) -> Tuple[str, ...]:
        keys = set(self.tree.join_keys(node, parent))
        carried = needed_above & rooted.subtree_attrs[node]
        return tuple(sorted(keys | carried))

    def _place(
        self,
        source: str,
        target: Optional[str],
        group_by: Tuple[str, ...],
        spec: AggregateSpec,
    ) -> ViewRef:
        """Insert an aggregate spec into the view store, merging per mode."""
        if self.merge_mode == "none":
            view = View(
                id=len(self.views),
                source=source,
                target=target,
                group_by=group_by,
            )
            self.views.append(view)
            return ViewRef(view.id, view.add_aggregate(spec))
        memo_key = (source, target, group_by, spec.signature(self.dyn_slots))
        if memo_key in self._memo:
            return self._memo[memo_key]
        if self.merge_mode == "full":
            bucket_key = (source, target, group_by)
            view = self._buckets.get(bucket_key)
            if view is None:
                view = View(
                    id=len(self.views),
                    source=source,
                    target=target,
                    group_by=group_by,
                )
                self.views.append(view)
                self._buckets[bucket_key] = view
        else:  # dedup: a fresh single-aggregate view per distinct spec
            view = View(
                id=len(self.views),
                source=source,
                target=target,
                group_by=group_by,
            )
            self.views.append(view)
        ref = ViewRef(view.id, view.add_aggregate(spec))
        self._memo[memo_key] = ref
        return ref
