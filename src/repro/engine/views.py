"""Directional views: the intermediate representation of LMFAO plans.

A :class:`View` flows along a join-tree edge from ``source`` to ``target``
(§3.2).  Views with ``target=None`` are *output* views computed at a query
root.  Each view groups by ``group_by`` and carries a list of
:class:`AggregateSpec` columns; each spec is a product of

* a scalar ``coefficient`` (constants folded at plan time),
* ``functions`` evaluated at the source node, and
* ``refs`` — one aggregate column of a view incoming from a child edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..query.functions import Function


@dataclass(frozen=True)
class ViewRef:
    """A reference to aggregate column ``agg_index`` of view ``view_id``."""

    view_id: int
    agg_index: int


@dataclass
class AggregateSpec:
    """One aggregate column of a view: ``coeff * prod(functions) * prod(refs)``."""

    coefficient: float
    functions: Tuple[Function, ...]
    refs: Tuple[ViewRef, ...]

    def signature(self, dyn_slots: Optional[Dict[int, int]] = None) -> tuple:
        """Identity used for view merging.

        ``dyn_slots`` maps ``id(function)`` to the batch slot of dynamic
        functions; two dynamic functions are never merged even when their
        current values coincide, so compiled plans can re-bind each slot
        independently.
        """
        func_sigs = []
        for f in self.functions:
            if f.dynamic:
                # unknown slot -> fall back to object identity, which is
                # unique and therefore never wrongly merges two dynamic
                # functions
                slot = (dyn_slots or {}).get(id(f), id(f))
                func_sigs.append(f.structural_signature(slot))
            else:
                func_sigs.append(f.signature())
        return (
            self.coefficient,
            tuple(sorted(func_sigs)),
            tuple(sorted((r.view_id, r.agg_index) for r in self.refs)),
        )

    def referenced_view_ids(self) -> Tuple[int, ...]:
        return tuple(sorted({r.view_id for r in self.refs}))


@dataclass
class View:
    """A directional view with one or more aggregate columns."""

    id: int
    source: str
    target: Optional[str]
    group_by: Tuple[str, ...]
    aggregates: List[AggregateSpec] = field(default_factory=list)

    @property
    def is_output(self) -> bool:
        return self.target is None

    @property
    def name(self) -> str:
        if self.is_output:
            return f"Q{self.id}@{self.source}"
        return f"V{self.id}[{self.source}->{self.target}]"

    def referenced_view_ids(self) -> Tuple[int, ...]:
        seen: Dict[int, None] = {}
        for spec in self.aggregates:
            for ref in spec.refs:
                seen.setdefault(ref.view_id, None)
        return tuple(seen)

    def add_aggregate(self, spec: AggregateSpec) -> int:
        """Append an aggregate column; returns its index."""
        self.aggregates.append(spec)
        return len(self.aggregates) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"View({self.name}, group_by={list(self.group_by)}, "
            f"aggs={len(self.aggregates)})"
        )


@dataclass
class QueryOutput:
    """How to assemble one query's result from output views.

    ``term_refs[i]`` lists, for the query's i-th aggregate, the output-view
    columns whose sum is the aggregate's value (one entry per product
    term).
    """

    query_name: str
    group_by: Tuple[str, ...]
    view_id: int
    term_refs: List[List[ViewRef]]
