"""The LMFAO engine: layered optimization and execution of aggregate batches."""

from .engine import LMFAO, BatchResult, EnginePlan
from .executor import (
    CompiledBackend,
    DataflowScheduler,
    ExecutionBackend,
    InterpreterBackend,
    ProcessBackend,
    ViewStore,
)
from .explain import explain
from .grouping import GroupedPlan, ViewGroup, group_views
from .ivm import BatchMaintenance, DeltaReport, IncrementalEngine
from .sql import render_batch_sql
from .pushdown import DecomposedBatch, Decomposer
from .roots import assign_roots, possible_roots
from .stats import PlanStatistics
from .viewcache import ViewCache, ViewSignature, view_signatures
from .viewcache.fusion import FusionReport, SessionResult, WorkloadSession
from .views import AggregateSpec, QueryOutput, View, ViewRef

__all__ = [
    "LMFAO",
    "BatchResult",
    "EnginePlan",
    "ExecutionBackend",
    "InterpreterBackend",
    "CompiledBackend",
    "ProcessBackend",
    "DataflowScheduler",
    "ViewStore",
    "ViewCache",
    "ViewSignature",
    "view_signatures",
    "WorkloadSession",
    "SessionResult",
    "FusionReport",
    "IncrementalEngine",
    "DeltaReport",
    "BatchMaintenance",
    "PlanStatistics",
    "Decomposer",
    "DecomposedBatch",
    "assign_roots",
    "possible_roots",
    "group_views",
    "GroupedPlan",
    "ViewGroup",
    "View",
    "ViewRef",
    "AggregateSpec",
    "QueryOutput",
    "explain",
    "render_batch_sql",
]
