"""Join-attribute orders (paper §3.5, "Join attribute order").

The multi-output plan scans a node's relation as a logical trie, grouped
by join attributes in increasing domain-size order.  In this NumPy-based
engine the order determines how relations are sorted at plan time; sorted
inputs make the grouped aggregation kernels access memory sequentially —
the same locality argument the paper makes for its nested-loop tries.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..data.database import Database
from ..jointree.join_tree import JoinTree


def join_attributes(tree: JoinTree, node: str) -> Tuple[str, ...]:
    """All attributes of ``node`` shared with at least one neighbour."""
    shared: Set[str] = set()
    for neighbor in tree.neighbors(node):
        shared |= set(tree.join_keys(node, neighbor))
    return tuple(sorted(shared))


def attribute_order(
    database: Database, tree: JoinTree, node: str
) -> Tuple[str, ...]:
    """Join attributes of ``node`` ordered by ascending domain size.

    This is the paper's approximation that avoids exploring all
    permutations of the join attributes.
    """
    attrs = join_attributes(tree, node)
    return tuple(
        sorted(attrs, key=lambda a: (database.domain_size(node, a), a))
    )


def sort_database(database: Database, tree: JoinTree) -> Database:
    """Sort every relation by its attribute order (plan-time step)."""
    sorted_relations = []
    for relation in database:
        order = attribute_order(database, tree, relation.name)
        if order:
            sorted_relations.append(relation.sorted_by(list(order)))
        else:
            sorted_relations.append(relation)
    return Database(sorted_relations, name=database.name)
