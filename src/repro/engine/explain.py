"""Human-readable plan explanation (EXPLAIN for LMFAO plans).

Shows what each optimization layer produced: the join tree, per-query
roots, the directional views per edge with their aggregate counts, the
view groups with their dependency levels, and a summary of the sharing
achieved (the Figure 3 picture, as text).
"""

from __future__ import annotations

from typing import Dict, List

from ..jointree.join_tree import JoinTree
from .engine import EnginePlan


def explain(plan: EnginePlan, tree: JoinTree) -> str:
    """Render a full textual explanation of an engine plan."""
    lines: List[str] = []
    lines.append("LMFAO plan")
    lines.append("==========")
    lines.extend(_explain_tree(tree))
    lines.extend(_explain_roots(plan))
    lines.extend(_explain_views(plan))
    lines.extend(_explain_groups(plan))
    lines.extend(_explain_sharing(plan))
    return "\n".join(lines)


def _explain_tree(tree: JoinTree) -> List[str]:
    lines = ["", "join tree:"]
    for a, b in tree.edges:
        keys = ", ".join(tree.join_keys(a, b))
        lines.append(f"  {a} -- {b}  on ({keys})")
    return lines


def _explain_roots(plan: EnginePlan) -> List[str]:
    lines = ["", "roots (Find Roots layer):"]
    by_root: Dict[str, List[str]] = {}
    for query_name, root in plan.statistics.roots.items():
        by_root.setdefault(root, []).append(query_name)
    for root in sorted(by_root):
        queries = by_root[root]
        shown = ", ".join(queries[:6])
        suffix = f", ... ({len(queries)} total)" if len(queries) > 6 else ""
        lines.append(f"  {root}: {shown}{suffix}")
    return lines


def _explain_views(plan: EnginePlan) -> List[str]:
    lines = ["", "directional views (Aggregate Pushdown + Merge Views):"]
    by_edge: Dict[str, List] = {}
    for view in plan.decomposed.views:
        edge = (
            f"{view.source} -> {view.target}"
            if view.target
            else f"{view.source} (output)"
        )
        by_edge.setdefault(edge, []).append(view)
    for edge in sorted(by_edge):
        views = by_edge[edge]
        n_aggs = sum(len(v.aggregates) for v in views)
        lines.append(
            f"  {edge}: {len(views)} view(s), {n_aggs} aggregate column(s)"
        )
        for view in views:
            group_by = ", ".join(view.group_by) or "<scalar>"
            lines.append(
                f"    {view.name}  group by [{group_by}]  "
                f"{len(view.aggregates)} agg(s)"
            )
    return lines


def _explain_groups(plan: EnginePlan) -> List[str]:
    lines = ["", "view groups (Group Views / Multi-Output):"]
    # dependency depth, for display only — execution itself is dataflow
    # scheduled, not level-stepped
    level_of: Dict[int, int] = {}
    for group in plan.grouped.groups:  # topological order
        level_of[group.id] = max(
            (level_of[dep] + 1 for dep in group.depends_on), default=0
        )
    for group in plan.grouped.groups:
        lines.append(
            f"  level {level_of[group.id]}: group {group.id} @ "
            f"{group.node} computes views {sorted(group.view_ids)}"
        )
    return lines


def _explain_sharing(plan: EnginePlan) -> List[str]:
    stats = plan.statistics
    lines = ["", "sharing summary:"]
    lines.append(
        f"  {stats.n_application_aggregates} application aggregates "
        f"+ {stats.n_intermediate_aggregates} intermediates "
        f"in {stats.n_views} views / {stats.n_groups} groups"
    )
    if stats.n_application_aggregates:
        per_view = stats.n_total_aggregates / max(1, stats.n_views)
        lines.append(
            f"  average {per_view:.1f} aggregates share each view's scan"
        )
    return lines
