"""The Find Roots layer (paper §3.3).

LMFAO may evaluate different queries of a batch over the same join tree
rooted at *different* nodes.  The root for each query is chosen with the
paper's weight heuristic:

* each query distributes weight over the relations that contain its
  group-by attributes (equal weight over all relations if it has none);
* relations are then considered in decreasing weight (ties: larger
  relation first) and each becomes the root of all still-unassigned
  queries that considered it a possible root.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.database import Database
from ..jointree.join_tree import JoinTree
from ..query.query import Query, QueryBatch


def possible_roots(query: Query, tree: JoinTree) -> List[str]:
    """Nodes that contain at least one group-by attribute of the query.

    A query without group-by attributes can be rooted anywhere.
    """
    if not query.group_by:
        return list(tree.nodes)
    group_attrs = set(query.group_by)
    nodes = [n for n in tree.nodes if group_attrs & tree.attrs_of(n)]
    return nodes or list(tree.nodes)


def assign_roots(
    batch: QueryBatch,
    tree: JoinTree,
    database: Optional[Database] = None,
    multi_root: bool = True,
) -> Dict[str, str]:
    """Choose a root node per query; returns query name -> node name.

    With ``multi_root=False`` every query is rooted at the single
    highest-weight node (the AC/DC-style evaluation used as the Figure 5
    ablation baseline).
    """
    weights: Dict[str, float] = {n: 0.0 for n in tree.nodes}
    candidates: Dict[str, List[str]] = {}
    for query in batch:
        nodes = possible_roots(query, tree)
        candidates[query.name] = nodes
        if query.group_by:
            group_attrs = set(query.group_by)
            for node in nodes:
                covered = len(group_attrs & tree.attrs_of(node))
                weights[node] += covered / len(group_attrs)
        else:
            for node in nodes:
                weights[node] += 1.0 / len(tree.nodes)

    def size_of(node: str) -> int:
        if database is None:
            return 0
        return database.relation(node).n_rows

    ranked = sorted(
        tree.nodes, key=lambda n: (-weights[n], -size_of(n), n)
    )
    if not multi_root:
        top = ranked[0]
        return {query.name: top for query in batch}
    assignment: Dict[str, str] = {}
    for node in ranked:
        for query in batch:
            if query.name not in assignment and node in candidates[query.name]:
                assignment[query.name] = node
    return assignment
