"""Incremental view maintenance (IVM) over the LMFAO view DAG.

LMFAO materializes a DAG of aggregate views over a join tree; this layer
keeps those views — and the query results assembled from them — up to
date under inserts and retractions of base-relation tuples without
re-running the full plan.

The maintenance strategy follows the classic delta-query idea (cf.
Berkholz et al., "Answering FO+MOD queries under updates"): every view
aggregate is a SUM of per-context-row products, and context rows
partition with the node relation's rows.  Evaluating the *unchanged*
group plan over only the delta partition therefore yields exactly the
additive change of each view, which merges into the cached
:class:`~repro.engine.interpreter.ViewData` with the same
distributive-SUM re-aggregation the domain-parallel backends already
use (:meth:`repro.engine.executor.ViewStore.merge_parts`, built on
:func:`repro.engine.executor.merge_partials`).  Retractions are
insertions with negated payload.  Cached views live in a pinned
:class:`~repro.engine.executor.ViewStore` rather than a bare dict, so
the maintenance layer shares one view-lifetime mechanism with the
executor.

Exact key sets under retraction come from *support counts*: plans built
with ``track_support=True`` carry a hidden context-row count per group
key, and a key is retired exactly when its support cancels to zero — so
maintained views match a from-scratch run key-for-key.

**Propagation semantics.**  The delta of a view is a pure merge only
while no *other* view consumes it (changed aggregate columns would
otherwise have to be re-joined upward, where products of changed views
break additivity).  The engine therefore plans every batch rooted at a
single designated relation — by default the largest one, where updates
land in practice — which makes that node's view groups sinks.  A delta
against the root relation is maintained by pure merging
(``"incremental"``).  A delta against any *other* relation is
*propagated* bottom-up through the DAG (``"propagate"``): the changed
relation's own groups are delta-merged (or, for retractions on views
without support counts, re-run over the full updated relation), and
every group consuming a changed view is re-run over its node relation
with the updated inputs — the affected *cone* of the DAG, never the
whole batch.  Groups whose inputs are untouched keep their
materializations.  Full recomputation (``"recompute"``) remains only
as a guarded fallback (e.g. a delta on a relation the plan has no view
groups for), counted in :meth:`IncrementalEngine.stats` as a
*fallback* with its reason rather than happening silently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.database import AppliedDelta, Database, DeltaBatch
from ..jointree.join_tree import JoinTree
from ..query.query import QueryBatch
from .engine import LMFAO, BatchResult, EnginePlan
from .executor import ViewStore
from .interpreter import ViewData
from .viewcache.cache import ViewCache


@dataclass
class BatchMaintenance:
    """How one cached batch was brought up to date by ``apply_delta``."""

    queries: Tuple[str, ...]
    mode: str  # "incremental", "propagate", or "recompute"
    seconds: float
    #: why a full recompute happened, when it did
    reason: Optional[str] = None


@dataclass
class DeltaReport:
    """What one ``apply_delta`` call did."""

    relations: Tuple[str, ...]
    n_changes: int
    batches: List[BatchMaintenance] = field(default_factory=list)
    #: cache entries delta-patched (re-keyed in place) / evicted by
    #: the attached view cache, summed over the applied deltas
    views_patched: int = 0
    views_evicted: int = 0

    @property
    def all_incremental(self) -> bool:
        return all(b.mode == "incremental" for b in self.batches)

    @property
    def all_maintained(self) -> bool:
        """True when no batch fell back to full recomputation."""
        return all(b.mode != "recompute" for b in self.batches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = ", ".join(f"{b.mode}:{b.seconds:.4f}s" for b in self.batches)
        return (
            f"DeltaReport({self.n_changes} changes on "
            f"{list(self.relations)}; [{modes}])"
        )


@dataclass
class MaintenanceStats:
    """Lifetime counters of one :class:`IncrementalEngine` (``/stats``)."""

    deltas: int = 0  # non-empty DeltaBatches applied
    incremental: int = 0  # batch maintenances by pure sink merging
    propagated: int = 0  # batch maintenances through interior groups
    fallbacks: int = 0  # full-batch recomputations
    last_fallback_reason: Optional[str] = None

    def as_dict(self) -> Dict:
        return {
            "deltas": self.deltas,
            "incremental": self.incremental,
            "propagated": self.propagated,
            "fallbacks": self.fallbacks,
            "last_fallback_reason": self.last_fallback_reason,
        }


class PropagationError(RuntimeError):
    """Raised internally when a delta cannot be propagated through the
    view DAG (the caller falls back to full recomputation and counts
    it)."""


@dataclass
class _CachedBatch:
    """A materialized batch: plan + live view store + bound dyn table."""

    batch: QueryBatch
    plan: EnginePlan
    view_data: ViewStore
    dyn: Sequence


class IncrementalEngine:
    """An :class:`LMFAO` facade that maintains results under updates.

    Usage::

        engine = IncrementalEngine(dataset.database, dataset.join_tree)
        results = engine.run(batch)                  # full evaluation
        report = engine.apply_delta(
            DeltaBatch.insert("Sales", new_rows),
        )
        updated = engine.run(batch)                  # served from views

    ``root`` names the relation whose deltas are maintained by merging
    (all queries are planned rooted there); it defaults to the largest
    relation.  Deltas against any other relation trigger a full
    recomputation of every cached batch (see the module docstring for
    why).  Input relations are kept in user row order (``sort_inputs``
    is off) so ``DeltaBatch.delete_indices`` always refer to the row
    numbering the caller observes.

    ``view_cache`` (optional) attaches a cross-session
    :class:`~repro.engine.viewcache.cache.ViewCache`: every applied
    delta is forwarded to :meth:`ViewCache.on_delta`, which evicts or
    delta-patches exactly the cached views whose relation footprint
    contains the updated relation, and the engine's (re)materialization
    runs serve from / feed back into the same cache.
    """

    def __init__(
        self,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        *,
        root: Optional[str] = None,
        compile: bool = True,
        n_threads: int = 1,
        partition_threshold: int = 20_000,
        view_cache: Optional[ViewCache] = None,
        backend=None,
    ):
        if root is None:
            root = max(database, key=lambda r: r.n_rows).name
        self.engine = LMFAO(
            database,
            join_tree,
            root=root,
            track_support=True,
            sort_inputs=False,
            compile=compile,
            n_threads=n_threads,
            partition_threshold=partition_threshold,
            view_cache=view_cache,
            backend=backend,
        )
        self.root = root
        self.view_cache = view_cache
        self._cache: Dict[tuple, _CachedBatch] = {}
        self._stats = MaintenanceStats()

    # -- catalog ------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The current (updated) database."""
        return self.engine.database

    @property
    def n_cached_batches(self) -> int:
        return len(self._cache)

    def stats(self) -> Dict:
        """Lifetime maintenance counters (the ``ivm`` section of
        ``GET /stats``): applied deltas, how batches were maintained,
        and — crucially — how often propagation could *not* apply and
        fell back to full recomputation, with the last reason."""
        return self._stats.as_dict()

    # -- evaluation ----------------------------------------------------------

    def run(self, batch: QueryBatch) -> BatchResult:
        """Evaluate a batch, serving from maintained views when possible.

        The first run of a batch materializes and caches its views; after
        that, results are assembled straight from the (delta-maintained)
        cache until the batch object changes.
        """
        key = batch.structural_signature()
        entry = self._cache.get(key)
        if entry is not None and entry.batch is batch:
            t0 = time.perf_counter()
            result = self.engine.assemble(batch, entry.plan, entry.view_data)
            result.execute_seconds = time.perf_counter() - t0
            return result
        result, plan, view_data = self.engine.run_with_views(batch)
        self._pin_sinks(plan, view_data)
        self._cache[key] = _CachedBatch(
            batch=batch,
            plan=plan,
            view_data=view_data,
            dyn=batch.dynamic_functions(),
        )
        return result

    def refresh(self) -> None:
        """Recompute every cached batch from scratch.

        Useful to squash accumulated floating-point residue after long
        delta sequences, or after out-of-band database changes.
        """
        for entry in self._cache.values():
            entry.view_data = self._materialize(entry.plan, entry.dyn)

    # -- incremental maintenance ----------------------------------------------

    def apply_delta(self, *deltas: DeltaBatch) -> DeltaReport:
        """Apply inserts/retractions and bring cached batches up to date.

        Deltas are applied to the database sequentially (delete indices
        of later deltas see the row order left by earlier ones).  Cached
        batches are maintained in place: sink deltas by pure merging,
        deltas anywhere else by propagating the change through the
        affected cone of the view DAG.  Full recomputation remains only
        as a guarded fallback, counted in :meth:`stats`.
        """
        applied: List[AppliedDelta] = []
        database = self.engine.database
        for delta in deltas:
            if delta.is_empty:
                continue
            step = database.apply_delta(delta)
            database = step.database
            applied.append(step)
        report = DeltaReport(
            relations=tuple(
                dict.fromkeys(step.relation for step in applied)
            ),
            n_changes=sum(
                (0 if step.inserted is None else step.inserted.n_rows)
                + (0 if step.deleted is None else step.deleted.n_rows)
                for step in applied
            ),
        )
        if not applied:
            return report
        self.engine.database = database
        self._stats.deltas += len(applied)
        if self.view_cache is not None:
            # reconcile the cross-session cache first, so any engine
            # re-execution below can already hit repaired entries
            for step in applied:
                for status in self.view_cache.on_delta(step).values():
                    if status == "patched":
                        report.views_patched += 1
                    else:
                        report.views_evicted += 1
        for entry in self._cache.values():
            t0 = time.perf_counter()
            reason: Optional[str] = None
            try:
                mode = self._propagate(entry, applied)
            except Exception as exc:  # genuine can't-propagate cases
                entry.view_data = self._materialize(entry.plan, entry.dyn)
                mode = "recompute"
                reason = f"{type(exc).__name__}: {exc}"
            if mode == "incremental":
                self._stats.incremental += 1
            elif mode == "propagate":
                self._stats.propagated += 1
            else:
                self._stats.fallbacks += 1
                self._stats.last_fallback_reason = reason
            report.batches.append(
                BatchMaintenance(
                    queries=tuple(q.name for q in entry.batch),
                    mode=mode,
                    seconds=time.perf_counter() - t0,
                    reason=reason,
                )
            )
        return report

    def mergeable_relations(self, batch: QueryBatch) -> Set[str]:
        """Relations whose deltas this batch absorbs without recomputation."""
        return self._sink_nodes(self.engine.plan(batch))

    def forget(self, batch: QueryBatch) -> bool:
        """Drop a batch's cached plan + views; returns whether it was cached.

        Forgotten batches stop being maintained (and paid for) by
        ``apply_delta``; the next ``run`` re-materializes from scratch.
        """
        return self._cache.pop(batch.structural_signature(), None) is not None

    def clear_cache(self) -> None:
        """Drop every cached batch."""
        self._cache.clear()

    # -- internals -------------------------------------------------------------

    def _materialize(self, plan: EnginePlan, dyn: Sequence) -> ViewStore:
        """Execute a cached plan from scratch, keeping + pinning all views."""
        store = self.engine.execute(plan, dyn, retain_interior=True)
        self._pin_sinks(plan, store)
        return store

    def _pin_sinks(self, plan: EnginePlan, store: ViewStore) -> None:
        """Pin the delta-merge targets (sink-group views) in the store.

        The store already retains everything (``retain_all``); pinning
        records which views the maintenance layer patches in place, so
        they survive even if a future engine ever re-enables eviction on
        cached stores.
        """
        consumed = {
            dep for group in plan.grouped.groups for dep in group.depends_on
        }
        for group in plan.grouped.groups:
            if group.id in consumed:
                continue
            for vid in group.view_ids:
                store.pin(vid)

    @staticmethod
    def _sink_nodes(plan: EnginePlan) -> Set[str]:
        """Nodes all of whose view groups no other group consumes.

        Only such a node's views can absorb a delta by pure merging; a
        relation with no groups at all is *not* a sink (it still joins
        into views computed elsewhere).
        """
        consumed = {
            dep for group in plan.grouped.groups for dep in group.depends_on
        }
        by_node: Dict[str, List] = {}
        for group in plan.grouped.groups:
            by_node.setdefault(group.node, []).append(group)
        return {
            node
            for node, groups in by_node.items()
            if all(g.id not in consumed for g in groups)
        }

    def _propagate(
        self, entry: _CachedBatch, applied: Sequence[AppliedDelta]
    ) -> str:
        """Maintain one cached batch through a sequence of applied deltas.

        Each delta walks the batch's view groups in topological order,
        tracking the set of views whose data changed.  A group *at* the
        updated relation with untouched inputs is delta-merged; a group
        consuming a changed view — or one whose delta cannot be merged
        exactly — is re-run over its node relation (the version this
        delta produced) with the current inputs.  Groups outside the
        affected cone keep their materializations untouched.

        Returns ``"incremental"`` when every delta was absorbed by pure
        sink merges, ``"propagate"`` when interior groups re-ran.
        """
        plan = entry.plan
        store = entry.view_data
        mode = "incremental"
        for step in applied:
            changed: Set[int] = set()
            seen_relation = False
            for group in plan.grouped.groups:
                group_plan = plan.group_plans[group.id]
                node_changed = group.node == step.relation
                seen_relation = seen_relation or node_changed
                inputs_changed = any(
                    vid in changed for vid in group_plan.input_view_ids
                )
                if not node_changed and not inputs_changed:
                    continue
                if (
                    node_changed
                    and not inputs_changed
                    and self._group_merge(entry, group, group_plan, step)
                ):
                    changed.update(group.view_ids)
                    continue
                incoming = store.snapshot(group_plan.input_view_ids)
                produced = self.engine.run_group(
                    plan,
                    group.id,
                    step.database.relation(group.node),
                    incoming,
                    entry.dyn,
                )
                store.put_group(produced)
                changed.update(group.view_ids)
                mode = "propagate"
            if not seen_relation:
                # the plan has no view groups at this relation, yet it
                # still joins into views computed elsewhere — there is
                # no group whose re-execution would absorb the change
                raise PropagationError(
                    f"no view groups at relation {step.relation!r}"
                )
        return mode

    def _group_merge(
        self, entry: _CachedBatch, group, group_plan, step: AppliedDelta
    ) -> bool:
        """Try the pure delta-partition merge for one group.

        Returns False when the merge cannot be exact — a retraction on
        views without support counts would leave dead group keys — in
        which case the caller re-runs the group over the full updated
        relation instead.
        """
        plan = entry.plan
        store = entry.view_data
        current = store.snapshot(group.view_ids)
        has_deletes = step.deleted is not None and step.deleted.n_rows > 0
        # scalar views (no group-by) subtract exactly without support;
        # keyed views need support counts to retire dead keys
        if has_deletes and any(
            vd.support is None and vd.group_by for vd in current.values()
        ):
            return False
        incoming = store.snapshot(group_plan.input_view_ids)
        parts: List[Dict[int, ViewData]] = [current]
        if step.inserted is not None and step.inserted.n_rows:
            parts.append(
                self.engine.run_group(
                    plan, group.id, step.inserted, incoming, entry.dyn
                )
            )
        if has_deletes:
            removed = self.engine.run_group(
                plan, group.id, step.deleted, incoming, entry.dyn
            )
            parts.append(
                {vid: vd.negated() for vid, vd in removed.items()}
            )
        if len(parts) > 1:
            store.merge_parts(parts, retire_dead=True)
        return True
