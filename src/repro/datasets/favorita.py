"""Synthetic Favorita: the star schema of Figure 3.

    Sales(date, store, item, units, promo)           -- fact
    Holidays(date, htype, locale, transferred)
    StoRes(store, city, state, stype, cluster)
    Items(item, family, class_, perishable)
    Transactions(date, store, txns)
    Oil(date, price)

18 attributes, 6 relations, one many-to-one join per dimension — exactly
the join tree the paper uses (Sales at the centre).
"""

from __future__ import annotations

import numpy as np

from ..data.relation import Relation
from ..data.schema import Schema, categorical, continuous, key
from ..data.database import Database
from ..jointree.join_tree import join_tree_from_database
from .base import Dataset, scaled, zipf_choice

JOIN_TREE_EDGES = [
    ("Sales", "Holidays"),
    ("Sales", "Items"),
    ("Sales", "Transactions"),
    ("Transactions", "StoRes"),
    ("Transactions", "Oil"),
]


def favorita(scale: float = 1.0, seed: int = 7) -> Dataset:
    """Generate the synthetic Favorita dataset.

    ``scale=1.0`` produces a ~60k-row fact table; the paper's original has
    125M rows — plan shapes are identical, timings scale down.
    """
    rng = np.random.default_rng(seed)
    n_dates = scaled(360, scale, minimum=30)
    n_stores = scaled(54, scale, minimum=5)
    n_items = scaled(400, scale, minimum=20)
    n_sales = scaled(60_000, scale, minimum=500)

    oil = Relation(
        "Oil",
        Schema([key("date"), continuous("price")]),
        {
            "date": np.arange(n_dates),
            "price": np.round(
                45.0 + np.cumsum(rng.normal(0.0, 0.8, n_dates)), 2
            ),
        },
    )
    holidays = Relation(
        "Holidays",
        Schema(
            [
                key("date"),
                categorical("htype"),
                categorical("locale"),
                categorical("transferred"),
            ]
        ),
        {
            "date": np.arange(n_dates),
            "htype": rng.integers(0, 6, n_dates),
            "locale": rng.integers(0, 3, n_dates),
            "transferred": rng.integers(0, 2, n_dates),
        },
    )
    stores = Relation(
        "StoRes",
        Schema(
            [
                key("store"),
                categorical("city"),
                categorical("state"),
                categorical("stype"),
                categorical("cluster"),
            ]
        ),
        {
            "store": np.arange(n_stores),
            "city": rng.integers(0, max(3, n_stores // 3), n_stores),
            "state": rng.integers(0, max(2, n_stores // 6), n_stores),
            "stype": rng.integers(0, 5, n_stores),
            "cluster": rng.integers(0, 17, n_stores),
        },
    )
    items = Relation(
        "Items",
        Schema(
            [
                key("item"),
                categorical("family"),
                categorical("class_"),
                categorical("perishable"),
            ]
        ),
        {
            "item": np.arange(n_items),
            "family": rng.integers(0, 33, n_items),
            "class_": rng.integers(0, max(10, n_items // 8), n_items),
            "perishable": rng.integers(0, 2, n_items),
        },
    )
    # Transactions: one row per (date, store) pair that had sales
    txn_date = np.repeat(np.arange(n_dates), n_stores)
    txn_store = np.tile(np.arange(n_stores), n_dates)
    transactions = Relation(
        "Transactions",
        Schema([key("date"), key("store"), continuous("txns")]),
        {
            "date": txn_date,
            "store": txn_store,
            "txns": np.round(rng.gamma(8.0, 180.0, len(txn_date))),
        },
    )
    sale_date = rng.integers(0, n_dates, n_sales)
    sale_store = rng.integers(0, n_stores, n_sales)
    sale_item = zipf_choice(rng, n_items, n_sales)
    promo = (rng.random(n_sales) < 0.12).astype(np.int64)
    base_units = rng.gamma(2.0, 4.0, n_sales)
    units = np.round(base_units * (1.0 + 0.5 * promo), 3)
    sales = Relation(
        "Sales",
        Schema(
            [
                key("date"),
                key("store"),
                key("item"),
                continuous("units"),
                categorical("promo"),
            ]
        ),
        {
            "date": sale_date,
            "store": sale_store,
            "item": sale_item,
            "units": units,
            "promo": promo,
        },
    )
    database = Database(
        [sales, holidays, stores, items, transactions, oil], name="favorita"
    )
    join_tree = join_tree_from_database(database, edges=JOIN_TREE_EDGES)
    return Dataset(
        name="favorita",
        database=database,
        join_tree=join_tree,
        # the paper uses all attributes but date and item as features
        continuous_features=["txns", "price"],
        categorical_features=[
            "store",
            "promo",
            "htype",
            "locale",
            "transferred",
            "city",
            "state",
            "stype",
            "cluster",
            "family",
            "class_",
            "perishable",
        ],
        label="units",
        discrete_attrs=[
            "promo",
            "htype",
            "locale",
            "transferred",
            "city",
            "state",
            "stype",
            "cluster",
            "family",
            "perishable",
        ],
        cube_dimensions=["family", "stype", "locale"],
        cube_measures=["units", "txns", "price", "promo", "perishable"],
    )
