"""Synthetic Retailer: the 5-relation snowflake of Figure 6(a).

    Inventory(locn, dateid, ksn, inventoryunits)      -- fact
    Location(locn, zip, rgn_cd, clim_zn_nbr, tot_area_sq_ft,
             sell_area_sq_ft, avghhi, distance_comp)
    Census(zip, population, white, asian, pacific, black, median_age,
           occupied_houses, houses, families, households, husb_wife,
           males, females)
    Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind, thunder)
    Items(ksn, price, category, subcategory, category_cluster)

43 attributes; Census hangs off Location (snowflake), Weather and Items
join the fact table directly, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema, categorical, continuous, key
from ..jointree.join_tree import join_tree_from_database
from .base import Dataset, scaled, zipf_choice

JOIN_TREE_EDGES = [
    ("Inventory", "Location"),
    ("Location", "Census"),
    ("Inventory", "Weather"),
    ("Inventory", "Items"),
]


def retailer(scale: float = 1.0, seed: int = 11) -> Dataset:
    """Generate the synthetic Retailer dataset (fact ~70k rows at scale 1)."""
    rng = np.random.default_rng(seed)
    n_locations = scaled(80, scale, minimum=6)
    n_zips = max(4, n_locations // 2)
    n_dates = scaled(120, scale, minimum=20)
    n_items = scaled(500, scale, minimum=25)
    n_fact = scaled(70_000, scale, minimum=500)

    location = Relation(
        "Location",
        Schema(
            [
                key("locn"),
                key("zip"),
                categorical("rgn_cd"),
                categorical("clim_zn_nbr"),
                continuous("tot_area_sq_ft"),
                continuous("sell_area_sq_ft"),
                continuous("avghhi"),
                continuous("distance_comp"),
            ]
        ),
        {
            "locn": np.arange(n_locations),
            "zip": rng.integers(0, n_zips, n_locations),
            "rgn_cd": rng.integers(0, 6, n_locations),
            "clim_zn_nbr": rng.integers(0, 9, n_locations),
            "tot_area_sq_ft": np.round(rng.normal(95_000, 15_000, n_locations)),
            "sell_area_sq_ft": np.round(rng.normal(60_000, 9_000, n_locations)),
            "avghhi": np.round(rng.normal(55_000, 12_000, n_locations)),
            "distance_comp": np.round(rng.gamma(2.0, 3.0, n_locations), 2),
        },
    )
    census_cols = {
        "zip": np.arange(n_zips),
        "population": np.round(rng.gamma(4.0, 9_000.0, n_zips)),
        "white": np.round(rng.gamma(3.0, 5_000.0, n_zips)),
        "asian": np.round(rng.gamma(2.0, 1_200.0, n_zips)),
        "pacific": np.round(rng.gamma(1.5, 150.0, n_zips)),
        "black": np.round(rng.gamma(2.0, 2_500.0, n_zips)),
        "median_age": np.round(rng.normal(38.0, 5.0, n_zips), 1),
        "occupied_houses": np.round(rng.gamma(3.0, 4_000.0, n_zips)),
        "houses": np.round(rng.gamma(3.0, 4_500.0, n_zips)),
        "families": np.round(rng.gamma(3.0, 3_000.0, n_zips)),
        "households": np.round(rng.gamma(3.0, 3_800.0, n_zips)),
        "husb_wife": np.round(rng.gamma(3.0, 2_000.0, n_zips)),
        "males": np.round(rng.gamma(3.0, 4_400.0, n_zips)),
        "females": np.round(rng.gamma(3.0, 4_600.0, n_zips)),
    }
    census = Relation(
        "Census",
        Schema(
            [key("zip")]
            + [continuous(name) for name in census_cols if name != "zip"]
        ),
        census_cols,
    )
    weather_date = np.repeat(np.arange(n_dates), n_locations)
    weather_locn = np.tile(np.arange(n_locations), n_dates)
    n_weather = len(weather_date)
    weather = Relation(
        "Weather",
        Schema(
            [
                key("locn"),
                key("dateid"),
                categorical("rain"),
                categorical("snow"),
                continuous("maxtemp"),
                continuous("mintemp"),
                continuous("meanwind"),
                categorical("thunder"),
            ]
        ),
        {
            "locn": weather_locn,
            "dateid": weather_date,
            "rain": rng.integers(0, 2, n_weather),
            "snow": rng.integers(0, 2, n_weather),
            "maxtemp": np.round(rng.normal(18.0, 9.0, n_weather), 1),
            "mintemp": np.round(rng.normal(8.0, 8.0, n_weather), 1),
            "meanwind": np.round(rng.gamma(2.0, 4.0, n_weather), 1),
            "thunder": rng.integers(0, 2, n_weather),
        },
    )
    items = Relation(
        "Items",
        Schema(
            [
                key("ksn"),
                continuous("price"),
                categorical("category"),
                categorical("subcategory"),
                categorical("category_cluster"),
            ]
        ),
        {
            "ksn": np.arange(n_items),
            "price": np.round(rng.gamma(2.0, 12.0, n_items), 2),
            "category": rng.integers(0, 12, n_items),
            "subcategory": rng.integers(0, 40, n_items),
            "category_cluster": rng.integers(0, 8, n_items),
        },
    )
    fact_locn = rng.integers(0, n_locations, n_fact)
    fact_date = rng.integers(0, n_dates, n_fact)
    fact_ksn = zipf_choice(rng, n_items, n_fact)
    inventory = Relation(
        "Inventory",
        Schema(
            [
                key("locn"),
                key("dateid"),
                key("ksn"),
                continuous("inventoryunits"),
            ]
        ),
        {
            "locn": fact_locn,
            "dateid": fact_date,
            "ksn": fact_ksn,
            "inventoryunits": np.round(rng.gamma(2.5, 8.0, n_fact)),
        },
    )
    database = Database(
        [inventory, location, census, weather, items], name="retailer"
    )
    join_tree = join_tree_from_database(database, edges=JOIN_TREE_EDGES)
    continuous_features = [
        "tot_area_sq_ft",
        "sell_area_sq_ft",
        "avghhi",
        "distance_comp",
        "maxtemp",
        "mintemp",
        "meanwind",
        "price",
    ] + [name for name in census_cols if name != "zip"]
    return Dataset(
        name="retailer",
        database=database,
        join_tree=join_tree,
        continuous_features=continuous_features,
        categorical_features=[
            "rgn_cd",
            "clim_zn_nbr",
            "rain",
            "snow",
            "thunder",
            "category",
            "subcategory",
            "category_cluster",
        ],
        label="inventoryunits",
        discrete_attrs=[
            "rgn_cd",
            "clim_zn_nbr",
            "rain",
            "snow",
            "thunder",
            "category",
            "subcategory",
            "category_cluster",
            "zip",
        ],
        cube_dimensions=["category", "rgn_cd", "rain"],
        cube_measures=["inventoryunits", "price", "avghhi", "maxtemp", "population"],
    )
