"""Synthetic TPC-DS excerpt: the 10-relation snowflake of Figure 6(d).

    Store_Sales(ss_sold_date, ss_sold_time, ss_item, ss_customer,
                ss_store, ss_hdemo, ss_quantity, ss_list_price,
                ss_sales_price, ss_net_profit)               -- fact
    Customer(ss_customer, c_address, c_demo, c_birth_year,
             preferred)                                       -- dimension
    C_Address(c_address, ca_city, ca_state, ca_gmt_offset)
    C_Demo(c_demo, cd_gender, cd_marital, cd_education, cd_purchase_est)
    Date(ss_sold_date, d_year, d_moy, d_dow, d_holiday)
    Time(ss_sold_time, t_hour, t_am_pm)
    Item(ss_item, i_brand, i_class, i_category, i_current_price)
    Store(ss_store, s_city, s_tax, s_floor_space)
    H_Demo(ss_hdemo, hd_income_band, hd_dep_count, hd_vehicle_count)
    Inc_Band(hd_income_band, ib_lower_bound, ib_upper_bound)

The ``preferred`` flag on Customer is the classification-tree label, as
in the Relational Dataset Repository task the paper uses.
"""

from __future__ import annotations

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema, categorical, continuous, key
from ..jointree.join_tree import join_tree_from_database
from .base import Dataset, scaled, zipf_choice

JOIN_TREE_EDGES = [
    ("Store_Sales", "Customer"),
    ("Customer", "C_Address"),
    ("Customer", "C_Demo"),
    ("Store_Sales", "Date"),
    ("Store_Sales", "Time"),
    ("Store_Sales", "Item"),
    ("Store_Sales", "Store"),
    ("Store_Sales", "H_Demo"),
    ("H_Demo", "Inc_Band"),
]


def tpcds(scale: float = 1.0, seed: int = 31) -> Dataset:
    """Generate the synthetic TPC-DS excerpt (fact ~50k rows at scale 1)."""
    rng = np.random.default_rng(seed)
    n_dates = scaled(240, scale, minimum=30)
    n_times = scaled(96, scale, minimum=12)
    n_items = scaled(600, scale, minimum=30)
    n_stores = scaled(24, scale, minimum=4)
    n_customers = scaled(1_500, scale, minimum=60)
    n_addresses = max(20, n_customers // 2)
    n_cdemos = max(12, n_customers // 8)
    n_hdemos = scaled(72, scale, minimum=8)
    n_bands = 20
    n_fact = scaled(50_000, scale, minimum=500)

    date = Relation(
        "Date",
        Schema(
            [
                key("ss_sold_date"),
                categorical("d_year"),
                categorical("d_moy"),
                categorical("d_dow"),
                categorical("d_holiday"),
            ]
        ),
        {
            "ss_sold_date": np.arange(n_dates),
            "d_year": 1998 + (np.arange(n_dates) // 365),
            "d_moy": (np.arange(n_dates) // 30) % 12,
            "d_dow": np.arange(n_dates) % 7,
            "d_holiday": (rng.random(n_dates) < 0.08).astype(np.int64),
        },
    )
    time_rel = Relation(
        "Time",
        Schema([key("ss_sold_time"), categorical("t_hour"), categorical("t_am_pm")]),
        {
            "ss_sold_time": np.arange(n_times),
            "t_hour": (np.arange(n_times) * 24) // n_times,
            "t_am_pm": ((np.arange(n_times) * 24) // n_times >= 12).astype(
                np.int64
            ),
        },
    )
    item = Relation(
        "Item",
        Schema(
            [
                key("ss_item"),
                categorical("i_brand"),
                categorical("i_class"),
                categorical("i_category"),
                continuous("i_current_price"),
            ]
        ),
        {
            "ss_item": np.arange(n_items),
            "i_brand": rng.integers(0, 50, n_items),
            "i_class": rng.integers(0, 16, n_items),
            "i_category": rng.integers(0, 10, n_items),
            "i_current_price": np.round(rng.gamma(2.0, 25.0, n_items), 2),
        },
    )
    store = Relation(
        "Store",
        Schema(
            [
                key("ss_store"),
                categorical("s_city"),
                continuous("s_tax"),
                continuous("s_floor_space"),
            ]
        ),
        {
            "ss_store": np.arange(n_stores),
            "s_city": rng.integers(0, 8, n_stores),
            "s_tax": np.round(rng.uniform(0.0, 0.11, n_stores), 3),
            "s_floor_space": np.round(
                rng.normal(7_500_000, 1_500_000, n_stores)
            ),
        },
    )
    inc_band = Relation(
        "Inc_Band",
        Schema(
            [
                key("hd_income_band"),
                continuous("ib_lower_bound"),
                continuous("ib_upper_bound"),
            ]
        ),
        {
            "hd_income_band": np.arange(n_bands),
            "ib_lower_bound": np.arange(n_bands) * 10_000.0,
            "ib_upper_bound": (np.arange(n_bands) + 1) * 10_000.0,
        },
    )
    h_demo = Relation(
        "H_Demo",
        Schema(
            [
                key("ss_hdemo"),
                key("hd_income_band"),
                continuous("hd_dep_count"),
                continuous("hd_vehicle_count"),
            ]
        ),
        {
            "ss_hdemo": np.arange(n_hdemos),
            "hd_income_band": rng.integers(0, n_bands, n_hdemos),
            "hd_dep_count": rng.integers(0, 9, n_hdemos).astype(np.float64),
            "hd_vehicle_count": rng.integers(0, 4, n_hdemos).astype(
                np.float64
            ),
        },
    )
    c_address = Relation(
        "C_Address",
        Schema(
            [
                key("c_address"),
                categorical("ca_city"),
                categorical("ca_state"),
                continuous("ca_gmt_offset"),
            ]
        ),
        {
            "c_address": np.arange(n_addresses),
            "ca_city": rng.integers(0, 60, n_addresses),
            "ca_state": rng.integers(0, 50, n_addresses),
            "ca_gmt_offset": rng.integers(-10, -4, n_addresses).astype(
                np.float64
            ),
        },
    )
    c_demo = Relation(
        "C_Demo",
        Schema(
            [
                key("c_demo"),
                categorical("cd_gender"),
                categorical("cd_marital"),
                categorical("cd_education"),
                continuous("cd_purchase_est"),
            ]
        ),
        {
            "c_demo": np.arange(n_cdemos),
            "cd_gender": rng.integers(0, 2, n_cdemos),
            "cd_marital": rng.integers(0, 5, n_cdemos),
            "cd_education": rng.integers(0, 7, n_cdemos),
            "cd_purchase_est": np.round(rng.gamma(2.0, 2_500.0, n_cdemos)),
        },
    )
    cust_demo = rng.integers(0, n_cdemos, n_customers)
    cust_birth = rng.integers(1930, 2000, n_customers)
    # "preferred" correlates with demographics so trees have signal
    preferred_probability = 0.25 + 0.5 * (cust_demo % 3 == 0)
    customer = Relation(
        "Customer",
        Schema(
            [
                key("ss_customer"),
                key("c_address"),
                key("c_demo"),
                categorical("c_birth_year"),
                categorical("preferred"),
            ]
        ),
        {
            "ss_customer": np.arange(n_customers),
            "c_address": rng.integers(0, n_addresses, n_customers),
            "c_demo": cust_demo,
            "c_birth_year": cust_birth,
            "preferred": (
                rng.random(n_customers) < preferred_probability
            ).astype(np.int64),
        },
    )
    fact_customer = zipf_choice(rng, n_customers, n_fact)
    quantity = rng.integers(1, 100, n_fact).astype(np.float64)
    list_price = np.round(rng.gamma(2.0, 30.0, n_fact), 2)
    sales_price = np.round(list_price * rng.uniform(0.4, 1.0, n_fact), 2)
    store_sales = Relation(
        "Store_Sales",
        Schema(
            [
                key("ss_sold_date"),
                key("ss_sold_time"),
                key("ss_item"),
                key("ss_customer"),
                key("ss_store"),
                key("ss_hdemo"),
                continuous("ss_quantity"),
                continuous("ss_list_price"),
                continuous("ss_sales_price"),
                continuous("ss_net_profit"),
            ]
        ),
        {
            "ss_sold_date": rng.integers(0, n_dates, n_fact),
            "ss_sold_time": rng.integers(0, n_times, n_fact),
            "ss_item": zipf_choice(rng, n_items, n_fact),
            "ss_customer": fact_customer,
            "ss_store": rng.integers(0, n_stores, n_fact),
            "ss_hdemo": rng.integers(0, n_hdemos, n_fact),
            "ss_quantity": quantity,
            "ss_list_price": list_price,
            "ss_sales_price": sales_price,
            "ss_net_profit": np.round(
                quantity * (sales_price - 0.7 * list_price), 2
            ),
        },
    )
    database = Database(
        [
            store_sales,
            customer,
            c_address,
            c_demo,
            date,
            time_rel,
            item,
            store,
            h_demo,
            inc_band,
        ],
        name="tpcds",
    )
    join_tree = join_tree_from_database(database, edges=JOIN_TREE_EDGES)
    return Dataset(
        name="tpcds",
        database=database,
        join_tree=join_tree,
        continuous_features=[
            "ss_quantity",
            "ss_list_price",
            "ss_sales_price",
            "ss_net_profit",
            "i_current_price",
            "s_tax",
            "s_floor_space",
            "hd_dep_count",
            "hd_vehicle_count",
            "ib_lower_bound",
            "ib_upper_bound",
            "cd_purchase_est",
            "ca_gmt_offset",
        ],
        categorical_features=[
            "d_moy",
            "d_dow",
            "d_holiday",
            "t_am_pm",
            "i_class",
            "i_category",
            "s_city",
            "cd_gender",
            "cd_marital",
            "cd_education",
            "ca_state",
        ],
        label="preferred",
        discrete_attrs=[
            "d_moy",
            "d_dow",
            "d_holiday",
            "t_am_pm",
            "i_class",
            "i_category",
            "s_city",
            "cd_gender",
            "cd_marital",
            "cd_education",
            "ca_state",
            "preferred",
        ],
        cube_dimensions=["i_category", "s_city", "d_moy"],
        cube_measures=["ss_quantity", "ss_net_profit", "ss_sales_price", "ss_list_price", "i_current_price"],
    )
