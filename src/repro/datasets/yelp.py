"""Synthetic Yelp: star schema with many-to-many joins (Figure 6c).

    Review(user, business, stars, useful, review_year)   -- fact
    User(user, review_count, user_avg_stars, fans, user_years)
    Business(business, b_city, b_stars, b_review_cnt, is_open)
    Category(business, category)                          -- many-to-many
    Attribute(business, attribute)                        -- many-to-many

The distinguishing property of Yelp in Table 1 is that the join result is
far larger than the database: every review row fans out over all of its
business's categories and attributes.  LMFAO's decomposition avoids
materializing that blow-up; materialized baselines pay for it.
"""

from __future__ import annotations

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema, categorical, continuous, key
from ..jointree.join_tree import join_tree_from_database
from .base import Dataset, scaled, zipf_choice

JOIN_TREE_EDGES = [
    ("Review", "User"),
    ("Review", "Business"),
    ("Business", "Category"),
    ("Business", "Attribute"),
]


def yelp(scale: float = 1.0, seed: int = 23) -> Dataset:
    """Generate the synthetic Yelp dataset (fact ~30k rows at scale 1)."""
    rng = np.random.default_rng(seed)
    n_users = scaled(2_000, scale, minimum=50)
    n_businesses = scaled(600, scale, minimum=20)
    n_reviews = scaled(30_000, scale, minimum=400)

    users = Relation(
        "User",
        Schema(
            [
                key("user"),
                continuous("review_count"),
                continuous("user_avg_stars"),
                continuous("fans"),
                continuous("user_years"),
            ]
        ),
        {
            "user": np.arange(n_users),
            "review_count": np.round(rng.gamma(1.5, 20.0, n_users)),
            "user_avg_stars": np.round(
                np.clip(rng.normal(3.7, 0.7, n_users), 1.0, 5.0), 2
            ),
            "fans": np.round(rng.gamma(1.2, 4.0, n_users)),
            "user_years": np.round(rng.uniform(0.0, 14.0, n_users), 1),
        },
    )
    businesses = Relation(
        "Business",
        Schema(
            [
                key("business"),
                categorical("b_city"),
                continuous("b_stars"),
                continuous("b_review_cnt"),
                categorical("is_open"),
            ]
        ),
        {
            "business": np.arange(n_businesses),
            "b_city": rng.integers(0, 20, n_businesses),
            "b_stars": np.round(
                np.clip(rng.normal(3.6, 0.8, n_businesses), 1.0, 5.0), 1
            ),
            "b_review_cnt": np.round(rng.gamma(1.5, 60.0, n_businesses)),
            "is_open": rng.integers(0, 2, n_businesses),
        },
    )
    # many-to-many: each business has 2-6 categories, 3-9 attributes
    cat_counts = rng.integers(2, 7, n_businesses)
    cat_business = np.repeat(np.arange(n_businesses), cat_counts)
    categories = Relation(
        "Category",
        Schema([key("business"), categorical("category")]),
        {
            "business": cat_business,
            "category": rng.integers(0, 40, len(cat_business)),
        },
    )
    attr_counts = rng.integers(3, 10, n_businesses)
    attr_business = np.repeat(np.arange(n_businesses), attr_counts)
    attributes = Relation(
        "Attribute",
        Schema([key("business"), categorical("attribute")]),
        {
            "business": attr_business,
            "attribute": rng.integers(0, 30, len(attr_business)),
        },
    )
    review_user = zipf_choice(rng, n_users, n_reviews)
    review_business = zipf_choice(rng, n_businesses, n_reviews)
    reviews = Relation(
        "Review",
        Schema(
            [
                key("user"),
                key("business"),
                continuous("stars"),
                continuous("useful"),
                categorical("review_year"),
            ]
        ),
        {
            "user": review_user,
            "business": review_business,
            "stars": rng.integers(1, 6, n_reviews).astype(np.float64),
            "useful": np.round(rng.gamma(1.0, 2.0, n_reviews)),
            "review_year": rng.integers(2010, 2018, n_reviews),
        },
    )
    database = Database(
        [reviews, users, businesses, categories, attributes], name="yelp"
    )
    join_tree = join_tree_from_database(database, edges=JOIN_TREE_EDGES)
    return Dataset(
        name="yelp",
        database=database,
        join_tree=join_tree,
        continuous_features=[
            "useful",
            "review_count",
            "user_avg_stars",
            "fans",
            "user_years",
            "b_stars",
            "b_review_cnt",
        ],
        categorical_features=[
            "review_year",
            "b_city",
            "is_open",
            "category",
            "attribute",
        ],
        label="stars",
        discrete_attrs=[
            "review_year",
            "b_city",
            "is_open",
            "category",
            "attribute",
        ],
        cube_dimensions=["b_city", "is_open", "review_year"],
        cube_measures=["stars", "useful", "b_review_cnt", "b_stars", "fans"],
    )
