"""Synthetic benchmark datasets mirroring the paper's four (Appendix A)."""

from .base import Dataset, train_test_split_by
from .favorita import favorita
from .retailer import retailer
from .tpcds import tpcds
from .yelp import yelp

ALL_DATASETS = {
    "retailer": retailer,
    "favorita": favorita,
    "yelp": yelp,
    "tpcds": tpcds,
}

__all__ = [
    "Dataset",
    "retailer",
    "favorita",
    "yelp",
    "tpcds",
    "ALL_DATASETS",
    "train_test_split_by",
]
