"""Common infrastructure for the synthetic benchmark datasets.

The paper evaluates on Retailer (proprietary), Favorita (Kaggle), Yelp
(dataset challenge) and a TPC-DS excerpt.  None of those can ship with
this reproduction, so each generator below synthesizes a database with
the *same schema and join tree* (Appendix A, Figure 6) and with realistic
key skew, at a laptop-friendly scale.  Plan shapes (views, groups,
aggregate counts) depend only on schema + workload and are therefore
faithful; timing shapes follow from the same sharing structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.database import Database
from ..jointree.join_tree import JoinTree, join_tree_from_database


@dataclass
class Dataset:
    """A benchmark dataset: database + join tree + feature metadata."""

    name: str
    database: Database
    join_tree: JoinTree
    #: continuous model features (attribute names)
    continuous_features: List[str]
    #: categorical model features
    categorical_features: List[str]
    #: regression / classification target
    label: str
    #: attributes used for the mutual-information workload
    discrete_attrs: List[str]
    #: (dimensions, measures) used for the data-cube workload
    cube_dimensions: List[str] = field(default_factory=list)
    cube_measures: List[str] = field(default_factory=list)

    @property
    def features(self) -> List[str]:
        return self.continuous_features + self.categorical_features

    def fact_table(self) -> str:
        """The largest relation (the snowflake/star fact table)."""
        return max(self.database, key=lambda r: r.n_rows).name

    def summary(self) -> Dict[str, object]:
        """Table 1-style characteristics of this dataset instance."""
        db = self.database
        return {
            "dataset": self.name,
            "relations": len(db),
            "tuples": db.total_tuples(),
            "size_mb": db.total_bytes() / 1e6,
            "attributes": len(db.attributes()),
            "categorical": sum(
                1
                for a in db.attributes()
                if db.attribute_kind(a) == "categorical"
            ),
        }


def scaled(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a row count, keeping a sensible minimum."""
    return max(minimum, int(round(base * scale)))


def zipf_choice(
    rng: np.random.Generator,
    n_values: int,
    size: int,
    exponent: float = 1.1,
) -> np.ndarray:
    """Skewed key generator: Zipf-like popularity over ``n_values`` keys.

    Real retail fact tables are heavily skewed (a few products dominate);
    this keeps the generated joins realistic for group-by workloads.
    """
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    probabilities = ranks ** (-exponent)
    probabilities /= probabilities.sum()
    return rng.choice(n_values, size=size, p=probabilities)


def train_test_split_by(
    dataset: Dataset, attr: str, test_fraction: float = 0.1
) -> Tuple[Database, Database]:
    """Split the fact table on the top values of ``attr`` (e.g. the last
    month of dates, as the paper does for its test sets)."""
    fact_name = dataset.fact_table()
    fact = dataset.database.relation(fact_name)
    column = fact.column(attr)
    cutoff = np.quantile(column, 1.0 - test_fraction)
    train_fact = fact.filter(column < cutoff)
    test_fact = fact.filter(column >= cutoff)
    return (
        dataset.database.replace(train_fact),
        dataset.database.replace(test_fact),
    )
