"""Relation schemas and attribute metadata.

LMFAO distinguishes *continuous* attributes (usable directly in arithmetic
aggregates) from *categorical* attributes (one-hot encoded, i.e. turned into
group-by attributes, eqs. (3)-(4) of the paper).  The schema layer records
this distinction together with names and dtypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

#: Kinds of attributes recognised by the engine.
CONTINUOUS = "continuous"
CATEGORICAL = "categorical"
KEY = "key"

_VALID_KINDS = (CONTINUOUS, CATEGORICAL, KEY)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Attribute name; natural joins match attributes by name.
    kind:
        One of ``"continuous"``, ``"categorical"`` or ``"key"``.  Keys are
        join attributes; they behave like categorical attributes when used
        in group-by clauses but are excluded from default feature sets.
    dtype:
        NumPy dtype used to store the column.  Integer for keys and
        categorical attributes, float for continuous ones by default.
    """

    name: str
    kind: str = CONTINUOUS
    dtype: np.dtype = field(default_factory=lambda: np.dtype("float64"))

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown attribute kind {self.kind!r}")
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def is_categorical(self) -> bool:
        return self.kind in (CATEGORICAL, KEY)

    @property
    def is_continuous(self) -> bool:
        return self.kind == CONTINUOUS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attribute({self.name!r}, {self.kind})"


def key(name: str) -> Attribute:
    """Shorthand for an integer join-key attribute."""
    return Attribute(name, KEY, np.dtype("int64"))


def categorical(name: str) -> Attribute:
    """Shorthand for an integer-coded categorical attribute."""
    return Attribute(name, CATEGORICAL, np.dtype("int64"))


def continuous(name: str) -> Attribute:
    """Shorthand for a float-valued continuous attribute."""
    return Attribute(name, CONTINUOUS, np.dtype("float64"))


class Schema:
    """An ordered list of :class:`Attribute` with set semantics on names.

    The paper treats relation schemas "as lists of attributes, also as
    sets"; this class supports both views.
    """

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = list(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._by_name = {a.name: a for a in attrs}

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"attribute {name!r} not in schema {self.names}"
            ) from None

    def get(self, name: str) -> Optional[Attribute]:
        return self._by_name.get(name)

    def name_set(self) -> frozenset:
        return frozenset(self._by_name)

    def intersection(self, other: "Schema") -> Tuple[str, ...]:
        """Names shared with ``other``, in this schema's order."""
        other_names = other.name_set()
        return tuple(n for n in self.names if n in other_names)

    def project(self, names: Iterable[str]) -> "Schema":
        """A sub-schema restricted to ``names`` (kept in given order)."""
        return Schema([self[n] for n in names])

    def union(self, other: "Schema") -> "Schema":
        """Schema with this schema's attributes then the new ones of other."""
        extra = [a for a in other if a.name not in self._by_name]
        return Schema(list(self._attributes) + extra)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({list(self.names)})"
