"""CSV persistence for relations and databases.

LMFAO's generated C++ includes specialized data-loading code; here we keep a
small, dependency-free CSV loader so example datasets can be saved and
reloaded deterministically.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from .database import Database
from .relation import Relation
from .schema import Attribute, Schema


def save_relation(relation: Relation, path: str) -> None:
    """Write a relation to CSV with a typed header.

    The header encodes each attribute as ``name:kind:dtype`` so the schema
    round-trips.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            f"{a.name}:{a.kind}:{a.dtype.name}" for a in relation.schema
        )
        columns = [relation.column(n) for n in relation.schema.names]
        for row in zip(*(c.tolist() for c in columns)):
            writer.writerow(row)


def load_relation(path: str, name: Optional[str] = None) -> Relation:
    """Read a relation previously written by :func:`save_relation`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        attrs: List[Attribute] = []
        for cell in header:
            parts = cell.split(":")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}: malformed header cell {cell!r}; expected "
                    "name:kind:dtype"
                )
            attr_name, kind, dtype = parts
            attrs.append(Attribute(attr_name, kind, np.dtype(dtype)))
        raw: List[List[str]] = [row for row in reader if row]
    columns: Dict[str, np.ndarray] = {}
    for idx, attr in enumerate(attrs):
        cells = [row[idx] for row in raw]
        if np.issubdtype(attr.dtype, np.integer):
            values = np.asarray([int(c) for c in cells], dtype=attr.dtype)
        else:
            values = np.asarray([float(c) for c in cells], dtype=attr.dtype)
        columns[attr.name] = values
    rel_name = name or os.path.splitext(os.path.basename(path))[0]
    return Relation(rel_name, Schema(attrs), columns)


def save_database(database: Database, directory: str) -> None:
    """Write every relation of a database as ``<directory>/<name>.csv``."""
    os.makedirs(directory, exist_ok=True)
    for relation in database:
        save_relation(relation, os.path.join(directory, f"{relation.name}.csv"))


def load_database(
    directory: str,
    relation_names: Optional[Sequence[str]] = None,
    name: str = "db",
) -> Database:
    """Load a database saved by :func:`save_database`."""
    if relation_names is None:
        relation_names = sorted(
            os.path.splitext(f)[0]
            for f in os.listdir(directory)
            if f.endswith(".csv")
        )
    relations = [
        load_relation(os.path.join(directory, f"{rel}.csv"), name=rel)
        for rel in relation_names
    ]
    return Database(relations, name=name)
