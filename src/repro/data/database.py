"""The database catalog: a set of relations plus cardinality statistics.

The Join Tree layer of LMFAO takes "the database schema and cardinality
constraints (e.g., sizes of relations and attribute domains)" as input;
:class:`Database` is where those live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .relation import Relation


@dataclass(frozen=True)
class DeltaBatch:
    """A batch of inserts and/or retractions against one relation.

    ``inserts`` maps attribute names to equal-length arrays of new rows;
    ``delete_indices`` are row positions (in the relation's current row
    order) to retract.  Either part may be absent.  Use
    :meth:`Relation.match_rows` to turn value tuples into indices for
    deletion by value.
    """

    relation: str
    inserts: Optional[Mapping[str, np.ndarray]] = None
    delete_indices: Optional[np.ndarray] = None

    @classmethod
    def insert(cls, relation: str, columns: Mapping[str, np.ndarray]) -> "DeltaBatch":
        return cls(relation=relation, inserts=columns)

    @classmethod
    def delete(cls, relation: str, indices: np.ndarray) -> "DeltaBatch":
        return cls(relation=relation, delete_indices=indices)

    @property
    def is_empty(self) -> bool:
        no_ins = self.inserts is None or all(
            len(np.asarray(c)) == 0 for c in self.inserts.values()
        )
        no_del = (
            self.delete_indices is None
            or len(np.asarray(self.delete_indices)) == 0
        )
        return no_ins and no_del

    def n_changes(self) -> int:
        n = 0
        if self.inserts:
            n += max(
                (len(np.asarray(c)) for c in self.inserts.values()),
                default=0,
            )
        if self.delete_indices is not None:
            n += len(np.unique(np.asarray(self.delete_indices)))
        return n


@dataclass(frozen=True)
class AppliedDelta:
    """The result of applying a :class:`DeltaBatch` to a database.

    ``inserted``/``deleted`` are the delta partitions as relations with
    the original schema — exactly what delta re-evaluation needs.
    ``previous`` is the database the delta was applied *to*: consumers
    that patch cached state forward (``ViewCache.on_delta``) use it to
    check a cached entry really holds the pre-delta version before
    patching, instead of assuming every entry is current.
    """

    database: "Database"
    relation: str
    inserted: Optional[Relation]
    deleted: Optional[Relation]
    previous: Optional["Database"] = None


class Database:
    """A named collection of relations joined by natural join."""

    def __init__(self, relations: Iterable[Relation], name: str = "db"):
        self.name = name
        self._relations: Dict[str, Relation] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise ValueError(f"duplicate relation name {rel.name!r}")
            self._relations[rel.name] = rel
        self._domain_cache: Dict[Tuple[str, str], int] = {}

    # -- catalog ----------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"no relation {name!r}; database has {list(self._relations)}"
            ) from None

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def replace(self, relation: Relation) -> "Database":
        """A new database with one relation replaced (same name)."""
        if relation.name not in self._relations:
            raise KeyError(f"no relation {relation.name!r} to replace")
        rels = [
            relation if r.name == relation.name else r for r in self
        ]
        return Database(rels, name=self.name)

    def with_relation(self, relation: Relation) -> "Database":
        """A new database with an extra relation."""
        return Database(list(self) + [relation], name=self.name)

    # -- updates -----------------------------------------------------------

    def apply_delta(self, delta: DeltaBatch) -> AppliedDelta:
        """Apply inserts and retractions to one relation.

        Deletions are taken against the *current* row order, before the
        inserts are appended, so a single batch can both retract old rows
        and add new ones.  Returns the updated database plus the inserted
        and deleted partitions for incremental re-evaluation.
        """
        relation = self.relation(delta.relation)
        deleted: Optional[Relation] = None
        inserted: Optional[Relation] = None
        if delta.delete_indices is not None and len(
            np.asarray(delta.delete_indices)
        ):
            relation, deleted = relation.delete_rows(delta.delete_indices)
        if delta.inserts is not None:
            before = relation.n_rows
            relation = relation.append_rows(delta.inserts)
            n_new = relation.n_rows - before
            if n_new:
                inserted = relation.take(
                    np.arange(before, relation.n_rows)
                )
        return AppliedDelta(
            database=self.replace(relation),
            relation=delta.relation,
            inserted=inserted,
            deleted=deleted,
            previous=self,
        )

    # -- statistics --------------------------------------------------------

    def total_tuples(self) -> int:
        return sum(r.n_rows for r in self)

    def total_bytes(self) -> int:
        return sum(r.nbytes() for r in self)

    def attributes(self) -> List[str]:
        """All attribute names in the database, deduplicated, in order."""
        seen: Dict[str, None] = {}
        for rel in self:
            for name in rel.schema.names:
                seen.setdefault(name, None)
        return list(seen)

    def relations_with_attribute(self, attr: str) -> List[str]:
        return [r.name for r in self if r.has_column(attr)]

    def attribute_kind(self, attr: str) -> str:
        """Kind of an attribute (first relation that carries it wins)."""
        for rel in self:
            if attr in rel.schema:
                return rel.schema[attr].kind
        raise KeyError(f"attribute {attr!r} not in database")

    def domain_size(self, relation_name: str, attr: str) -> int:
        """Cached number of distinct values of ``attr`` in a relation."""
        cache_key = (relation_name, attr)
        if cache_key not in self._domain_cache:
            self._domain_cache[cache_key] = self.relation(
                relation_name
            ).domain_size(attr)
        return self._domain_cache[cache_key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{r.name}({r.n_rows})" for r in self)
        return f"Database({self.name!r}: {parts})"


def materialize_join(
    database: Database, order: Optional[List[str]] = None
) -> Relation:
    """The full natural join of all relations (the paper's training dataset).

    This is what the two-step baselines pay for; LMFAO never builds it.
    Relations are joined greedily along shared attributes so that no
    accidental cross products appear for connected schemas.
    """
    remaining = list(order) if order is not None else list(
        database.relation_names
    )
    if not remaining:
        raise ValueError("cannot join an empty database")
    result = database.relation(remaining.pop(0))
    while remaining:
        # pick the next relation sharing attributes with the current result
        for i, name in enumerate(remaining):
            rel = database.relation(name)
            if result.schema.intersection(rel.schema):
                remaining.pop(i)
                break
        else:
            name = remaining.pop(0)
            rel = database.relation(name)
        result = result.join(rel)
    return result.rename(f"join({database.name})")
