"""Columnar in-memory relations.

A :class:`Relation` stores one NumPy array per attribute.  Relations are
immutable from the engine's point of view: every operation returns a new
relation sharing column arrays where possible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import ops
from .schema import Attribute, Schema


class Relation:
    """A named relation with a :class:`Schema` and columnar payload."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
    ):
        self.name = name
        self.schema = schema
        cols: Dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for attr in schema:
            if attr.name not in columns:
                raise ValueError(
                    f"relation {name!r} missing column {attr.name!r}"
                )
            col = np.asarray(columns[attr.name])
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise ValueError(
                    f"relation {name!r}: column {attr.name!r} has "
                    f"{len(col)} rows, expected {n_rows}"
                )
            cols[attr.name] = col
        self._columns = cols
        self._n_rows = n_rows if n_rows is not None else 0

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_dict(
        cls,
        name: str,
        columns: Mapping[str, np.ndarray],
        attributes: Optional[Sequence[Attribute]] = None,
    ) -> "Relation":
        """Build a relation, inferring a schema when none is given.

        Integer columns are treated as categorical/key-like, float columns
        as continuous.
        """
        if attributes is None:
            attributes = []
            for col_name, values in columns.items():
                arr = np.asarray(values)
                if np.issubdtype(arr.dtype, np.integer):
                    attributes.append(
                        Attribute(col_name, "categorical", arr.dtype)
                    )
                else:
                    attributes.append(
                        Attribute(col_name, "continuous", arr.dtype)
                    )
        return cls(name, Schema(attributes), columns)

    # -- basic accessors ------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"relation {self.name!r} has no column {name!r}; "
                f"columns are {list(self._columns)}"
            ) from None

    def columns(self, names: Iterable[str]) -> List[np.ndarray]:
        return [self.column(n) for n in names]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def nbytes(self) -> int:
        """Approximate in-memory size of the payload in bytes."""
        return int(sum(c.nbytes for c in self._columns.values()))

    def domain_size(self, name: str) -> int:
        """Number of distinct values of an attribute (paper §3.5)."""
        return ops.distinct_count(self.column(name))

    # -- row-level operations -------------------------------------------

    def take(self, indices: np.ndarray) -> "Relation":
        """Relation restricted/reordered to the given row indices."""
        return Relation(
            self.name,
            self.schema,
            {n: c[indices] for n, c in self._columns.items()},
        )

    def filter(self, mask: np.ndarray) -> "Relation":
        """Relation restricted to rows where ``mask`` is true."""
        return Relation(
            self.name,
            self.schema,
            {n: c[mask] for n, c in self._columns.items()},
        )

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Projection (no dedup) onto the named attributes."""
        return Relation(
            name or self.name,
            self.schema.project(names),
            {n: self._columns[n] for n in names},
        )

    def rename(self, name: str) -> "Relation":
        return Relation(name, self.schema, self._columns)

    def sorted_by(self, names: Sequence[str]) -> "Relation":
        """Relation sorted lexicographically by the given attributes."""
        order = ops.lexsort_rows(self.columns(names))
        return self.take(order)

    def with_column(self, attribute: Attribute, values: np.ndarray) -> "Relation":
        """Relation extended with one additional column."""
        if attribute.name in self._columns:
            raise ValueError(f"column {attribute.name!r} already exists")
        cols = dict(self._columns)
        cols[attribute.name] = np.asarray(values)
        return Relation(
            self.name,
            Schema(list(self.schema.attributes) + [attribute]),
            cols,
        )

    # -- updates ---------------------------------------------------------

    def append_rows(self, columns: Mapping[str, np.ndarray]) -> "Relation":
        """Relation with extra rows appended (same schema).

        ``columns`` must provide one equal-length array per attribute;
        dtypes are coerced to the existing column dtypes.
        """
        n_new: Optional[int] = None
        new_cols: Dict[str, np.ndarray] = {}
        for attr in self.schema:
            if attr.name not in columns:
                raise ValueError(
                    f"append to {self.name!r} missing column {attr.name!r}"
                )
            col = np.asarray(columns[attr.name])
            if n_new is None:
                n_new = len(col)
            elif len(col) != n_new:
                raise ValueError(
                    f"append to {self.name!r}: column {attr.name!r} has "
                    f"{len(col)} rows, expected {n_new}"
                )
            existing = self._columns[attr.name]
            new_cols[attr.name] = np.concatenate(
                [existing, col.astype(existing.dtype, copy=False)]
            )
        return Relation(self.name, self.schema, new_cols)

    def delete_rows(self, indices: np.ndarray) -> Tuple["Relation", "Relation"]:
        """Split off the rows at ``indices``.

        Returns ``(remaining, deleted)``; the deleted partition preserves
        this relation's schema so it can be re-evaluated as a delta.
        Indices are deduplicated and must be in range.
        """
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        if len(idx) and (idx[0] < 0 or idx[-1] >= self.n_rows):
            raise IndexError(
                f"delete indices out of range for {self.name!r} "
                f"({self.n_rows} rows)"
            )
        keep = np.ones(self.n_rows, dtype=bool)
        keep[idx] = False
        return self.filter(keep), self.take(idx)

    def match_rows(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Indices of all rows equal to any of the given key tuples.

        ``columns`` maps a subset of attributes to equal-length arrays of
        wanted values; every stored row matching one of the value tuples
        is returned (set semantics over the provided tuples).
        """
        if not columns:
            raise ValueError("match_rows requires at least one column")
        names = list(columns)
        own = self.columns(names)
        wanted = [np.asarray(columns[n]) for n in names]
        lcodes, rcodes = ops.shared_codes(own, wanted)
        return np.flatnonzero(ops.semijoin_mask(lcodes, rcodes))

    # -- joins and aggregation ------------------------------------------

    def join(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Natural join with ``other`` (full fan-out)."""
        shared = self.schema.intersection(other.schema)
        if shared:
            lcodes, rcodes = ops.shared_codes(
                self.columns(shared), other.columns(shared)
            )
            li, ri = ops.join_indices(lcodes, rcodes)
        else:
            # cross product
            li = np.repeat(np.arange(self.n_rows), other.n_rows)
            ri = np.tile(np.arange(other.n_rows), self.n_rows)
        cols = {n: c[li] for n, c in self._columns.items()}
        for attr in other.schema:
            if attr.name not in cols:
                cols[attr.name] = other.column(attr.name)[ri]
        return Relation(
            name or f"({self.name}⋈{other.name})",
            self.schema.union(other.schema),
            cols,
        )

    def group_by_sum(
        self,
        group_by: Sequence[str],
        value_columns: Mapping[str, np.ndarray],
        name: Optional[str] = None,
    ) -> "Relation":
        """SUM the given value arrays grouped by ``group_by`` attributes.

        ``value_columns`` maps output column names to per-row value arrays
        aligned with this relation's rows.
        """
        keys, sums = ops.group_aggregate(
            self.columns(group_by), list(value_columns.values())
        )
        cols: Dict[str, np.ndarray] = {}
        attrs: List[Attribute] = []
        for attr_name, key_col in zip(group_by, keys):
            attrs.append(self.schema[attr_name])
            cols[attr_name] = key_col
        for out_name, summed in zip(value_columns, sums):
            attrs.append(Attribute(out_name, "continuous", np.float64))
            cols[out_name] = summed
        return Relation(name or f"γ({self.name})", Schema(attrs), cols)

    def distinct(self, names: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Distinct projection onto the named attributes."""
        if not names:
            raise ValueError("distinct requires at least one attribute")
        codes, uniques = ops.factorize_rows(self.columns(names))
        cols = dict(zip(names, uniques))
        return Relation(
            name or f"δ({self.name})", self.schema.project(names), cols
        )

    # -- conversion -------------------------------------------------------

    def to_rows(self) -> List[tuple]:
        """Materialize as a list of Python tuples (tests/small data only)."""
        arrays = [self._columns[n] for n in self.schema.names]
        return list(zip(*(a.tolist() for a in arrays))) if arrays else []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Relation({self.name!r}, rows={self.n_rows}, "
            f"attrs={list(self.schema.names)})"
        )
