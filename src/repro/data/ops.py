"""Vectorized relational kernels.

These are the low-level primitives the engine is built on: dictionary
encoding of composite keys (*factorization* in the NumPy sense), sort-based
equi-joins with full fan-out (one-to-many and many-to-many), and grouped
summation.  They are the Python/NumPy analog of the tight generated C++
loops of the paper's Compilation layer.

All kernels are pure functions over ``np.ndarray`` inputs so they are easy
to test against brute-force references (see ``tests/data/test_ops.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def factorize(column: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode one column.

    Returns ``(codes, uniques)`` where ``uniques[codes] == column`` and
    ``uniques`` is sorted ascending.  Codes are ``int64``.
    """
    uniques, codes = np.unique(column, return_inverse=True)
    return codes.astype(np.int64, copy=False).ravel(), uniques


def factorize_rows(
    columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Dictionary-encode composite row keys.

    Given ``k`` equal-length columns, returns ``(codes, key_columns)`` where
    rows with equal tuples share a code, codes follow the lexicographic
    order of the key tuples, and ``key_columns[j][c]`` is the value of
    column ``j`` for code ``c``.

    An empty ``columns`` encodes the nullary key: every row gets code 0.
    """
    if not columns:
        raise ValueError("factorize_rows requires at least one column")
    if len(columns) == 1:
        codes, uniques = factorize(columns[0])
        return codes, [uniques]
    # Pairwise combination keeps intermediate codes small and avoids
    # overflow: combine the first two columns, then fold in the rest.
    # ``uniq_rows`` holds, per combined code, the pair of per-column
    # code values; decoding through each column's uniques yields the
    # composite key columns.
    codes0, uniques0 = factorize(columns[0])
    codes1, uniques1 = factorize(columns[1])
    codes, uniq_rows = _combine((codes0, None), (codes1, None))
    key_cols = [uniques0[uniq_rows[:, 0]], uniques1[uniq_rows[:, 1]]]
    for col in columns[2:]:
        col_codes, col_uniques = factorize(col)
        codes, uniq_rows = _combine((codes, None), (col_codes, None))
        key_cols = [kc[uniq_rows[:, 0]] for kc in key_cols]
        key_cols.append(col_uniques[uniq_rows[:, 1]])
    return codes, key_cols


def _combine(left, right):
    """Combine two code columns into one; returns codes + representatives.

    ``left``/``right`` are ``(codes, uniques_or_None)`` pairs.  The result
    codes follow lexicographic (left, right) order.  The second return is an
    ``(n_unique, 2)`` array of representative *code* values per combined
    code.
    """
    lcodes, _ = left
    rcodes, _ = right
    lmax = int(lcodes.max(initial=-1)) + 1
    rmax = int(rcodes.max(initial=-1)) + 1
    if lmax * max(rmax, 1) < np.iinfo(np.int64).max // 4:
        mixed = lcodes * max(rmax, 1) + rcodes
        uniques, codes = np.unique(mixed, return_inverse=True)
        reps = np.stack(
            [uniques // max(rmax, 1), uniques % max(rmax, 1)], axis=1
        )
        return codes.astype(np.int64).ravel(), reps
    stacked = np.stack([lcodes, rcodes], axis=1)
    uniques, codes = np.unique(stacked, axis=0, return_inverse=True)
    return codes.astype(np.int64).ravel(), uniques


def shared_codes(
    left_columns: Sequence[np.ndarray],
    right_columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode two relations' key columns over one shared dictionary.

    Rows of the left and right inputs receive equal codes exactly when
    their key tuples are equal, which is the precondition of
    :func:`join_indices`.
    """
    if len(left_columns) != len(right_columns):
        raise ValueError("key column lists must have equal arity")
    n_left = len(left_columns[0]) if left_columns else 0
    merged = [
        np.concatenate([lc, rc]) for lc, rc in zip(left_columns, right_columns)
    ]
    if not merged:
        # nullary key: single group containing every row
        n_right = 0
        return (
            np.zeros(n_left, dtype=np.int64),
            np.zeros(n_right, dtype=np.int64),
        )
    codes, _ = factorize_rows(merged)
    return codes[:n_left], codes[n_left:]


def join_indices(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Row indices realising the equi-join of two coded key columns.

    Returns ``(left_idx, right_idx)`` such that
    ``left_codes[left_idx] == right_codes[right_idx]`` and every matching
    pair appears exactly once.  Handles many-to-many fan-out.  Output pairs
    are grouped by left row (stable in left order, then right order).
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[order]
    starts = np.searchsorted(sorted_right, left_codes, side="left")
    ends = np.searchsorted(sorted_right, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.empty(0, dtype=np.int64)
    # positions within sorted_right: starts[i] + (0..counts[i]-1)
    offsets = np.repeat(starts, counts)
    group_begin = np.concatenate(([0], np.cumsum(counts)[:-1]))
    intra = np.arange(total, dtype=np.int64) - np.repeat(group_begin, counts)
    right_idx = order[offsets + intra]
    return left_idx, right_idx


def semijoin_mask(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> np.ndarray:
    """Boolean mask of left rows that have at least one join partner."""
    matches = np.isin(left_codes, right_codes)
    return matches


def group_sums(
    codes: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Sum ``values`` per group code (dense output of length n_groups)."""
    if len(values) == 0:
        return np.zeros(n_groups, dtype=np.float64)
    return np.bincount(codes, weights=values, minlength=n_groups).astype(
        np.float64, copy=False
    )


def group_aggregate(
    key_columns: Sequence[np.ndarray],
    value_columns: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """SUM-aggregate value columns grouped by composite keys.

    Returns ``(group_key_columns, summed_value_columns)`` with one row per
    distinct key, in lexicographic key order.  With no key columns the
    output is a single (possibly zero) total per value column.
    """
    if not key_columns:
        sums = [
            np.asarray([float(np.sum(v))]) if len(v) else np.asarray([0.0])
            for v in value_columns
        ]
        return [], sums
    codes, uniques = factorize_rows(list(key_columns))
    n_groups = len(uniques[0])
    summed = [group_sums(codes, v, n_groups) for v in value_columns]
    return list(uniques), summed


def lexsort_rows(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Permutation sorting rows lexicographically by ``columns``."""
    if not columns:
        raise ValueError("lexsort_rows requires at least one column")
    # np.lexsort sorts by the *last* key first.
    return np.lexsort(tuple(reversed(list(columns))))


def distinct_count(column: np.ndarray) -> int:
    """Number of distinct values in a column (the paper's domain size)."""
    return int(len(np.unique(column)))
