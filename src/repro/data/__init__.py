"""Relational substrate: schemas, columnar relations, vectorized kernels."""

from .database import AppliedDelta, Database, DeltaBatch, materialize_join
from .relation import Relation
from .schema import (
    CATEGORICAL,
    CONTINUOUS,
    KEY,
    Attribute,
    Schema,
    categorical,
    continuous,
    key,
)

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "Database",
    "DeltaBatch",
    "AppliedDelta",
    "materialize_join",
    "key",
    "categorical",
    "continuous",
    "CATEGORICAL",
    "CONTINUOUS",
    "KEY",
]
