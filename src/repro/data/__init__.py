"""Relational substrate: schemas, columnar relations, vectorized kernels."""

from .database import Database, materialize_join
from .relation import Relation
from .schema import (
    CATEGORICAL,
    CONTINUOUS,
    KEY,
    Attribute,
    Schema,
    categorical,
    continuous,
    key,
)

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "Database",
    "materialize_join",
    "key",
    "categorical",
    "continuous",
    "CATEGORICAL",
    "CONTINUOUS",
    "KEY",
]
