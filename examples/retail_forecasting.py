"""Retail forecasting over Favorita: ridge regression + regression tree.

The paper's flagship end-to-end scenario (Table 4): learn models that
predict the number of units sold, training directly over the normalized
database — no materialized training dataset.  Compares against the
materialize-then-learn baselines.

Run:  python examples/retail_forecasting.py
"""

import time

import numpy as np

from repro import LMFAO, materialize_join
from repro.baselines import (
    MaterializedEngine,
    brute_force_cart,
    ols_closed_form,
)
from repro.datasets import favorita, train_test_split_by
from repro.ml import CARTLearner, train_ridge


def main() -> None:
    dataset = favorita(scale=0.5)
    print(f"dataset: {dataset.summary()}")

    train_db, test_db = train_test_split_by(dataset, "date", 0.15)
    continuous = ["txns", "price"]
    categorical = [
        "stype", "cluster", "promo", "family", "perishable", "locale",
    ]

    # --- ridge linear regression -------------------------------------
    print("\n== ridge linear regression (predicting units) ==")
    start = time.perf_counter()
    engine = LMFAO(train_db, dataset.join_tree)
    model = train_ridge(
        train_db,
        continuous,
        categorical,
        "units",
        engine=engine,
        method="bgd",
        l2=1e-2,
        max_iterations=20_000,
    )
    lmfao_seconds = time.perf_counter() - start

    start = time.perf_counter()
    baseline_engine = MaterializedEngine(train_db)
    flat_train = baseline_engine.materialize()
    join_seconds = baseline_engine.materialize_seconds
    baseline = ols_closed_form(
        train_db, continuous, categorical, "units", l2=1e-2, flat=flat_train
    )
    baseline_seconds = time.perf_counter() - start

    test_flat = materialize_join(test_db)
    print(f"LMFAO     train {lmfao_seconds:7.2f}s   "
          f"test RMSE {model.rmse(test_flat):.4f}  "
          f"({model.iterations} BGD iterations over the covar matrix)")
    print(f"baseline  train {baseline_seconds:7.2f}s   "
          f"test RMSE {baseline.rmse(test_flat):.4f}  "
          f"(join materialization alone: {join_seconds:.2f}s)")

    # --- regression tree ----------------------------------------------
    print("\n== regression tree (CART, depth 4) ==")
    params = dict(max_depth=4, min_samples_split=200, n_buckets=10)
    start = time.perf_counter()
    learner = CARTLearner(
        engine, continuous, categorical, "units", "regression", **params
    )
    tree = learner.fit()
    tree_seconds = time.perf_counter() - start

    start = time.perf_counter()
    brute = brute_force_cart(
        train_db, continuous, categorical, "units", "regression",
        flat=flat_train, thresholds=learner.thresholds, **params,
    )
    brute_seconds = time.perf_counter() - start

    print(f"LMFAO tree:  {tree_seconds:6.2f}s  "
          f"{tree.node_count()} nodes  test RMSE {tree.rmse(test_flat):.4f}  "
          f"({learner.batches_run} aggregate batches)")
    print(f"brute force: {brute_seconds:6.2f}s  "
          f"{brute.node_count()} nodes  test RMSE {brute.rmse(test_flat):.4f}")

    def show(node, indent="  "):
        if node.is_leaf:
            print(f"{indent}-> predict {node.prediction:.3f} "
                  f"(n={int(node.n_samples)})")
            return
        print(f"{indent}if {node.condition}:")
        show(node.left, indent + "  ")
        print(f"{indent}else:")
        show(node.right, indent + "  ")

    print("\nlearned tree (top levels):")
    show_depth_2 = tree.root
    show(show_depth_2)


if __name__ == "__main__":
    main()
