"""Incremental view maintenance: keep aggregate results live under updates.

Materializes a covar-style workload once, then streams batches of
inserts and retractions into the fact relation.  Each batch is absorbed
by re-evaluating the unchanged plan over only the delta rows and merging
into the cached views — results stay exactly in sync with a from-scratch
run, at a fraction of the cost.  A final delta against a dimension table
shows the documented fallback: views consumed elsewhere in the DAG
cannot merge, so the engine recomputes.

Run:  python examples/incremental_updates.py
"""

import time

import numpy as np

from repro import (
    Aggregate,
    DeltaBatch,
    IncrementalEngine,
    LMFAO,
    Query,
    QueryBatch,
)
from repro.datasets import favorita


def main() -> None:
    dataset = favorita(scale=0.3)
    engine = IncrementalEngine(dataset.database, dataset.join_tree)

    batch = QueryBatch(
        [
            Query("rows", [], [Aggregate.count()]),
            Query(
                "units_by_store",
                ["store"],
                [Aggregate.of("units", name="units"), Aggregate.count(name="n")],
            ),
            Query(
                "units_by_family",
                ["family"],
                [Aggregate.of("units", name="units")],
            ),
        ]
    )

    t0 = time.perf_counter()
    engine.run(batch)
    materialize_s = time.perf_counter() - t0
    fact = engine.root
    print(
        f"materialized {len(batch)} queries over {dataset.name} "
        f"in {materialize_s:.4f}s (views rooted at {fact!r})"
    )
    # a fair recompute baseline: re-execute the already-planned batch
    t0 = time.perf_counter()
    engine.refresh()
    full_s = time.perf_counter() - t0
    print(f"deltas that merge without recomputation: "
          f"{sorted(engine.mergeable_relations(batch))}")

    rng = np.random.default_rng(0)
    print("\n== streaming ten 1% delta batches into the fact relation ==")
    maintained_s = 0.0
    for step in range(10):
        relation = engine.database.relation(fact)
        n_delta = max(1, relation.n_rows // 100)
        sample = rng.integers(0, relation.n_rows, n_delta)
        inserts = {
            a: relation.column(a)[sample] for a in relation.schema.names
        }
        deletes = rng.choice(relation.n_rows, n_delta // 2, replace=False)
        report = engine.apply_delta(
            DeltaBatch(fact, inserts=inserts, delete_indices=deletes)
        )
        maintenance = report.batches[0]
        maintained_s += maintenance.seconds
        results = engine.run(batch)
        total = float(results["rows"].column("count")[0])
        print(
            f"  batch {step}: +{n_delta}/-{n_delta // 2} rows, "
            f"{maintenance.mode} in {maintenance.seconds * 1000:6.1f}ms, "
            f"join now {total:,.0f} rows"
        )

    print(
        f"\nten deltas maintained in {maintained_s:.4f}s total vs "
        f"{full_s:.4f}s for one full re-evaluation "
        f"({10 * full_s / maintained_s:.1f}x cheaper than recomputing "
        f"after each batch)"
    )

    # the maintained results are exact, not approximate
    reference = LMFAO(
        engine.database, dataset.join_tree, sort_inputs=False
    ).run(batch)
    maintained = engine.run(batch)
    for query in batch:
        got = maintained[query.name]
        want = reference[query.name]
        assert got.n_rows == want.n_rows
        for column in got.schema.names:
            np.testing.assert_allclose(
                got.column(column), want.column(column), rtol=1e-9
            )
    print("maintained results match a from-scratch evaluation exactly")

    print("\n== delta on a dimension relation falls back to recompute ==")
    dim = next(r.name for r in engine.database if r.name != fact)
    dim_rel = engine.database.relation(dim)
    sample = rng.integers(0, dim_rel.n_rows, 3)
    report = engine.apply_delta(
        DeltaBatch.insert(
            dim, {a: dim_rel.column(a)[sample] for a in dim_rel.schema.names}
        )
    )
    maintenance = report.batches[0]
    print(
        f"  delta on {dim!r}: {maintenance.mode} in "
        f"{maintenance.seconds:.4f}s (its views feed the rest of the DAG)"
    )


if __name__ == "__main__":
    main()
