"""Beyond the headline workloads: polynomial regression, k-means, SQL.

Shows three capabilities the paper describes but does not benchmark:

* polynomial regression of degree d (§2, eq. (5)) over moment batches;
* k-means clustering (§2 "Further Applications") with dynamic
  nearest-centroid UDFs re-bound each iteration — the compiled plan is
  generated once;
* casting the view decomposition to SQL (§1) and explaining the plan.

Run:  python examples/advanced_models.py
"""

import numpy as np

from repro import LMFAO, materialize_join
from repro.datasets import favorita
from repro.engine import explain, render_batch_sql
from repro.ml import CovarBatch, kmeans, train_polynomial


def main() -> None:
    dataset = favorita(scale=0.3)
    engine = LMFAO(dataset.database, dataset.join_tree)
    flat = materialize_join(dataset.database)
    print(f"dataset: {dataset.summary()}")

    # --- polynomial regression ------------------------------------------
    print("\n== polynomial regression (units ~ poly(txns, price)) ==")
    for degree in (1, 2, 3):
        model = train_polynomial(
            engine, ["txns", "price"], "units", degree=degree
        )
        print(
            f"  degree {degree}: {len(model.basis):2} parameters, "
            f"train RMSE {model.rmse(flat):.4f}"
        )

    # --- k-means ----------------------------------------------------------
    print("\n== k-means over the join (txns, price) ==")
    result = kmeans(engine, ["txns", "price"], k=4, max_iterations=25, seed=3)
    print(f"  converged in {result.iterations} iterations; centroids:")
    for j, centroid in enumerate(result.centroids):
        print(f"    cluster {j}: txns={centroid[0]:9.1f}  price={centroid[1]:6.2f}")
    assignment = result.assign(flat)
    sizes = np.bincount(assignment, minlength=4)
    print(f"  cluster sizes over the join: {sizes.tolist()}")
    print(
        f"  plans compiled: {len(engine._plan_cache)} "
        "(one per batch structure, re-bound each iteration)"
    )

    # --- SQL + EXPLAIN ------------------------------------------------------
    print("\n== the covar decomposition, cast to SQL (first statements) ==")
    covar = CovarBatch(["txns"], ["stype"], "units")
    plan = engine.plan(covar.batch)
    script = render_batch_sql(plan.decomposed)
    print("\n\n".join(script.split("\n\n")[:3]))

    print("\n== EXPLAIN ==")
    print(explain(plan, dataset.join_tree))


if __name__ == "__main__":
    main()
