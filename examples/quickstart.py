"""Quickstart: batches of group-by aggregates over a join, LMFAO-style.

Builds a small star-schema database, runs a mixed aggregate batch with
one engine call, and shows the plan statistics and generated code that
the paper's layers produce.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LMFAO,
    Aggregate,
    Database,
    Delta,
    Query,
    QueryBatch,
    Relation,
)
from repro.data.schema import Schema, categorical, continuous, key


def build_database() -> Database:
    rng = np.random.default_rng(42)
    n_sales = 5_000
    sales = Relation(
        "Sales",
        Schema([key("day"), key("store"), continuous("units")]),
        {
            "day": rng.integers(0, 90, n_sales),
            "store": rng.integers(0, 12, n_sales),
            "units": np.round(rng.gamma(2.0, 5.0, n_sales), 2),
        },
    )
    stores = Relation(
        "Stores",
        Schema([key("store"), categorical("region")]),
        {"store": np.arange(12), "region": np.arange(12) % 4},
    )
    weather = Relation(
        "Weather",
        Schema([key("day"), continuous("temperature")]),
        {
            "day": np.arange(90),
            "temperature": np.round(rng.normal(18, 8, 90), 1),
        },
    )
    return Database([sales, stores, weather], name="shop")


def main() -> None:
    database = build_database()
    engine = LMFAO(database)

    batch = QueryBatch(
        [
            Query("total_rows", [], [Aggregate.count()]),
            Query("total_units", [], [Aggregate.of("units", name="units")]),
            Query(
                "units_by_region",
                ["region"],
                [
                    Aggregate.of("units", name="units"),
                    Aggregate.count(name="rows"),
                ],
            ),
            Query(
                "warm_day_units",
                ["region"],
                [
                    Aggregate.of(
                        Delta("temperature", ">", 20.0), "units", name="units"
                    )
                ],
            ),
        ]
    )

    results = engine.run(batch)

    print("== results ==")
    print("rows in join:   ", int(results["total_rows"].column("count")[0]))
    print("total units:    ", round(float(results["total_units"].column("units")[0]), 2))
    by_region = results["units_by_region"]
    for region, units, rows in zip(
        by_region.column("region"),
        by_region.column("units"),
        by_region.column("rows"),
    ):
        print(f"region {region}: units={units:10.2f}  rows={int(rows)}")

    warm = results["warm_day_units"]
    print("units sold on warm days, by region:")
    for region, units in zip(warm.column("region"), warm.column("units")):
        print(f"  region {region}: {units:10.2f}")

    plan = engine.plan(batch)
    print("\n== plan statistics (the paper's Table 2 quantities) ==")
    print(plan.statistics.table2_row())
    print("roots:", plan.statistics.roots)

    print("\n== one generated group function (Compilation layer) ==")
    print(plan.generated_source().split("\n\n")[0])

    print("\n== execution backends (the executor subsystem) ==")
    import time

    for backend in ("interpret", "compiled", "process"):
        with LMFAO(database, backend=backend, n_threads=2) as alt:
            alt.plan(batch)  # plan+compile outside the timing
            start = time.perf_counter()
            alt_results = alt.run(batch)
            elapsed = time.perf_counter() - start
        total = float(alt_results["total_units"].column("units")[0])
        print(f"  {backend:9} {elapsed:8.4f}s  total_units={total:.2f}")


if __name__ == "__main__":
    main()
