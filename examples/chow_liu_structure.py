"""Bayesian-network structure learning with Chow-Liu trees (paper §2).

All pairwise mutual-information values over the TPC-DS join are computed
as one LMFAO batch of count queries; the optimal tree-shaped Bayesian
network is the maximum spanning tree of the MI graph.

Run:  python examples/chow_liu_structure.py
"""

from repro import LMFAO
from repro.datasets import tpcds
from repro.ml import chow_liu_tree
from repro.ml.mutual_information import build_mi_batch


def main() -> None:
    dataset = tpcds(scale=0.4)
    print(f"dataset: {dataset.summary()}")

    attrs = dataset.discrete_attrs[:9]
    engine = LMFAO(dataset.database, dataset.join_tree)

    batch = build_mi_batch(attrs)
    stats = engine.plan(batch).statistics
    print(f"\nmutual information over {len(attrs)} attributes: "
          f"{len(batch)} queries in one batch")
    print(f"plan: {stats.table2_row()}")

    edges, mi = chow_liu_tree(engine, attrs)

    print("\nstrongest pairwise dependencies:")
    for (a, b), value in sorted(mi.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  MI({a}, {b}) = {value:.5f}")

    print("\nChow-Liu tree (optimal tree-shaped Bayesian network):")
    adjacency = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    root = max(adjacency, key=lambda n: len(adjacency[n]))
    seen = {root}

    def show(node, indent="  "):
        for neighbor in sorted(adjacency.get(node, [])):
            if neighbor in seen:
                continue
            seen.add(neighbor)
            pair = (node, neighbor) if (node, neighbor) in mi else (neighbor, node)
            print(f"{indent}{node} -- {neighbor}  (MI={mi[pair]:.5f})")
            show(neighbor, indent + "  ")

    print(f"  root: {root}")
    show(root)


if __name__ == "__main__":
    main()
