"""Data-cube exploration over the Retailer snowflake (paper §2, eq. (6)).

Computes a 3-dimensional data cube with five measures in one LMFAO batch
(all 2^3 cuboids share one pass over the fact table), then answers
roll-up and slice questions from the cube relation.

Run:  python examples/data_cube_explorer.py
"""

from repro import LMFAO
from repro.datasets import retailer
from repro.ml import ALL, DataCube


def main() -> None:
    dataset = retailer(scale=0.5)
    print(f"dataset: {dataset.summary()}")

    engine = LMFAO(dataset.database, dataset.join_tree)
    dimensions = ["category", "rgn_cd", "rain"]
    measures = ["inventoryunits", "price"]
    cube = DataCube(engine, dimensions, measures)
    relation = cube.compute()

    stats = engine.plan(cube.batch).statistics
    print(f"\ncube over {dimensions} with measures {measures}")
    print(f"2^{len(dimensions)} = {2 ** len(dimensions)} cuboids, "
          f"{relation.n_rows} cube rows")
    print(f"plan: {stats.table2_row()}")

    apex = cube.cuboid([])
    print(f"\ntotal inventory units: "
          f"{apex.column('sum:inventoryunits')[0]:,.0f}")

    print("\ninventory by region (roll-up over category and rain):")
    by_region = cube.cuboid(["rgn_cd"])
    for region, units in zip(
        by_region.column("rgn_cd"),
        by_region.column("sum:inventoryunits"),
    ):
        print(f"  region {region}: {units:12,.0f}")

    print("\ninventory by (category, rain) for the top category:")
    by_cat = cube.cuboid(["category"]).sorted_by(["category"])
    top_category = int(
        by_cat.column("category")[
            by_cat.column("sum:inventoryunits").argmax()
        ]
    )
    fine = cube.cuboid(["category", "rain"])
    mask = fine.column("category") == top_category
    for rain, units in zip(
        fine.column("rain")[mask],
        fine.column("sum:inventoryunits")[mask],
    ):
        label = "rainy" if rain else "dry"
        print(f"  category {top_category}, {label:5}: {units:12,.0f}")

    print("\nslice: rainy days, all categories, all regions")
    sliced = cube.slice(rain=1)
    print(f"  rows: {sliced.n_rows}, "
          f"units: {sliced.column('inventoryunits')[0]:,.0f}")

    # the ALL sentinel marks rolled-up dimensions in the 1NF cube table
    print(f"\nfirst cube rows (ALL = {ALL}):")
    for row in relation.to_rows()[:5]:
        print(" ", row)


if __name__ == "__main__":
    main()
