"""Durable serving: snapshot + WAL + persistent view cache, end to end.

Simulates the full restart story in one process, using the same
:class:`DatasetStorage`-backed :class:`AnalyticsService` that
``repro serve <ds> --data-dir DIR`` runs:

1. **first boot** — a fresh data directory is initialized with a
   columnar snapshot of the loaded database; a query populates the
   persistent cache tier; delta commits are write-ahead-logged (and
   fsynced) before each epoch is published;
2. **"crash"** — the service object is simply dropped, exactly as a
   SIGKILL would drop it: nothing is flushed at exit, because
   everything that matters is already on disk;
3. **second boot** — a brand-new service over the same directory
   recovers snapshot + WAL replay to the exact pre-crash epoch and
   answers its first query almost entirely from *warm* cache hits
   served off disk.

Watch for: the recovered epoch matching the last committed one, the
restart's ``warm_hits`` > 0 with zero misses, and the two boots'
query results being identical.

Run:  python examples/durable_serve.py
"""

import json
import shutil
import tempfile

import numpy as np

from repro import AnalyticsService, DeltaBatch
from repro.datasets import favorita
from repro.ml import CovarBatch

N_DELTAS = 5


def build_service(data_dir, dataset):
    service = AnalyticsService(
        coalesce_ms=0, cache_mb=64, data_dir=data_dir, compact_wal=0
    )
    service.register_dataset(
        "favorita", dataset.database, dataset.join_tree
    )
    label = dataset.label
    if dataset.database.attribute_kind(label) != "continuous":
        label = dataset.continuous_features[0]
    continuous = [f for f in dataset.continuous_features if f != label]
    service.register_workload(
        "favorita",
        "covar",
        CovarBatch(continuous, dataset.categorical_features, label).batch,
    )
    return service


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-durable-")
    dataset = favorita(scale=0.2)
    fact = dataset.database.relation(dataset.fact_table())
    rng = np.random.default_rng(7)

    print(f"== boot 1: fresh data dir {data_dir}")
    service = build_service(data_dir, dataset)
    first = service.query("favorita", ["covar"], timeout=120)
    print(
        f"cold query at epoch {first.epoch}: "
        f"{sum(r.n_rows for r in first.results['covar'].values())} "
        f"result rows"
    )
    for i in range(N_DELTAS):
        idx = rng.integers(0, fact.n_rows, 20)
        response = service.apply_delta(
            "favorita",
            DeltaBatch.insert(
                fact.name,
                {a: fact.column(a)[idx] for a in fact.schema.names},
            ),
        )
        print(
            f"delta {i + 1}: committed epoch {response.epoch} "
            f"(WAL'd before publish)"
        )
    before = service.query("favorita", ["covar"], timeout=120)
    storage = service.stats()["datasets"]["favorita"]["storage"]
    print(
        f"storage before crash: wal_len={storage['wal_len']} "
        f"spilled={storage['spilled_entries']} views "
        f"({storage['spilled_bytes'] / (1 << 20):.2f} MiB)"
    )

    # -- the crash: drop everything without any shutdown courtesy ------
    del service
    print("\n== boot 2: recover from the same data dir")
    revived = build_service(data_dir, dataset)
    recovery = revived.recovery("favorita")
    print(f"recovery: {json.dumps(recovery.as_dict(), indent=2)}")
    after = revived.query("favorita", ["covar"], timeout=120)
    stats = revived.stats()["datasets"]["favorita"]
    print(
        f"warm query at epoch {after.epoch}: "
        f"{stats['cache']['warm_hits']} warm hits, "
        f"{stats['cache']['misses']} misses"
    )
    assert after.epoch == before.epoch == N_DELTAS
    for name, relation in before.results["covar"].items():
        other = after.results["covar"][name]
        for column in relation.schema.names:
            assert np.allclose(
                relation.column(column), other.column(column)
            ), (name, column)
    print("recovered results identical to pre-crash results ✓")
    revived.close()
    shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
